//! Fleet-scale workload replay — the standing macro-bench.
//!
//! A seeded 1,000-tenant mixed fleet (repeat-heavy diurnal dashboards,
//! ETL with a COPY cadence, bursty never-repeating ad-hoc) is
//! synthesized once and replayed twice:
//!
//! * **virtual mode** — sequential, deterministic; the per-statement
//!   wall-clock latency histograms become
//!   `results/workload_{dashboard,etl,adhoc}.csv`, which ci.sh gates
//!   against the committed `*_baseline.csv` via benchdiff (p50 and
//!   --p99). Same seed ⇒ same schedule ⇒ the same statements measured,
//!   so a drift here is an engine/session/WLM cost change, not workload
//!   noise.
//! * **wall mode** — tenant-partitioned worker threads running as fast
//!   as possible: real WLM queue contention, real p99s. Printed for the
//!   record, deliberately not gated (scheduler noise).
//!
//! Regenerate the baselines after an intentional perf change with:
//!   cargo bench --offline -p redsim-bench --bench workload_replay
//!   cp results/workload_dashboard.csv results/workload_dashboard_baseline.csv   (etc.)

use redsim_workload::{report, QueryClass, ReplayDriver, ReplayMode, WorkloadConfig};

fn main() {
    let quick = std::env::var("RSIM_BENCH_QUICK").map(|v| v != "0").unwrap_or(false);
    let mut cfg = WorkloadConfig::fleet(1_000);
    if quick {
        cfg = cfg.scaled(0.1);
    }
    let driver = ReplayDriver::new(cfg);
    let sched = driver.schedule();
    println!(
        "workload_replay: {} tenants, {} ops over {:.0} virtual minutes (digest {:016x})",
        driver.config().tenants,
        sched.len(),
        sched.horizon().as_mins_f64(),
        sched.digest(),
    );

    // --- virtual mode: the gated run -----------------------------------
    let cluster = driver.launch("wl-bench-virtual").expect("launch virtual cluster");
    let virt = driver.run(&cluster, ReplayMode::Virtual).expect("virtual replay");
    println!("\nvirtual replay ({:?} wall):\n{}", virt.wall, virt.summary());
    assert_eq!(virt.total_errors(), 0, "virtual replay must run clean");
    assert!(virt.wlm.balanced(), "WLM ledger unbalanced: {:?}", virt.wlm);
    assert!(
        virt.class(QueryClass::Dashboard).cache_hits > 0,
        "dashboard repeats should hit the result cache"
    );

    let dir = redsim_testkit::bench::default_results_dir();
    let paths = report::write_class_csvs(&virt, &dir, "virtual").expect("write workload CSVs");
    for p in &paths {
        println!("wrote {}", p.display());
    }

    // --- wall mode: contention for the record, not gated ----------------
    let workers = if quick { 4 } else { 8 };
    let cluster = driver.launch("wl-bench-wall").expect("launch wall cluster");
    let wall = driver
        .run(&cluster, ReplayMode::Wall { workers, time_scale: None })
        .expect("wall replay");
    println!("wall replay ({workers} workers, {:?} wall):\n{}", wall.wall, wall.summary());
    assert_eq!(wall.total_errors(), 0, "wall replay must run clean");
    assert!(wall.wlm.balanced(), "WLM ledger unbalanced: {:?}", wall.wlm);
    // Same schedule, either mode: per-class statement counts must agree.
    for c in QueryClass::ALL {
        assert_eq!(virt.class(c).statements(), wall.class(c).statements(), "{c:?} count drift");
    }
}
