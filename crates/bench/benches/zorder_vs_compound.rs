//! E8 — §3.3: "a multidimensional index using z-curves degrades more
//! gracefully … and still provides utility if leading columns are not
//! specified."
//!
//! A 4-column table sorted three ways (none / COMPOUND(a,b,c,d) /
//! INTERLEAVED(a,b,c,d)), probed with an equality-range predicate on each
//! single column. Compound sorting prunes brilliantly on `a` and
//! collapses off-prefix; the z-curve prunes usefully on *every* column.

use redsim_testkit::bench::{Bench, BenchmarkId};
use redsim_common::{ColumnData, ColumnDef, DataType, Schema, Value};
use redsim_storage::table::{ColumnRange, ScanPredicate, SliceTable, SortKeySpec, TableConfig};
use redsim_storage::MemBlockStore;

const ROWS: i64 = 160_000;
const GROUP: usize = 2_048;
const DOMAIN: i64 = 1_024;

fn build(sort: SortKeySpec) -> (MemBlockStore, SliceTable) {
    let store = MemBlockStore::new();
    let schema = Schema::new(
        ["a", "b", "c", "d"]
            .iter()
            .map(|n| ColumnDef::new(*n, DataType::Int8))
            .collect(),
    )
    .unwrap();
    let mut t = SliceTable::new(
        schema,
        TableConfig { rows_per_group: GROUP, sort_key: sort, auto_compress: true },
    )
    .unwrap();
    let mut cols: Vec<ColumnData> = (0..4).map(|_| ColumnData::new(DataType::Int8)).collect();
    let mut x = 0x243F_6A88_85A3_08D3u64;
    for _ in 0..ROWS {
        for c in cols.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            c.push_value(&Value::Int8((x % DOMAIN as u64) as i64)).unwrap();
        }
    }
    t.append(&cols, &store).unwrap();
    t.flush(&store).unwrap();
    t.vacuum(&store).unwrap();
    (store, t)
}

fn pred_on(col: usize) -> ScanPredicate {
    // ~6% of the domain on one dimension.
    ScanPredicate {
        ranges: vec![ColumnRange {
            col,
            lo: Some(Value::Int8(100)),
            hi: Some(Value::Int8(160)),
        }],
    }
}

fn bench_zorder(c: &mut Bench) {
    let variants = [
        ("none", build(SortKeySpec::None)),
        ("compound", build(SortKeySpec::Compound(vec![0, 1, 2, 3]))),
        ("interleaved", build(SortKeySpec::Interleaved(vec![0, 1, 2, 3]))),
    ];

    println!("\nE8 — groups skipped (of {}) per single-column predicate:", ROWS as usize / GROUP);
    println!("  {:<12} {:>6} {:>6} {:>6} {:>6}", "layout", "col a", "col b", "col c", "col d");
    for (name, (store, table)) in &variants {
        let skipped: Vec<String> = (0..4)
            .map(|col| {
                let out = table.scan(store, &[0, 1, 2, 3], Some(&pred_on(col))).unwrap();
                out.groups_skipped.to_string()
            })
            .collect();
        println!(
            "  {name:<12} {:>6} {:>6} {:>6} {:>6}",
            skipped[0], skipped[1], skipped[2], skipped[3]
        );
    }

    let mut g = c.group("e8_scan");
    g.sample_size(10);
    for (name, (store, table)) in &variants {
        for col in 0..4usize {
            let p = pred_on(col);
            g.bench_with_input(
                BenchmarkId::new(*name, format!("col{col}")),
                &p,
                |b, p| {
                    b.iter(|| table.scan(store, &[0, 1, 2, 3], Some(p)).unwrap());
                },
            );
        }
    }
    g.finish();
}

fn main() {
    let mut b = Bench::new("e8_zorder_vs_compound");
    bench_zorder(&mut b);
    b.finish();
}
