//! # redsim-bench
//!
//! The benchmark harness: everything needed to regenerate the paper's
//! figures and narrative numbers (experiments E1–E12 in DESIGN.md §4).
//!
//! * [`datagen`] — deterministic workload generators: the Amazon-retail
//!   web-log workload of §1 (click streams joined to a product catalog),
//!   plus shaped columns for the compression experiments.
//! * [`e1`] — the intro's headline results: parallel load rate, the
//!   clicks⋈products join on the columnar MPP engine vs the row-store
//!   baseline, backup/restore, with calibrated extrapolation to the
//!   paper's petabyte scale.
//! * [`figures`] — Figure 1 (data analysis gap), Figure 2 (admin ops),
//!   Figure 4 (cumulative features), Figure 5 (tickets per cluster), E6
//!   (provisioning), E12 (streaming restore) as printable series.
//! * [`report`] — fixed-width text tables + CSV writers for `results/`.
//!
//! The `figures` binary runs everything: `cargo run -p redsim-bench
//! --bin figures --release`.

pub mod datagen;
pub mod e1;
pub mod figures;
pub mod report;
