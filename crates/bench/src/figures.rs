//! Generators for the paper's figures (E2–E6, E12) as report tables.

use crate::report::{fmt_secs, Table};
use redsim_controlplane::{
    admin_op_durations, patch::simulate_patching, simulate_availability, tickets::simulate_fleet,
    AvailabilityConfig, FleetConfig, PatchConfig, PricingModel, ProvisioningModel,
};
use redsim_core::{Cluster, ClusterConfig};
use redsim_replication::SnapshotKind;
use std::time::Instant;

/// Figure 1 — the data analysis gap. The paper cites enterprise data
/// growing 30–60% CAGR against warehouse capacity tracking the DW market's
/// 8–11% CAGR; the gap (the "dark data") widens every year.
pub fn figure1_gap() -> Table {
    let mut t = Table::new(
        "Figure 1 — Data Analysis Gap in the Enterprise (relative units, 1990 = 1.0)",
        &["year", "enterprise_data", "data_in_warehouse", "dark_fraction"],
    );
    let mut enterprise: f64 = 1.0;
    let mut warehouse: f64 = 0.8;
    for year in 1990..=2020 {
        if year % 2 == 0 {
            let dark = 1.0 - (warehouse / enterprise).min(1.0);
            t.row(&[
                year.to_string(),
                format!("{enterprise:.1}"),
                format!("{:.1}", warehouse.min(enterprise)),
                format!("{:.0}%", dark * 100.0),
            ]);
        }
        // Enterprise data CAGR ramps 30% → 60% (the paper's §1 narrative);
        // warehouse capacity follows the DW market at ~10%.
        let data_growth = 0.30 + 0.30 * ((year - 1990) as f64 / 30.0);
        enterprise *= 1.0 + data_growth;
        warehouse *= 1.10;
    }
    t
}

/// Figure 2 — admin operation durations at 2/16/128 nodes.
pub fn figure2_admin_ops(seed: u64) -> Table {
    let mut t = Table::new(
        "Figure 2 — Time to Deploy and Manage a Cluster (simulated control plane)",
        &["nodes", "operation", "clicks", "duration"],
    );
    for r in admin_op_durations(&[2, 16, 128], seed) {
        t.row(&[
            r.nodes.to_string(),
            r.op.label().to_string(),
            fmt_secs(r.click_time.as_secs_f64()),
            fmt_secs(r.duration.as_secs_f64()),
        ]);
    }
    t
}

/// Figure 4 — cumulative features deployed over two years, plus the §5
/// patch-cadence ablation.
pub fn figure4_features(seed: u64) -> (Table, Table) {
    let sim = simulate_patching(&PatchConfig::default(), seed);
    let mut t = Table::new(
        "Figure 4 — Cumulative features deployed over time (biweekly reversible patches)",
        &["week", "features_shipped"],
    );
    for (week, shipped) in sim.cumulative_features.iter().step_by(8) {
        t.row(&[week.to_string(), shipped.to_string()]);
    }
    if let Some(last) = sim.cumulative_features.last() {
        t.row(&[last.0.to_string(), last.1.to_string()]);
    }

    let mut c = Table::new(
        "§5 — release cadence vs failed-patch probability (40-seed mean)",
        &["cadence_weeks", "failure_rate", "features_per_week"],
    );
    for weeks in [1u32, 2, 4, 8] {
        let mut rate = 0.0;
        let mut fpw = 0.0;
        for s in 0..40 {
            let sim = simulate_patching(
                &PatchConfig { cadence_weeks: weeks, ..Default::default() },
                seed + s,
            );
            rate += sim.failure_rate();
            fpw += sim.features_per_week();
        }
        c.row(&[
            weeks.to_string(),
            format!("{:.1}%", rate / 40.0 * 100.0),
            format!("{:.2}", fpw / 40.0),
        ]);
    }
    (t, c)
}

/// Figure 5 — Sev2 tickets per cluster over a growing fleet.
pub fn figure5_tickets(seed: u64) -> Table {
    let sim = simulate_fleet(&FleetConfig::default(), seed);
    let mut t = Table::new(
        "Figure 5 — Tickets per cluster over time (Pareto top-cause extinguishing, growing fleet)",
        &["week", "clusters", "tickets", "tickets_per_cluster"],
    );
    for w in sim.weeks.iter().step_by(8) {
        t.row(&[
            w.week.to_string(),
            format!("{:.0}", w.clusters),
            format!("{:.1}", w.tickets),
            format!("{:.4}", w.tickets_per_cluster),
        ]);
    }
    t
}

/// E6 — provisioning time: cold vs warm pool, by cluster size (§3.1's
/// "15 minutes → 3 minutes").
pub fn e6_provisioning(seed: u64) -> Table {
    let m = ProvisioningModel::default();
    let mut t = Table::new(
        "E6 — Cluster provisioning time (200 runs; mean and p99)",
        &["nodes", "cold_mean", "cold_p99", "warm_mean", "warm_p99", "speedup"],
    );
    for nodes in [2u32, 16, 128] {
        let cold = m.percentiles(nodes, None, 200, seed);
        let warm = m.percentiles(nodes, Some(nodes * 4), 200, seed);
        t.row(&[
            nodes.to_string(),
            format!("{:.1}min", cold.mean),
            format!("{:.1}min", cold.p99),
            format!("{:.1}min", warm.mean),
            format!("{:.1}min", warm.p99),
            format!("{:.1}x", cold.mean / warm.mean),
        ]);
    }
    t
}

/// §1/§3.1 — the pricing story.
pub fn pricing_table() -> Table {
    use redsim_controlplane::pricing::{Commitment, NodeType};
    let m = PricingModel;
    let mut t = Table::new(
        "Pricing — §1's \"$1000/TB/year\" and \"$0.25/hour\" claims",
        &["node_type", "nodes", "commitment", "hourly", "$/TB/year"],
    );
    for (nt, label) in [(NodeType::DW2Large, "dw2.large"), (NodeType::DW1XLarge, "dw1.xlarge")] {
        for (c, cl) in [(Commitment::OnDemand, "on-demand"), (Commitment::Reserved3Year, "3yr-reserved")]
        {
            let q = m.quote(nt, 8, c);
            t.row(&[
                label.to_string(),
                "8".to_string(),
                cl.to_string(),
                format!("${:.2}", q.hourly),
                format!("${:.0}", q.dollars_per_tb_year),
            ]);
        }
    }
    t
}

/// §5 "escalators, not elevators": a year of node failures over a fleet,
/// absorbed by replicas + warm-pool replacement. Varies the re-replication
/// window to show the exposure trade-off.
pub fn escalators_table(seed: u64) -> Table {
    let mut t = Table::new(
        "§5 — Escalators, not elevators: fleet availability under node failures (1 year, 500 clusters x 8 nodes)",
        &["rereplication_window", "node_failures", "absorbed", "availability_losses", "fleet_availability"],
    );
    for (label, secs) in [("5min", 300.0), ("20min", 1_200.0), ("4h", 14_400.0), ("24h", 86_400.0)] {
        let r = simulate_availability(
            AvailabilityConfig { rereplicate_secs: secs, ..Default::default() },
            seed,
        );
        t.row(&[
            label.to_string(),
            r.node_failures.to_string(),
            r.degraded_events.to_string(),
            r.availability_losses.to_string(),
            format!("{:.5}%", r.availability * 100.0),
        ]);
    }
    t
}

/// E12 — streaming restore: time-to-first-query vs full hydration, and
/// query service during hydration (functional, wall-clock).
pub fn e12_streaming_restore(rows: usize) -> redsim_common::Result<Table> {
    let cluster = Cluster::launch(ClusterConfig::new("e12").nodes(2).slices_per_node(2))?;
    cluster.execute(
        "CREATE TABLE t (k BIGINT, payload VARCHAR) DISTKEY(k) COMPOUND SORTKEY(k)",
    )?;
    let mut csv = String::new();
    for i in 0..rows {
        csv.push_str(&format!("{i},payload-{}-{}\n", i % 97, "x".repeat(40)));
    }
    cluster.put_s3_object("d/1", csv.into_bytes());
    cluster.execute("COPY t FROM 's3://d/'")?;
    cluster.create_snapshot("s", SnapshotKind::User)?;

    let t0 = Instant::now();
    let restored = Cluster::restore_from_snapshot(
        ClusterConfig::new("e12r").nodes(2).slices_per_node(2),
        std::sync::Arc::clone(cluster.s3()),
        "us-east-1",
        "e12",
        "s",
        None,
    )?;
    let open_secs = t0.elapsed().as_secs_f64();
    // Working-set query during hydration (page-faults what it needs).
    let t1 = Instant::now();
    let r = restored.query("SELECT COUNT(*) FROM t WHERE k < 100")?;
    let first_query_secs = t1.elapsed().as_secs_f64();
    assert_eq!(r.rows[0].get(0).as_i64(), Some(100));
    let progress_at_first_query = restored.hydration_progress();
    let t2 = Instant::now();
    while restored.hydrate_step(64)? > 0 {}
    let hydrate_secs = t2.elapsed().as_secs_f64();

    let mut t = Table::new(
        "E12 — Streaming restore: SQL service before hydration completes",
        &["metric", "value"],
    );
    t.row(&["rows in snapshot".into(), rows.to_string()]);
    t.row(&["open for SQL after".into(), fmt_secs(open_secs)]);
    t.row(&["first (working-set) query".into(), fmt_secs(first_query_secs)]);
    t.row(&[
        "hydration at first query".into(),
        format!("{:.0}%", progress_at_first_query * 100.0),
    ]);
    t.row(&["background hydration".into(), fmt_secs(hydrate_secs)]);
    t.row(&["page faults served".into(), restored.restore_page_faults().to_string()]);
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_gap_widens() {
        let t = figure1_gap();
        let text = t.render();
        assert!(text.contains("2020"));
        // The last row's dark fraction dominates.
        let last = text.lines().last().unwrap();
        let pct: f64 = last
            .split_whitespace()
            .last()
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(pct > 80.0, "dark data dominates by 2020: {pct}%");
    }

    #[test]
    fn figure_tables_render() {
        assert!(figure2_admin_ops(1).render().contains("Backup"));
        let (f4, cadence) = figure4_features(1);
        assert!(f4.render().contains("104"));
        assert!(cadence.render().contains("cadence"));
        assert!(figure5_tickets(1).render().contains("tickets_per_cluster"));
        assert!(e6_provisioning(1).render().contains("speedup"));
        assert!(pricing_table().render().contains("$0.25"));
    }

    #[test]
    fn e12_restore_serves_early() {
        let t = e12_streaming_restore(5_000).unwrap();
        let text = t.render();
        assert!(text.contains("page faults"));
    }
}
