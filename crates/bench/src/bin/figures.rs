//! Regenerate every figure and table of the paper into `results/`.
//!
//! ```text
//! cargo run -p redsim-bench --bin figures --release [-- --quick]
//! ```

use redsim_bench::e1::{self, E1Config};
use redsim_bench::figures;
use redsim_bench::report::{fmt_count, fmt_secs, Table};
use std::path::Path;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let out = Path::new("results");
    std::fs::create_dir_all(out).expect("create results/");

    println!("redshift-sim — regenerating paper figures (quick={quick})\n");

    // E2 / Figure 1.
    let f1 = figures::figure1_gap();
    print_save(&f1, out, "figure1_data_gap");

    // E3 / Figure 2.
    let f2 = figures::figure2_admin_ops(2015);
    print_save(&f2, out, "figure2_admin_ops");

    // E4 / Figure 4 + cadence ablation.
    let (f4, cadence) = figures::figure4_features(2015);
    print_save(&f4, out, "figure4_features");
    print_save(&cadence, out, "figure4_cadence_ablation");

    // E5 / Figure 5.
    let f5 = figures::figure5_tickets(2015);
    print_save(&f5, out, "figure5_tickets");

    // E6 provisioning.
    let e6 = figures::e6_provisioning(2015);
    print_save(&e6, out, "e6_provisioning");

    // Pricing.
    let pricing = figures::pricing_table();
    print_save(&pricing, out, "pricing");

    // §5 escalators: fleet availability under failures.
    let esc = figures::escalators_table(2015);
    print_save(&esc, out, "escalators_availability");

    // E12 streaming restore.
    let e12 = figures::e12_streaming_restore(if quick { 5_000 } else { 40_000 })
        .expect("E12 run");
    print_save(&e12, out, "e12_streaming_restore");

    // E1 — the headline workload.
    let cfg = if quick {
        E1Config { clicks: 100_000, products: 5_000, nodes: 2, slices_per_node: 2, seed: 2015 }
    } else {
        E1Config::default()
    };
    let r = e1::run(cfg).expect("E1 run");
    let mut t = Table::new(
        "E1 — measured at laptop scale (columnar MPP vs row-store baseline)",
        &["metric", "value"],
    );
    t.row(&["clicks loaded".into(), fmt_count(r.config.clicks as u64)]);
    t.row(&["COPY wall time".into(), fmt_secs(r.load_secs)]);
    t.row(&["load rate".into(), format!("{} rows/s", fmt_count(r.load_rows_per_sec as u64))]);
    t.row(&["MPP join+agg".into(), fmt_secs(r.mpp_join_secs)]);
    t.row(&[
        format!("row-store baseline ({} rows)", fmt_count(r.baseline_rows as u64)),
        fmt_secs(r.baseline_join_secs),
    ]);
    t.row(&[
        "baseline extrapolated to full scale".into(),
        fmt_secs(r.baseline_join_secs_full_scale),
    ]);
    t.row(&["MPP speedup".into(), format!("{:.0}x", r.speedup)]);
    t.row(&["backup (snapshot)".into(), fmt_secs(r.backup_secs)]);
    t.row(&["restore: time-to-first-query".into(), fmt_secs(r.restore_ttfq_secs)]);
    t.row(&["restore: full hydration".into(), fmt_secs(r.restore_full_secs)]);
    print_save(&t, out, "e1_measured");

    // E1 extrapolated to the paper's scale (128 nodes × 16 slices).
    let p = e1::extrapolate(&r, 2048.0);
    let mut t = Table::new(
        "E1 — extrapolated to paper scale (128 nodes x 16 slices) vs paper claims",
        &["metric", "paper", "extrapolated"],
    );
    t.row(&["daily load, 5B rows".into(), "10min".into(), fmt_secs(p.daily_load_secs)]);
    t.row(&["backfill, 150B rows".into(), "9.75h".into(), fmt_secs(p.backfill_secs)]);
    t.row(&["join 2T x 6B rows (MPP)".into(), "< 14min".into(), fmt_secs(p.join_2t_secs)]);
    t.row(&[
        "same join, legacy row engine".into(),
        "> 1 week".into(),
        fmt_secs(p.baseline_join_2t_secs),
    ]);
    t.row(&[
        "MPP : legacy ratio".into(),
        "> 720x".into(),
        format!("{:.0}x", p.baseline_join_2t_secs / p.join_2t_secs),
    ]);
    print_save(&t, out, "e1_paper_scale");

    println!("\nAll figures written to {}/", out.display());
}

fn print_save(t: &Table, dir: &Path, stem: &str) {
    println!("{}", t.render());
    t.save(dir, stem).expect("write results");
}
