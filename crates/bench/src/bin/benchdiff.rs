//! Compare two bench-run CSVs (as written by the testkit bench harness
//! into `results/`) and fail on p50 regressions beyond a threshold.
//! `--p99` gates the tail instead — useful with the histogram exports,
//! where a flat median can hide a blown-out p99.
//!
//! ```text
//! benchdiff [--threshold PCT] [--p99] BASE.csv NEW.csv
//! ```
//!
//! Exit codes: `0` no regression beyond threshold, `1` at least one
//! regression, `2` usage / IO / parse error. Benches present in only
//! one file are reported but never fail the run (the suite is allowed
//! to grow and shrink); only matched `(group, bench, input)` pairs
//! gate.
//!
//! Used by `ci.sh` as a smoke test, and by EXPERIMENTS.md's perf-diff
//! recipe to keep refactors honest:
//!
//! ```text
//! cargo bench --offline -p redsim-bench --bench ablations
//! cp results/ablations.csv /tmp/base.csv
//! # ... hack hack hack ...
//! cargo bench --offline -p redsim-bench --bench ablations
//! cargo run --offline -p redsim-bench --bin benchdiff -- /tmp/base.csv results/ablations.csv
//! ```

use redsim_testkit::bench::{diff_stat, fmt_ns, parse_csv, DiffStat};
use std::process::ExitCode;

const USAGE: &str = "usage: benchdiff [--threshold PCT] [--p99] BASE.csv NEW.csv";
const DEFAULT_THRESHOLD_PCT: f64 = 15.0;

fn main() -> ExitCode {
    let mut threshold = DEFAULT_THRESHOLD_PCT;
    let mut stat = DiffStat::P50;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--p99" => stat = DiffStat::P99,
            "--threshold" | "-t" => {
                let Some(v) = args.next() else {
                    eprintln!("error: --threshold needs a value\n{USAGE}");
                    return ExitCode::from(2);
                };
                match v.parse::<f64>() {
                    Ok(p) if p >= 0.0 => threshold = p,
                    _ => {
                        eprintln!("error: bad threshold {v:?} (want a non-negative percent)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                println!("  --threshold PCT  fail on regressions above PCT percent (default {DEFAULT_THRESHOLD_PCT})");
                println!("  --p99            gate the p99 tail instead of the p50 median");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            f => files.push(f.to_string()),
        }
    }
    let [base_path, new_path] = files.as_slice() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };

    let load = |path: &str| -> Result<_, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_csv(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (base, new) = match (load(base_path), load(new_path)) {
        (Ok(b), Ok(n)) => (b, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };

    let (common, only_base, only_new) = diff_stat(&base, &new, stat);
    println!(
        "benchdiff: {} matched, {} only in base, {} only in new ({} threshold {threshold}%)",
        common.len(),
        only_base.len(),
        only_new.len(),
        stat.label()
    );
    let mut regressions = 0usize;
    for d in &common {
        let verdict = if d.delta_pct > threshold {
            regressions += 1;
            "REGRESSION"
        } else if d.delta_pct < -threshold {
            "improved"
        } else {
            "ok"
        };
        println!(
            "  {:<52} {} {:>9} -> {:>9}  {:+7.1}%  {verdict}",
            d.key,
            stat.label(),
            fmt_ns(d.base_ns),
            fmt_ns(d.new_ns),
            d.delta_pct
        );
    }
    for k in &only_base {
        println!("  {k:<52} (removed — present only in base)");
    }
    for k in &only_new {
        println!("  {k:<52} (new — present only in new)");
    }
    if regressions > 0 {
        eprintln!(
            "benchdiff: {regressions} {} regression(s) beyond {threshold}%",
            stat.label()
        );
        return ExitCode::FAILURE;
    }
    println!("benchdiff: no {} regressions beyond {threshold}%", stat.label());
    ExitCode::SUCCESS
}
