//! Text-table and CSV report output.

use std::fmt::Write as _;
use std::path::Path;

/// A fixed-width text table with a title.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "table arity");
        self.rows.push(cells.to_vec());
    }

    /// Render as an aligned text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        writeln!(out, "## {}", self.title).unwrap();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, w) in cells.iter().zip(widths) {
                write!(out, "{c:>w$}  ", w = w).unwrap();
            }
            out.pop();
            out.pop();
            out.push('\n');
        };
        line(&self.headers, &widths, &mut out);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(out, "{}", "-".repeat(rule)).unwrap();
        for r in &self.rows {
            line(r, &widths, &mut out);
        }
        out
    }

    /// Render as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        writeln!(out, "{}", self.headers.join(",")).unwrap();
        for r in &self.rows {
            writeln!(out, "{}", r.join(",")).unwrap();
        }
        out
    }

    /// Write both renderings under `dir` with the given stem.
    pub fn save(&self, dir: &Path, stem: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        std::fs::write(dir.join(format!("{stem}.txt")), self.render())?;
        std::fs::write(dir.join(format!("{stem}.csv")), self.to_csv())?;
        Ok(())
    }
}

/// Format seconds as a human-scale duration string.
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.0}ms", s * 1e3)
    } else if s < 120.0 {
        format!("{s:.1}s")
    } else if s < 7_200.0 {
        format!("{:.1}min", s / 60.0)
    } else if s < 172_800.0 {
        format!("{:.1}h", s / 3_600.0)
    } else {
        format!("{:.1}d", s / 86_400.0)
    }
}

/// Format a count with thousands separators.
pub fn fmt_count(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new("demo", &["op", "nodes", "t"]);
        t.row(&["backup".into(), "2".into(), "9.6min".into()]);
        t.row(&["restore".into(), "128".into(), "2.0min".into()]);
        let text = t.render();
        assert!(text.contains("## demo"));
        assert!(text.lines().count() >= 4);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next().unwrap(), "op,nodes,t");
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_secs(0.25), "250ms");
        assert_eq!(fmt_secs(90.0), "90.0s");
        assert_eq!(fmt_secs(600.0), "10.0min");
        assert_eq!(fmt_secs(200_000.0), "2.3d");
        assert_eq!(fmt_count(5_000_000_000), "5,000,000,000");
        assert_eq!(fmt_count(42), "42");
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into()]);
    }
}
