//! E1 — the paper's headline numbers (§1).
//!
//! The Amazon Enterprise Data Warehouse workload: "perform their daily
//! load (5B rows) in 10 minutes, load a month of backfill data (150B
//! rows) in 9.75 hours, take a backup in 30 minutes … run queries that
//! joined 2 trillion rows of click traffic with 6 billion rows of product
//! ids in less than 14 minutes, an operation that didn't complete in over
//! a week on their existing systems."
//!
//! We run the same workload *shape* at a laptop scale factor on the real
//! engine (columnar MPP vs the row-store baseline), measure throughput
//! per slice, and extrapolate linearly to the paper's cluster/data scale
//! (the substitution documented in DESIGN.md §5). The claim under test is
//! the *shape*: the columnar MPP engine wins by orders of magnitude, and
//! its throughput scales with slices.

use crate::datagen;
use redsim_core::{Cluster, ClusterConfig};
use redsim_engine::baseline::{self, RowStore};
use redsim_replication::SnapshotKind;
use redsim_sql::catalog::StaticCatalog;
use redsim_sql::{optimizer, Binder, Statement};
use std::time::Instant;

/// Scale and cluster shape for an E1 run.
#[derive(Debug, Clone)]
pub struct E1Config {
    pub clicks: usize,
    pub products: i64,
    pub nodes: u32,
    pub slices_per_node: u32,
    pub seed: u64,
}

impl Default for E1Config {
    fn default() -> Self {
        E1Config { clicks: 400_000, products: 20_000, nodes: 2, slices_per_node: 4, seed: 2015 }
    }
}

/// Measured results at the run's scale factor.
#[derive(Debug, Clone)]
pub struct E1Results {
    pub config: E1Config,
    /// COPY wall time (seconds) and derived rows/second.
    pub load_secs: f64,
    pub load_rows_per_sec: f64,
    /// Columnar MPP join+aggregate (seconds).
    pub mpp_join_secs: f64,
    /// Row-store baseline join+aggregate at `baseline_rows` rows.
    pub baseline_join_secs: f64,
    pub baseline_rows: usize,
    /// Baseline extrapolated to the full run scale (linear in rows).
    pub baseline_join_secs_full_scale: f64,
    /// MPP speedup over the (extrapolated) baseline at equal row counts.
    pub speedup: f64,
    /// Snapshot wall time + time-to-first-query on a streaming restore.
    pub backup_secs: f64,
    pub restore_ttfq_secs: f64,
    pub restore_full_secs: f64,
}

/// Run the E1 measurement.
pub fn run(cfg: E1Config) -> redsim_common::Result<E1Results> {
    let cluster = Cluster::launch(
        ClusterConfig::new("e1")
            .nodes(cfg.nodes)
            .slices_per_node(cfg.slices_per_node)
            .seed(cfg.seed),
    )?;
    cluster.execute(datagen::CLICKS_DDL)?;
    cluster.execute(datagen::PRODUCTS_DDL)?;

    // Stage data: one object per slice, like a manifest-parallel COPY.
    let parts = (cfg.nodes * cfg.slices_per_node) as usize;
    let click_rows = datagen::clicks(cfg.clicks, cfg.products, cfg.seed);
    for (i, obj) in datagen::clicks_csv(&click_rows, parts).into_iter().enumerate() {
        cluster.put_s3_object(&format!("clicks/part-{i:04}"), obj.into_bytes());
    }
    for (i, obj) in datagen::products_csv(cfg.products, cfg.seed, parts).into_iter().enumerate() {
        cluster.put_s3_object(&format!("products/part-{i:04}"), obj.into_bytes());
    }

    // Parallel load.
    let t0 = Instant::now();
    let loaded = cluster.execute("COPY clicks FROM 's3://clicks/'")?.rows_affected;
    let load_secs = t0.elapsed().as_secs_f64();
    assert_eq!(loaded as usize, cfg.clicks);
    cluster.execute("COPY products FROM 's3://products/'")?;
    cluster.execute("VACUUM")?;
    cluster.execute("ANALYZE")?;

    // The headline join on the MPP engine (warm the plan cache first so
    // we measure execution, matching the paper's repeated-workload use).
    cluster.query(datagen::E1_JOIN_SQL)?;
    let t1 = Instant::now();
    let mpp = cluster.query(datagen::E1_JOIN_SQL)?;
    let mpp_join_secs = t1.elapsed().as_secs_f64();
    assert!(!mpp.rows.is_empty());

    // Row-store baseline ("existing scale-out commercial data warehouse"):
    // single-threaded, row-at-a-time, no compression, no pruning. Run at a
    // reduced row count and extrapolate linearly (hash join + scan are
    // O(n) in rows).
    let baseline_rows = (cfg.clicks / 8).max(10_000).min(cfg.clicks);
    let (store, plan) = build_baseline(&click_rows[..baseline_rows], cfg.products, cfg.seed)?;
    let t2 = Instant::now();
    let rows = baseline::run_plan(&plan, &store)?;
    let baseline_join_secs = t2.elapsed().as_secs_f64();
    assert!(!rows.is_empty());
    let baseline_join_secs_full_scale =
        baseline_join_secs * (cfg.clicks as f64 / baseline_rows as f64);

    // Backup + streaming restore.
    let t3 = Instant::now();
    cluster.create_snapshot("e1-snap", SnapshotKind::User)?;
    let backup_secs = t3.elapsed().as_secs_f64();
    let t4 = Instant::now();
    let restored = Cluster::restore_from_snapshot(
        ClusterConfig::new("e1-restore").nodes(cfg.nodes).slices_per_node(cfg.slices_per_node),
        std::sync::Arc::clone(cluster.s3()),
        "us-east-1",
        "e1",
        "e1-snap",
        None,
    )?;
    // First query: metadata is restored; blocks page-fault on demand.
    restored.query("SELECT COUNT(*) FROM products")?;
    let restore_ttfq_secs = t4.elapsed().as_secs_f64();
    while restored.hydrate_step(256)? > 0 {}
    let restore_full_secs = t4.elapsed().as_secs_f64();

    Ok(E1Results {
        load_rows_per_sec: cfg.clicks as f64 / load_secs.max(1e-9),
        speedup: baseline_join_secs_full_scale / mpp_join_secs.max(1e-9),
        config: cfg,
        load_secs,
        mpp_join_secs,
        baseline_join_secs,
        baseline_rows,
        baseline_join_secs_full_scale,
        backup_secs,
        restore_ttfq_secs,
        restore_full_secs,
    })
}

fn build_baseline(
    clicks: &[datagen::Click],
    n_products: i64,
    seed: u64,
) -> redsim_common::Result<(RowStore, redsim_sql::LogicalPlan)> {
    use redsim_common::{ColumnDef, DataType, Row, Schema, Value};
    use redsim_distribution::DistStyle;
    use redsim_storage::table::SortKeySpec;

    let clicks_schema = Schema::new(vec![
        ColumnDef::new("user_id", DataType::Int8),
        ColumnDef::new("product_id", DataType::Int8),
        ColumnDef::new("ts", DataType::Timestamp),
        ColumnDef::new("url", DataType::Varchar),
        ColumnDef::new("bytes", DataType::Int8),
    ])?;
    let products_schema = Schema::new(vec![
        ColumnDef::new("id", DataType::Int8),
        ColumnDef::new("name", DataType::Varchar),
        ColumnDef::new("category", DataType::Varchar),
        ColumnDef::new("price", DataType::Decimal(10, 2)),
    ])?;
    let mut store = RowStore::new();
    store.insert_table(
        "clicks",
        clicks
            .iter()
            .map(|c| {
                Row::new(vec![
                    Value::Int8(c.user_id),
                    Value::Int8(c.product_id),
                    Value::Timestamp(c.ts),
                    Value::Str(c.url.clone()),
                    Value::Int8(c.bytes),
                ])
            })
            .collect(),
    );
    let product_parts = datagen::products_csv(n_products, seed, 1);
    let mut product_rows = Vec::new();
    for line in product_parts[0].lines() {
        let f: Vec<&str> = line.split(',').collect();
        product_rows.push(Row::new(vec![
            Value::Int8(f[0].parse().unwrap()),
            Value::Str(f[1].to_string()),
            Value::Str(f[2].to_string()),
            Value::Decimal {
                units: redsim_common::types::parse_decimal(f[3], 2)?,
                scale: 2,
            },
        ]));
    }
    store.insert_table("products", product_rows);

    let catalog = StaticCatalog {
        tables: vec![
            redsim_sql::TableMeta {
                name: "clicks".into(),
                schema: clicks_schema,
                dist_style: DistStyle::Even,
                sort_key: SortKeySpec::None,
                rows: clicks.len() as u64,
            },
            redsim_sql::TableMeta {
                name: "products".into(),
                schema: products_schema,
                dist_style: DistStyle::Even,
                sort_key: SortKeySpec::None,
                rows: n_products as u64,
            },
        ],
        slices: 1,
    };
    let stmt = redsim_sql::parse(datagen::E1_JOIN_SQL)?;
    let plan = match stmt {
        Statement::Select(s) => {
            let bound = Binder::new(&catalog).bind_select(&s)?;
            optimizer::optimize(bound, &catalog)
        }
        _ => unreachable!(),
    };
    Ok((store, plan))
}

/// Extrapolate measured throughput to the paper's scale.
///
/// The paper's cluster is unspecified; public Redshift material of the
/// era used up to 128 dw1.8xl nodes (16 slices each). We scale measured
/// per-slice throughput linearly with slices and rows — the linearity
/// itself is validated by the slice-scaling bench — and report the
/// *predicted* paper-scale times alongside the paper's claims.
pub fn extrapolate(r: &E1Results, paper_slices: f64) -> PaperScale {
    let my_slices = (r.config.nodes * r.config.slices_per_node) as f64;
    let load_rate_paper = r.load_rows_per_sec * (paper_slices / my_slices);
    let join_rows_per_sec = r.config.clicks as f64 / r.mpp_join_secs;
    let join_rate_paper = join_rows_per_sec * (paper_slices / my_slices);
    let baseline_rate = r.baseline_rows as f64 / r.baseline_join_secs;
    PaperScale {
        daily_load_secs: 5e9 / load_rate_paper,
        backfill_secs: 150e9 / load_rate_paper,
        join_2t_secs: 2e12 / join_rate_paper,
        baseline_join_2t_secs: 2e12 / baseline_rate,
    }
}

/// Predicted times at the paper's data volumes.
#[derive(Debug, Clone)]
pub struct PaperScale {
    /// 5B-row daily load (paper: 10 minutes).
    pub daily_load_secs: f64,
    /// 150B-row backfill (paper: 9.75 hours).
    pub backfill_secs: f64,
    /// 2T-row join (paper: < 14 minutes).
    pub join_2t_secs: f64,
    /// The same join on the row-store baseline (paper: > 1 week).
    pub baseline_join_2t_secs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_holds_at_small_scale() {
        let r = run(E1Config {
            clicks: 60_000,
            products: 3_000,
            nodes: 2,
            slices_per_node: 2,
            seed: 7,
        })
        .unwrap();
        assert!(r.load_rows_per_sec > 10_000.0, "load rate {:.0}", r.load_rows_per_sec);
        // Debug builds compress the gap (no vectorization, overflow
        // checks); the release bar is the meaningful one.
        let bar = if cfg!(debug_assertions) { 1.2 } else { 3.0 };
        assert!(
            r.speedup > bar,
            "columnar MPP must beat the row baseline: {:.1}x (bar {bar})",
            r.speedup
        );
        assert!(
            r.restore_ttfq_secs < r.restore_full_secs + 1e-9,
            "streaming restore answers before hydration completes"
        );
    }

    #[test]
    fn extrapolation_math() {
        let r = E1Results {
            config: E1Config { clicks: 1_000_000, products: 10, nodes: 2, slices_per_node: 4, seed: 0 },
            load_secs: 1.0,
            load_rows_per_sec: 1e6,
            mpp_join_secs: 1.0,
            baseline_join_secs: 10.0,
            baseline_rows: 100_000,
            baseline_join_secs_full_scale: 100.0,
            speedup: 100.0,
            backup_secs: 0.1,
            restore_ttfq_secs: 0.1,
            restore_full_secs: 0.2,
        };
        let p = extrapolate(&r, 2048.0); // 128 nodes × 16 slices
        // 5e9 rows at 1e6 r/s × 256x slices = ~19.5s.
        assert!((p.daily_load_secs - 5e9 / (1e6 * 256.0)).abs() < 1.0);
        assert!(p.baseline_join_2t_secs > p.join_2t_secs * 100.0);
    }
}
