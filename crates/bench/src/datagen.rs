//! Deterministic workload generators.
//!
//! The paper's flagship workload (§1): the Amazon retail team's ~5 billion
//! daily web-log records ("2TB/day") joined against a ~6-billion-row
//! product-id table. These generators produce the same *shape* at
//! laptop-scale factors: a click stream keyed by `product_id` with skewed
//! popularity, URLs with shared prefixes (compressible), timestamps in
//! load order (delta-friendly), and a product catalog.

use redsim_testkit::rng::{Pcg32, Rng};
use std::fmt::Write as _;

/// One click-stream record.
#[derive(Debug, Clone)]
pub struct Click {
    pub user_id: i64,
    pub product_id: i64,
    pub ts: i64,
    pub url: String,
    pub bytes: i64,
}

/// Generate `n` clicks over `n_products` products with Zipf-ish skew.
pub fn clicks(n: usize, n_products: i64, seed: u64) -> Vec<Click> {
    let mut rng = Pcg32::seed_from_u64(seed);
    let base_ts = 1_430_438_400_000_000i64; // 2015-05-01 00:00:00 UTC, µs
    (0..n)
        .map(|i| {
            // Skew: 80% of clicks to the first 20% of products.
            let product_id = if rng.gen_bool(0.8) {
                rng.gen_range(0..(n_products / 5).max(1))
            } else {
                rng.gen_range(0..n_products)
            };
            let user_id = rng.gen_range(0..(n as i64 / 3).max(1));
            Click {
                user_id,
                product_id,
                // Mostly-monotonic arrival with jitter: delta-friendly.
                ts: base_ts + (i as i64) * 1_000 + rng.gen_range(0..997),
                url: format!(
                    "https://www.amazon.com/gp/product/B{:09}/ref=sr_1_{}",
                    product_id,
                    i % 40
                ),
                bytes: rng.gen_range(200..4_000),
            }
        })
        .collect()
}

/// Emit clicks as COPY-ready CSV, split into `parts` objects.
pub fn clicks_csv(clicks: &[Click], parts: usize) -> Vec<String> {
    let parts = parts.max(1);
    let mut out = vec![String::new(); parts];
    for (i, c) in clicks.iter().enumerate() {
        let buf = &mut out[i % parts];
        writeln!(
            buf,
            "{},{},{},{},{}",
            c.user_id,
            c.product_id,
            micros_to_ts(c.ts),
            c.url,
            c.bytes
        )
        .expect("write to string");
    }
    out
}

/// Product-catalog CSV: `id,name,category,price`.
pub fn products_csv(n: i64, seed: u64, parts: usize) -> Vec<String> {
    let mut rng = Pcg32::seed_from_u64(seed ^ 0x70D0);
    let cats = ["books", "electronics", "toys", "grocery", "apparel", "garden"];
    let parts = parts.max(1);
    let mut out = vec![String::new(); parts];
    for id in 0..n {
        let buf = &mut out[(id as usize) % parts];
        writeln!(
            buf,
            "{},product {} edition {},{},{}.{:02}",
            id,
            id,
            rng.gen_range(1..5),
            cats[(id as usize) % cats.len()],
            rng.gen_range(3..300),
            rng.gen_range(0..100)
        )
        .expect("write to string");
    }
    out
}

/// Render epoch-µs as `YYYY-MM-DD HH:MM:SS` (COPY-parseable).
pub fn micros_to_ts(us: i64) -> String {
    redsim_common::Value::Timestamp(us - us % 1_000_000).to_string()
}

/// DDL for the web-log schema with the co-located layout the paper's
/// use case wants: both tables distributed on the product id.
pub const CLICKS_DDL: &str = "CREATE TABLE clicks (
    user_id BIGINT,
    product_id BIGINT NOT NULL,
    ts TIMESTAMP,
    url VARCHAR(256),
    bytes BIGINT
) DISTKEY(product_id) COMPOUND SORTKEY(ts)";

pub const PRODUCTS_DDL: &str = "CREATE TABLE products (
    id BIGINT NOT NULL,
    name VARCHAR(128),
    category VARCHAR(32),
    price DECIMAL(10,2)
) DISTKEY(id)";

/// The headline E1 query shape: join the full click stream to the
/// product table and aggregate.
pub const E1_JOIN_SQL: &str = "SELECT p.category, COUNT(*) AS clicks, SUM(c.bytes) AS bytes
 FROM clicks c JOIN products p ON c.product_id = p.id
 GROUP BY p.category ORDER BY clicks DESC";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = clicks(100, 50, 7);
        let b = clicks(100, 50, 7);
        assert_eq!(a.len(), b.len());
        assert_eq!(a[17].url, b[17].url);
        assert_eq!(a[17].ts, b[17].ts);
    }

    #[test]
    fn skew_present() {
        let cs = clicks(10_000, 1_000, 1);
        let hot = cs.iter().filter(|c| c.product_id < 200).count();
        assert!(hot > 7_000, "80/20 skew: {hot}");
    }

    #[test]
    fn csv_parses_back() {
        let cs = clicks(50, 10, 2);
        let parts = clicks_csv(&cs, 3);
        assert_eq!(parts.len(), 3);
        let total_lines: usize = parts.iter().map(|p| p.lines().count()).sum();
        assert_eq!(total_lines, 50);
        // Fields split cleanly on commas (URLs contain no commas).
        for line in parts[0].lines() {
            assert_eq!(line.split(',').count(), 5, "{line}");
        }
    }

    #[test]
    fn products_cover_all_ids() {
        let parts = products_csv(100, 3, 4);
        let total: usize = parts.iter().map(|p| p.lines().count()).sum();
        assert_eq!(total, 100);
    }
}
