//! The wire protocol: length-prefixed frames, each carrying one message.
//!
//! A frame is a little-endian `u32` payload length followed by the
//! payload; the first payload byte is the opcode. Requests use opcodes
//! `0x01..=0x06`, responses set the high bit (`0x81..=0x86`) so a
//! captured byte stream reads unambiguously. Values and column types
//! reuse `redsim_common::codec`'s primitives — the same Writer/Reader
//! the block format uses — so the protocol inherits its bounds checks.
//!
//! Errors cross the wire as `(code, message, retryable)` and come back
//! as the *same* [`RsError`] variant: [`decode_error`] inverts
//! [`RsError::code`], so `is_retryable()` survives the round trip and a
//! client-side retry loop behaves exactly like a leader-local one.

use redsim_common::codec::{Reader, Writer};
use redsim_common::{DataType, Result, Row, RsError, Value};
use redsim_sql::plan::OutCol;

/// Frames larger than this are rejected before allocation — a corrupt
/// length prefix must not OOM the server.
pub const MAX_FRAME: usize = 16 << 20;

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open the session. Must be the first message on a connection.
    Hello { user: String, user_group: Option<String> },
    /// Run a SELECT/EXPLAIN; the response is [`Response::Rows`].
    Query { sql: String },
    /// Run any statement; the response is [`Response::Summary`].
    Execute { sql: String },
    /// `SET`-style session setting.
    Set { name: String, value: String },
    /// Liveness probe.
    Ping,
    /// Graceful goodbye (an abrupt disconnect works too; this one gets
    /// an acknowledgement before the server closes).
    Bye,
}

/// Result rows as they cross the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRows {
    pub columns: Vec<OutCol>,
    pub rows: Vec<Row>,
    /// Compiled-plan cache hit on the leader.
    pub cache_hit: bool,
    /// Served from the leader result cache (no admission/compile/exec).
    pub result_cache_hit: bool,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    HelloOk { session: u64, userid: u32 },
    Rows(WireRows),
    Summary { rows_affected: u64, message: String },
    Err { code: String, message: String, retryable: bool },
    Pong,
    ByeOk,
}

const OP_HELLO: u8 = 0x01;
const OP_QUERY: u8 = 0x02;
const OP_EXECUTE: u8 = 0x03;
const OP_SET: u8 = 0x04;
const OP_PING: u8 = 0x05;
const OP_BYE: u8 = 0x06;

const OP_HELLO_OK: u8 = 0x81;
const OP_ROWS: u8 = 0x82;
const OP_SUMMARY: u8 = 0x83;
const OP_ERR: u8 = 0x84;
const OP_PONG: u8 = 0x85;
const OP_BYE_OK: u8 = 0x86;

// ----------------------------------------------------------------------
// Framing
// ----------------------------------------------------------------------

/// Prefix `payload` with its length and write the frame.
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame. `Ok(None)` on a clean EOF at a frame boundary (the
/// peer closed); an EOF inside a frame is an error.
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    let mut filled = 0;
    while filled < len.len() {
        let n = r.read(&mut len[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "EOF inside frame header",
            ));
        }
        filled += n;
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {n} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut buf = vec![0u8; n];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

// ----------------------------------------------------------------------
// Message codec
// ----------------------------------------------------------------------

pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    match req {
        Request::Hello { user, user_group } => {
            w.put_u8(OP_HELLO);
            w.put_str(user);
            w.put_bool(user_group.is_some());
            if let Some(g) = user_group {
                w.put_str(g);
            }
        }
        Request::Query { sql } => {
            w.put_u8(OP_QUERY);
            w.put_str(sql);
        }
        Request::Execute { sql } => {
            w.put_u8(OP_EXECUTE);
            w.put_str(sql);
        }
        Request::Set { name, value } => {
            w.put_u8(OP_SET);
            w.put_str(name);
            w.put_str(value);
        }
        Request::Ping => w.put_u8(OP_PING),
        Request::Bye => w.put_u8(OP_BYE),
    }
    w.into_bytes()
}

pub fn decode_request(payload: &[u8]) -> Result<Request> {
    let mut r = Reader::new(payload);
    let req = match r.get_u8()? {
        OP_HELLO => {
            let user = r.get_str()?;
            let user_group = if r.get_bool()? { Some(r.get_str()?) } else { None };
            Request::Hello { user, user_group }
        }
        OP_QUERY => Request::Query { sql: r.get_str()? },
        OP_EXECUTE => Request::Execute { sql: r.get_str()? },
        OP_SET => Request::Set { name: r.get_str()?, value: r.get_str()? },
        OP_PING => Request::Ping,
        OP_BYE => Request::Bye,
        op => return Err(RsError::Codec(format!("unknown request opcode {op:#04x}"))),
    };
    expect_exhausted(&r)?;
    Ok(req)
}

pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = Writer::new();
    match resp {
        Response::HelloOk { session, userid } => {
            w.put_u8(OP_HELLO_OK);
            w.put_u64(*session);
            w.put_u32(*userid);
        }
        Response::Rows(rows) => {
            w.put_u8(OP_ROWS);
            w.put_u32(rows.columns.len() as u32);
            for c in &rows.columns {
                w.put_str(&c.name);
                put_dtype(&mut w, c.ty);
            }
            w.put_u32(rows.rows.len() as u32);
            for row in &rows.rows {
                w.put_u32(row.len() as u32);
                for v in row.values() {
                    put_value(&mut w, v);
                }
            }
            w.put_bool(rows.cache_hit);
            w.put_bool(rows.result_cache_hit);
        }
        Response::Summary { rows_affected, message } => {
            w.put_u8(OP_SUMMARY);
            w.put_u64(*rows_affected);
            w.put_str(message);
        }
        Response::Err { code, message, retryable } => {
            w.put_u8(OP_ERR);
            w.put_str(code);
            w.put_str(message);
            w.put_bool(*retryable);
        }
        Response::Pong => w.put_u8(OP_PONG),
        Response::ByeOk => w.put_u8(OP_BYE_OK),
    }
    w.into_bytes()
}

pub fn decode_response(payload: &[u8]) -> Result<Response> {
    let mut r = Reader::new(payload);
    let resp = match r.get_u8()? {
        OP_HELLO_OK => Response::HelloOk { session: r.get_u64()?, userid: r.get_u32()? },
        OP_ROWS => {
            let ncols = r.get_u32()? as usize;
            let mut columns = Vec::with_capacity(ncols);
            for _ in 0..ncols {
                let name = r.get_str()?;
                let ty = get_dtype(&mut r)?;
                columns.push(OutCol { name, ty });
            }
            let nrows = r.get_u32()? as usize;
            let mut rows = Vec::with_capacity(nrows.min(1 << 20));
            for _ in 0..nrows {
                let arity = r.get_u32()? as usize;
                let mut values = Vec::with_capacity(arity.min(1 << 16));
                for _ in 0..arity {
                    values.push(get_value(&mut r)?);
                }
                rows.push(Row::new(values));
            }
            let cache_hit = r.get_bool()?;
            let result_cache_hit = r.get_bool()?;
            Response::Rows(WireRows { columns, rows, cache_hit, result_cache_hit })
        }
        OP_SUMMARY => Response::Summary { rows_affected: r.get_u64()?, message: r.get_str()? },
        OP_ERR => Response::Err {
            code: r.get_str()?,
            message: r.get_str()?,
            retryable: r.get_bool()?,
        },
        OP_PONG => Response::Pong,
        OP_BYE_OK => Response::ByeOk,
        op => return Err(RsError::Codec(format!("unknown response opcode {op:#04x}"))),
    };
    expect_exhausted(&r)?;
    Ok(resp)
}

fn expect_exhausted(r: &Reader<'_>) -> Result<()> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(RsError::Codec(format!("{} trailing bytes after message", r.remaining())))
    }
}

// ----------------------------------------------------------------------
// Scalar codecs
// ----------------------------------------------------------------------

fn put_dtype(w: &mut Writer, ty: DataType) {
    match ty {
        DataType::Bool => w.put_u8(0),
        DataType::Int2 => w.put_u8(1),
        DataType::Int4 => w.put_u8(2),
        DataType::Int8 => w.put_u8(3),
        DataType::Float8 => w.put_u8(4),
        DataType::Varchar => w.put_u8(5),
        DataType::Date => w.put_u8(6),
        DataType::Timestamp => w.put_u8(7),
        DataType::Decimal(p, s) => {
            w.put_u8(8);
            w.put_u8(p);
            w.put_u8(s);
        }
    }
}

fn get_dtype(r: &mut Reader<'_>) -> Result<DataType> {
    Ok(match r.get_u8()? {
        0 => DataType::Bool,
        1 => DataType::Int2,
        2 => DataType::Int4,
        3 => DataType::Int8,
        4 => DataType::Float8,
        5 => DataType::Varchar,
        6 => DataType::Date,
        7 => DataType::Timestamp,
        8 => DataType::Decimal(r.get_u8()?, r.get_u8()?),
        t => return Err(RsError::Codec(format!("unknown data-type tag {t}"))),
    })
}

fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Bool(b) => {
            w.put_u8(1);
            w.put_bool(*b);
        }
        Value::Int2(i) => {
            w.put_u8(2);
            w.put_i32(*i as i32);
        }
        Value::Int4(i) => {
            w.put_u8(3);
            w.put_i32(*i);
        }
        Value::Int8(i) => {
            w.put_u8(4);
            w.put_i64(*i);
        }
        Value::Float8(f) => {
            w.put_u8(5);
            w.put_f64(*f);
        }
        Value::Str(s) => {
            w.put_u8(6);
            w.put_str(s);
        }
        Value::Date(d) => {
            w.put_u8(7);
            w.put_i32(*d);
        }
        Value::Timestamp(t) => {
            w.put_u8(8);
            w.put_i64(*t);
        }
        Value::Decimal { units, scale } => {
            w.put_u8(9);
            w.put_i128(*units);
            w.put_u8(*scale);
        }
    }
}

fn get_value(r: &mut Reader<'_>) -> Result<Value> {
    Ok(match r.get_u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.get_bool()?),
        2 => Value::Int2(r.get_i32()? as i16),
        3 => Value::Int4(r.get_i32()?),
        4 => Value::Int8(r.get_i64()?),
        5 => Value::Float8(r.get_f64()?),
        6 => Value::Str(r.get_str()?),
        7 => Value::Date(r.get_i32()?),
        8 => Value::Timestamp(r.get_i64()?),
        9 => Value::Decimal { units: r.get_i128()?, scale: r.get_u8()? },
        t => return Err(RsError::Codec(format!("unknown value tag {t}"))),
    })
}

// ----------------------------------------------------------------------
// Error transport
// ----------------------------------------------------------------------

/// Flatten an [`RsError`] into its wire triple.
pub fn encode_error(e: &RsError) -> Response {
    Response::Err {
        code: e.code().to_string(),
        message: e.message().to_string(),
        retryable: e.is_retryable(),
    }
}

/// Rebuild the typed error from its wire triple — the inverse of
/// [`RsError::code`], so retryability classification survives transport.
/// Unknown codes (a newer server) degrade to `Execution`.
pub fn decode_error(code: &str, message: String) -> RsError {
    match code {
        "PARSE" => RsError::Parse(message),
        "ANALYSIS" => RsError::Analysis(message),
        "PLAN" => RsError::Plan(message),
        "EXEC" => RsError::Execution(message),
        "STORAGE" => RsError::Storage(message),
        "NOT_FOUND" => RsError::NotFound(message),
        "ALREADY_EXISTS" => RsError::AlreadyExists(message),
        "CODEC" => RsError::Codec(message),
        "REPL" => RsError::Replication(message),
        "CRYPTO" => RsError::Crypto(message),
        "CTRL" => RsError::ControlPlane(message),
        "FAULT" => RsError::FaultInjected(message),
        "STATE" => RsError::InvalidState(message),
        "TXN" => RsError::TxnConflict(message),
        "SERIALIZABLE" => RsError::Serializable(message),
        "UNSUPPORTED" => RsError::Unsupported(message),
        "THROTTLE" => RsError::Throttled(message),
        _ => RsError::Execution(message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let bytes = encode_request(&req);
        assert_eq!(decode_request(&bytes).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let bytes = encode_response(&resp);
        assert_eq!(decode_response(&bytes).unwrap(), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_req(Request::Hello { user: "ada".into(), user_group: None });
        roundtrip_req(Request::Hello {
            user: "etl".into(),
            user_group: Some("etl_users".into()),
        });
        roundtrip_req(Request::Query { sql: "SELECT 'it''s' FROM t".into() });
        roundtrip_req(Request::Execute { sql: "COPY t FROM 's3://in/'".into() });
        roundtrip_req(Request::Set {
            name: "enable_result_cache_for_session".into(),
            value: "off".into(),
        });
        roundtrip_req(Request::Ping);
        roundtrip_req(Request::Bye);
    }

    #[test]
    fn responses_roundtrip_every_value_variant() {
        roundtrip_resp(Response::HelloOk { session: 42, userid: 101 });
        roundtrip_resp(Response::Summary { rows_affected: 9, message: "COPY 9".into() });
        roundtrip_resp(Response::Pong);
        roundtrip_resp(Response::ByeOk);
        let columns = vec![
            OutCol { name: "b".into(), ty: DataType::Bool },
            OutCol { name: "i2".into(), ty: DataType::Int2 },
            OutCol { name: "i4".into(), ty: DataType::Int4 },
            OutCol { name: "i8".into(), ty: DataType::Int8 },
            OutCol { name: "f".into(), ty: DataType::Float8 },
            OutCol { name: "s".into(), ty: DataType::Varchar },
            OutCol { name: "d".into(), ty: DataType::Date },
            OutCol { name: "ts".into(), ty: DataType::Timestamp },
            OutCol { name: "dec".into(), ty: DataType::Decimal(18, 4) },
            OutCol { name: "n".into(), ty: DataType::Varchar },
        ];
        let row = Row::new(vec![
            Value::Bool(true),
            Value::Int2(-7),
            Value::Int4(123_456),
            Value::Int8(-9_876_543_210),
            Value::Float8(2.5),
            Value::Str("héllo".into()),
            Value::Date(-365),
            Value::Timestamp(1_433_066_400_000_000),
            Value::Decimal { units: -1_234_567, scale: 4 },
            Value::Null,
        ]);
        roundtrip_resp(Response::Rows(WireRows {
            columns,
            rows: vec![row],
            cache_hit: true,
            result_cache_hit: false,
        }));
    }

    #[test]
    fn errors_preserve_type_and_retryability() {
        let originals = vec![
            RsError::Parse("p".into()),
            RsError::Analysis("a".into()),
            RsError::Plan("pl".into()),
            RsError::Execution("e".into()),
            RsError::Storage("s".into()),
            RsError::NotFound("n".into()),
            RsError::AlreadyExists("ae".into()),
            RsError::Codec("c".into()),
            RsError::Replication("r".into()),
            RsError::Crypto("cr".into()),
            RsError::ControlPlane("cp".into()),
            RsError::FaultInjected("f".into()),
            RsError::InvalidState("is".into()),
            RsError::TxnConflict("t".into()),
            RsError::Serializable("si".into()),
            RsError::Unsupported("u".into()),
            RsError::Throttled("th".into()),
        ];
        for original in originals {
            let Response::Err { code, message, retryable } = encode_error(&original) else {
                panic!("encode_error must produce Response::Err");
            };
            assert_eq!(retryable, original.is_retryable());
            let back = decode_error(&code, message);
            assert_eq!(back, original, "decode must invert encode exactly");
            assert_eq!(back.is_retryable(), original.is_retryable());
        }
    }

    #[test]
    fn framing_rejects_oversized_and_detects_truncation() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut cursor = std::io::Cursor::new(buf.clone());
        assert_eq!(read_frame(&mut cursor).unwrap().unwrap(), b"hello");
        // Clean EOF at a frame boundary → None.
        assert!(read_frame(&mut cursor).unwrap().is_none());
        // Truncated payload → error, not a silent partial frame.
        let mut truncated = std::io::Cursor::new(buf[..buf.len() - 2].to_vec());
        assert!(read_frame(&mut truncated).is_err());
        // A length prefix past the cap is rejected before allocating.
        let mut huge = std::io::Cursor::new(((MAX_FRAME + 1) as u32).to_le_bytes().to_vec());
        assert!(read_frame(&mut huge).is_err());
    }

    #[test]
    fn garbage_opcodes_are_typed_codec_errors() {
        assert!(matches!(decode_request(&[0x7f]), Err(RsError::Codec(_))));
        assert!(matches!(decode_response(&[0x01]), Err(RsError::Codec(_))));
        // Trailing bytes after a well-formed message are rejected too.
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert!(matches!(decode_request(&bytes), Err(RsError::Codec(_))));
    }
}
