//! The concurrent wire server: one OS thread per accepted connection,
//! one [`Session`] per connection.
//!
//! §2: "The leader node accepts connections from client programs" —
//! here a TCP listener in nonblocking accept mode (so the accept loop
//! can poll the stop flag), handing each connection to a thread that
//! speaks the frame protocol from [`crate::wire`]. Connection
//! concurrency is bounded by `max_connections`: excess clients get a
//! retryable `THROTTLE` error frame instead of an unbounded backlog.
//!
//! Drain is graceful by construction: stopping the accept loop and
//! half-closing (read side only) every live socket lets in-flight
//! statements finish and their responses flush, after which handlers
//! see EOF, drop their sessions, and exit. [`FrontDoor::shutdown`]
//! composes that drain with the cluster's own WLM drain.

use crate::wire::{
    encode_error, encode_response, read_frame, write_frame, Request, Response, WireRows,
};
use redsim_common::{FxHashMap, Result, RsError};
use redsim_core::session::SessionOpts;
use redsim_core::{Cluster, Session};
use redsim_obs::{TraceSink, LVL_DETAIL};
use redsim_testkit::sync::Mutex;
use std::io::Write as _;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for [`FrontDoor::serve`].
#[derive(Debug, Clone)]
pub struct ServerOpts {
    /// Bind address; port 0 picks a free port (read it back with
    /// [`FrontDoor::addr`]).
    pub addr: String,
    /// Connection-concurrency bound; the 65th client of a 64-limit
    /// server is told `THROTTLE` and disconnected.
    pub max_connections: usize,
    /// How long [`FrontDoor::drain`] waits for in-flight statements.
    pub drain_wait: Duration,
}

impl Default for ServerOpts {
    fn default() -> Self {
        ServerOpts {
            addr: "127.0.0.1:0".into(),
            max_connections: 64,
            drain_wait: Duration::from_secs(10),
        }
    }
}

impl ServerOpts {
    pub fn addr(mut self, a: impl Into<String>) -> Self {
        self.addr = a.into();
        self
    }

    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = n.max(1);
        self
    }

    pub fn drain_wait(mut self, d: Duration) -> Self {
        self.drain_wait = d;
        self
    }
}

struct Shared {
    trace: Arc<TraceSink>,
    stop: AtomicBool,
    /// Live connection handlers (admitted, not yet exited).
    active: AtomicUsize,
    next_conn: AtomicU64,
    /// Read-half clones of every live socket, for drain's half-close.
    conns: Mutex<FxHashMap<u64, TcpStream>>,
    max_connections: usize,
}

impl Shared {
    fn set_gauge(&self) {
        self.trace.gauge("frontdoor.connections").set(self.active.load(Ordering::SeqCst) as i64);
    }
}

/// A running wire server bound to one cluster.
pub struct FrontDoor {
    cluster: Arc<Cluster>,
    shared: Arc<Shared>,
    accept: Mutex<Option<JoinHandle<()>>>,
    local_addr: SocketAddr,
    drain_wait: Duration,
}

impl FrontDoor {
    /// Bind and start accepting. Returns once the listener is live.
    pub fn serve(cluster: Arc<Cluster>, opts: ServerOpts) -> Result<FrontDoor> {
        let listener = TcpListener::bind(&opts.addr)
            .map_err(|e| RsError::ControlPlane(format!("bind {}: {e}", opts.addr)))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| RsError::ControlPlane(format!("local_addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| RsError::ControlPlane(format!("set_nonblocking: {e}")))?;
        let shared = Arc::new(Shared {
            trace: Arc::clone(cluster.trace()),
            stop: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            next_conn: AtomicU64::new(1),
            conns: Mutex::new(FxHashMap::default()),
            max_connections: opts.max_connections,
        });
        let accept = {
            let cluster = Arc::clone(&cluster);
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("frontdoor-accept".into())
                .spawn(move || accept_loop(listener, cluster, shared))
                .map_err(|e| RsError::ControlPlane(format!("spawn accept thread: {e}")))?
        };
        Ok(FrontDoor {
            cluster,
            shared,
            accept: Mutex::new(Some(accept)),
            local_addr,
            drain_wait: opts.drain_wait,
        })
    }

    /// The bound address (connect [`crate::WireClient`]s here).
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live (admitted) connections right now.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// The cluster behind this front door.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.cluster
    }

    /// The in-process client handle: a [`Session`] on the same session
    /// layer the wire connections use, with no socket between — tests
    /// and benches drive the cluster through this.
    pub fn local_session(&self, opts: SessionOpts) -> Result<Session> {
        self.cluster.connect(opts)
    }

    /// Stop accepting and gracefully drain: in-flight statements finish
    /// and flush their responses; idle connections see EOF and close.
    /// Returns `true` if every handler exited within `drain_wait`.
    /// Idempotent.
    pub fn drain(&self) -> bool {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.lock().take() {
            let _ = h.join();
        }
        // Half-close: reads unblock with EOF, writes (in-flight
        // responses) still flush.
        for (_, stream) in self.shared.conns.lock().iter() {
            let _ = stream.shutdown(Shutdown::Read);
        }
        let deadline = Instant::now() + self.drain_wait;
        while self.shared.active.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Drain the front door, then shut the cluster down (WLM drain +
    /// decommission) — the resize/shutdown hook.
    pub fn shutdown(&self) {
        self.drain();
        self.cluster.shutdown();
    }
}

impl Drop for FrontDoor {
    fn drop(&mut self) {
        self.drain();
    }
}

fn accept_loop(listener: TcpListener, cluster: Arc<Cluster>, shared: Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let _ = stream.set_nonblocking(false);
                admit(stream, peer, &cluster, &shared);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn admit(mut stream: TcpStream, peer: SocketAddr, cluster: &Arc<Cluster>, shared: &Arc<Shared>) {
    // Reserve a slot first so racing accepts can't both pass the check.
    let slot = shared.active.fetch_add(1, Ordering::SeqCst);
    if slot >= shared.max_connections {
        shared.active.fetch_sub(1, Ordering::SeqCst);
        shared.trace.counter("frontdoor.rejected").incr();
        let err = encode_response(&encode_error(&RsError::Throttled(format!(
            "connection limit ({}) reached; retry later",
            shared.max_connections
        ))));
        // Deliver the rejection off the accept thread, and read until
        // the client hangs up: closing with their Hello still unread
        // would RST the socket and can discard the error frame before
        // they see it.
        let _ = std::thread::Builder::new().name("frontdoor-reject".into()).spawn(move || {
            let _ = write_frame(&mut stream, &err);
            let _ = stream.flush();
            let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
            let mut scratch = [0u8; 512];
            while matches!(std::io::Read::read(&mut stream, &mut scratch), Ok(n) if n > 0) {}
        });
        return;
    }
    shared.trace.counter("frontdoor.accepted").incr();
    shared.set_gauge();
    let conn_id = shared.next_conn.fetch_add(1, Ordering::SeqCst);
    if let Ok(clone) = stream.try_clone() {
        shared.conns.lock().insert(conn_id, clone);
    }
    let cluster = Arc::clone(cluster);
    let shared_for_handler = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name(format!("frontdoor-conn-{conn_id}"))
        .spawn(move || {
            handle_conn(stream, peer, conn_id, &cluster, &shared_for_handler);
            shared_for_handler.conns.lock().remove(&conn_id);
            shared_for_handler.active.fetch_sub(1, Ordering::SeqCst);
            shared_for_handler.set_gauge();
        });
    if spawned.is_err() {
        shared.conns.lock().remove(&conn_id);
        shared.active.fetch_sub(1, Ordering::SeqCst);
        shared.set_gauge();
    }
}

/// Serve one connection until EOF, `Bye`, or a framing error. The
/// session drops (and unregisters) on every exit path — an abrupt
/// client disconnect cleans up exactly like a polite one.
fn handle_conn(
    mut stream: TcpStream,
    peer: SocketAddr,
    conn_id: u64,
    cluster: &Arc<Cluster>,
    shared: &Shared,
) {
    let mut span = shared.trace.span(LVL_DETAIL, "frontdoor.conn");
    if span.is_recording() {
        span.attr("conn", conn_id);
        span.attr("peer", peer.to_string());
    }
    let mut statements = 0u64;
    let session = match expect_hello(&mut stream, cluster) {
        Some(s) => s,
        None => {
            span.attr("statements", statements);
            return;
        }
    };
    if span.is_recording() {
        span.attr("session", session.id());
        span.attr("user", session.user().to_string());
    }
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) | Err(_) => break, // EOF (drain or client gone)
        };
        let reply = match crate::wire::decode_request(&payload) {
            Ok(Request::Bye) => {
                let _ = send(&mut stream, &Response::ByeOk);
                break;
            }
            Ok(Request::Ping) => Response::Pong,
            Ok(Request::Hello { .. }) => encode_error(&RsError::InvalidState(
                "session already established on this connection".into(),
            )),
            Ok(Request::Query { sql }) => {
                statements += 1;
                match session.query(&sql) {
                    Ok(r) => Response::Rows(WireRows {
                        columns: r.columns,
                        rows: r.rows,
                        cache_hit: r.cache_hit,
                        result_cache_hit: r.result_cache_hit,
                    }),
                    Err(e) => encode_error(&e),
                }
            }
            Ok(Request::Execute { sql }) => {
                statements += 1;
                match session.execute(&sql) {
                    Ok(s) => Response::Summary {
                        rows_affected: s.rows_affected,
                        message: s.message,
                    },
                    Err(e) => encode_error(&e),
                }
            }
            Ok(Request::Set { name, value }) => match session.set(&name, &value) {
                Ok(()) => Response::Summary { rows_affected: 0, message: "SET".into() },
                Err(e) => encode_error(&e),
            },
            Err(e) => {
                // Undecodable frame: answer typed, then hang up — the
                // stream can no longer be trusted to be in sync.
                let _ = send(&mut stream, &encode_error(&e));
                break;
            }
        };
        // Chaos seam: the client vanishes between executing a statement
        // and reading its reply. The statement's effect must stand (a
        // commit) or be invisible (an error) — never half-applied — and
        // the handler must clean up exactly like a polite disconnect.
        if !matches!(
            cluster.faults().fire(redsim_faultkit::fp::FRONTDOOR_DISCONNECT),
            redsim_faultkit::Outcome::Proceed
        ) {
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        if send(&mut stream, &reply).is_err() {
            break;
        }
    }
    span.attr("statements", statements);
}

/// The first frame must be `Hello`; open the session it describes.
fn expect_hello(stream: &mut TcpStream, cluster: &Arc<Cluster>) -> Option<Session> {
    let payload = match read_frame(stream) {
        Ok(Some(p)) => p,
        _ => return None,
    };
    let (user, user_group) = match crate::wire::decode_request(&payload) {
        Ok(Request::Hello { user, user_group }) => (user, user_group),
        Ok(_) => {
            let _ = send(
                stream,
                &encode_error(&RsError::InvalidState("first message must be Hello".into())),
            );
            return None;
        }
        Err(e) => {
            let _ = send(stream, &encode_error(&e));
            return None;
        }
    };
    let mut opts = SessionOpts::new(user);
    if let Some(g) = user_group {
        opts = opts.user_group(g);
    }
    match cluster.connect(opts) {
        Ok(session) => {
            let hello = Response::HelloOk { session: session.id(), userid: session.userid() };
            if send(stream, &hello).is_err() {
                return None; // Session drops → unregisters
            }
            Some(session)
        }
        Err(e) => {
            let _ = send(stream, &encode_error(&e));
            None
        }
    }
}

fn send(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    write_frame(stream, &encode_response(resp))
}
