//! # redsim-frontdoor
//!
//! The leader node's front door. §2: "The leader node accepts
//! connections from client programs, parses requests, …" — this crate
//! is the *accepts connections* part:
//!
//! - [`wire`]: a length-prefixed frame protocol (`u32` little-endian
//!   length + opcode + body) with typed error transport — an
//!   [`RsError`](redsim_common::RsError) crosses the wire and comes
//!   back as the same variant, retryability intact.
//! - [`FrontDoor`]: a concurrent TCP server, one thread and one
//!   [`Session`](redsim_core::Session) per connection, with a bounded
//!   connection count (excess clients get a retryable `THROTTLE`) and
//!   graceful drain composed into cluster shutdown.
//! - [`WireClient`]: the blocking client handle.
//!
//! Sessions, the result cache and the system-table plumbing live in
//! `redsim_core::session` — the deprecated sessionless API must route
//! through them too, and `core` cannot depend on this crate. What
//! remains here is purely transport. There is no authentication crypto
//! and no TLS (DESIGN.md §12 non-goals): "authentication" is the
//! `Hello` frame presenting a user name.
//!
//! ```
//! use redsim_core::{Cluster, ClusterConfig};
//! use redsim_frontdoor::{FrontDoor, ServerOpts, WireClient};
//!
//! let cluster = Cluster::launch(ClusterConfig::new("demo").nodes(2)).unwrap();
//! let door = FrontDoor::serve(cluster, ServerOpts::default()).unwrap();
//! let mut client = WireClient::connect(door.addr(), "ada", None).unwrap();
//! client.execute("CREATE TABLE t (a BIGINT)").unwrap();
//! client.execute("INSERT INTO t VALUES (1), (2)").unwrap();
//! let r = client.query("SELECT COUNT(*) FROM t").unwrap();
//! assert_eq!(r.rows[0].get(0).as_i64(), Some(2));
//! client.bye().unwrap();
//! door.shutdown();
//! ```

pub mod client;
pub mod server;
pub mod wire;

pub use client::WireClient;
pub use server::{FrontDoor, ServerOpts};
pub use wire::{Request, Response, WireRows};
