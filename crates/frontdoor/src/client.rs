//! The wire client: a blocking, single-connection handle that speaks
//! the frame protocol. One `WireClient` is one session on the server;
//! dropping it (or the process dying) closes the socket, and the
//! server-side session unregisters.

use crate::wire::{
    decode_error, decode_response, encode_request, read_frame, write_frame, Request, Response,
    WireRows,
};
use redsim_common::{Result, RsError};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected client. Requests are strictly request/response — like a
/// psql connection, there is no pipelining.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    session: u64,
    userid: u32,
}

impl WireClient {
    /// Connect and perform the `Hello` handshake. `user_group` routes
    /// this session's queries in WLM, exactly as if set leader-side.
    pub fn connect(
        addr: impl ToSocketAddrs,
        user: impl Into<String>,
        user_group: Option<&str>,
    ) -> Result<WireClient> {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        let mut client = WireClient { stream, session: 0, userid: 0 };
        let hello = Request::Hello {
            user: user.into(),
            user_group: user_group.map(str::to_string),
        };
        match client.call(&hello)? {
            Response::HelloOk { session, userid } => {
                client.session = session;
                client.userid = userid;
                Ok(client)
            }
            Response::Err { code, message, .. } => Err(decode_error(&code, message)),
            other => Err(unexpected("HelloOk", &other)),
        }
    }

    /// Server-assigned session id (joins against `stv_sessions`).
    pub fn session(&self) -> u64 {
        self.session
    }

    /// Server-assigned userid (joins against `stl_query.userid`).
    pub fn userid(&self) -> u32 {
        self.userid
    }

    /// Run a SELECT/EXPLAIN.
    pub fn query(&mut self, sql: &str) -> Result<WireRows> {
        match self.call(&Request::Query { sql: sql.into() })? {
            Response::Rows(rows) => Ok(rows),
            Response::Err { code, message, .. } => Err(decode_error(&code, message)),
            other => Err(unexpected("Rows", &other)),
        }
    }

    /// Run any statement; returns `(rows_affected, message)`.
    pub fn execute(&mut self, sql: &str) -> Result<(u64, String)> {
        match self.call(&Request::Execute { sql: sql.into() })? {
            Response::Summary { rows_affected, message } => Ok((rows_affected, message)),
            Response::Err { code, message, .. } => Err(decode_error(&code, message)),
            other => Err(unexpected("Summary", &other)),
        }
    }

    /// `SET`-style session setting (`enable_result_cache_for_session`,
    /// `compupdate`).
    pub fn set(&mut self, name: &str, value: &str) -> Result<()> {
        match self.call(&Request::Set { name: name.into(), value: value.into() })? {
            Response::Summary { .. } => Ok(()),
            Response::Err { code, message, .. } => Err(decode_error(&code, message)),
            other => Err(unexpected("Summary", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Err { code, message, .. } => Err(decode_error(&code, message)),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Polite goodbye: waits for the server's acknowledgement, then
    /// closes. (Dropping the client without calling this is the abrupt
    /// path and is equally safe server-side.)
    pub fn bye(mut self) -> Result<()> {
        match self.call(&Request::Bye)? {
            Response::ByeOk => Ok(()),
            Response::Err { code, message, .. } => Err(decode_error(&code, message)),
            other => Err(unexpected("ByeOk", &other)),
        }
    }

    fn call(&mut self, req: &Request) -> Result<Response> {
        write_frame(&mut self.stream, &encode_request(req)).map_err(io_err)?;
        match read_frame(&mut self.stream).map_err(io_err)? {
            Some(payload) => decode_response(&payload),
            None => Err(RsError::ControlPlane("server closed the connection".into())),
        }
    }
}

fn io_err(e: std::io::Error) -> RsError {
    RsError::ControlPlane(format!("wire: {e}"))
}

fn unexpected(wanted: &str, got: &Response) -> RsError {
    RsError::Codec(format!("expected {wanted}, got {got:?}"))
}
