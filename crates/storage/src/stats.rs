//! `ANALYZE` statistics.
//!
//! The optimizer's inputs: per-column row counts, null counts, min/max,
//! average width and an NDV (number-of-distinct-values) estimate from a
//! KMV (k-minimum-values) sketch. The paper notes optimizer statistics
//! are "updated with load" by default — another dusty knob — so the COPY
//! path refreshes these incrementally.

use crate::zonemap::{decode_value, encode_value};
use redsim_common::codec::{Reader, Writer};
use redsim_common::{fx_hash64, ColumnData, Result, Value};

/// KMV distinct-value sketch: keep the k smallest 64-bit hashes seen;
/// NDV ≈ (k-1) / max_kept (normalized). Mergeable, tiny, and accurate
/// enough for join ordering.
#[derive(Debug, Clone)]
pub struct KmvSketch {
    k: usize,
    /// Sorted ascending, at most k entries, no duplicates.
    mins: Vec<u64>,
}

impl KmvSketch {
    pub fn new(k: usize) -> Self {
        assert!(k >= 8);
        KmvSketch { k, mins: Vec::with_capacity(k) }
    }

    pub fn insert_hash(&mut self, h: u64) {
        match self.mins.binary_search(&h) {
            Ok(_) => {}
            Err(pos) => {
                if pos < self.k {
                    self.mins.insert(pos, h);
                    self.mins.truncate(self.k);
                }
            }
        }
    }

    pub fn insert_value(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        // Hash the display form: cheap, type-stable, and adequate for an
        // estimate.
        self.insert_hash(fx_hash64(&v.to_string()));
    }

    /// Estimated number of distinct values.
    pub fn estimate(&self) -> f64 {
        if self.mins.len() < self.k {
            // Saw fewer than k distinct hashes: exact.
            self.mins.len() as f64
        } else {
            let kth = *self.mins.last().unwrap() as f64;
            ((self.k - 1) as f64) / (kth / u64::MAX as f64)
        }
    }

    pub fn merge(&mut self, other: &KmvSketch) {
        for &h in &other.mins {
            self.insert_hash(h);
        }
    }
}

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    pub rows: u64,
    pub nulls: u64,
    pub min: Option<Value>,
    pub max: Option<Value>,
    pub ndv: f64,
    /// Mean value width in bytes (row-size estimation).
    pub avg_width: f64,
}

impl ColumnStats {
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.rows);
        w.put_u64(self.nulls);
        for v in [&self.min, &self.max] {
            match v {
                Some(v) => {
                    w.put_bool(true);
                    encode_value(w, v);
                }
                None => w.put_bool(false),
            }
        }
        w.put_f64(self.ndv);
        w.put_f64(self.avg_width);
    }

    pub fn decode(r: &mut Reader) -> Result<Self> {
        let rows = r.get_u64()?;
        let nulls = r.get_u64()?;
        let mut bounds = [None, None];
        for b in &mut bounds {
            if r.get_bool()? {
                *b = Some(decode_value(r)?);
            }
        }
        let [min, max] = bounds;
        Ok(ColumnStats { rows, nulls, min, max, ndv: r.get_f64()?, avg_width: r.get_f64()? })
    }
}

/// Statistics for one table (column order matches the schema).
#[derive(Debug, Clone)]
pub struct TableStats {
    pub rows: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Serialize for the redo log. The KMV sketch itself is *not*
    /// carried — `finish()` already collapsed it to the `ndv` point
    /// estimate, which is all the optimizer reads; post-recovery loads
    /// re-seed sketches from scratch exactly like a fresh `ANALYZE`.
    pub fn encode(&self, w: &mut Writer) {
        w.put_u64(self.rows);
        w.put_u32(self.columns.len() as u32);
        for c in &self.columns {
            c.encode(w);
        }
    }

    /// Inverse of [`TableStats::encode`].
    pub fn decode(r: &mut Reader) -> Result<Self> {
        let rows = r.get_u64()?;
        let n = r.get_u32()? as usize;
        let mut columns = Vec::with_capacity(n);
        for _ in 0..n {
            columns.push(ColumnStats::decode(r)?);
        }
        Ok(TableStats { rows, columns })
    }
}

/// Incremental statistics builder fed by the load path.
#[derive(Debug, Clone)]
pub struct StatsBuilder {
    rows: u64,
    cols: Vec<ColStatsAcc>,
}

#[derive(Debug, Clone)]
struct ColStatsAcc {
    nulls: u64,
    min: Option<Value>,
    max: Option<Value>,
    sketch: KmvSketch,
    bytes: u64,
}

impl StatsBuilder {
    pub fn new(n_columns: usize) -> Self {
        StatsBuilder {
            rows: 0,
            cols: (0..n_columns)
                .map(|_| ColStatsAcc {
                    nulls: 0,
                    min: None,
                    max: None,
                    sketch: KmvSketch::new(256),
                    bytes: 0,
                })
                .collect(),
        }
    }

    /// Fold one batch of columns (must match arity).
    pub fn update(&mut self, cols: &[ColumnData]) {
        assert_eq!(cols.len(), self.cols.len());
        let n = cols.first().map_or(0, |c| c.len());
        self.rows += n as u64;
        for (acc, col) in self.cols.iter_mut().zip(cols) {
            acc.nulls += col.null_count() as u64;
            acc.bytes += col.byte_size() as u64;
            if let Some((mn, mx)) = col.min_max() {
                acc.min = Some(match acc.min.take() {
                    Some(m) if m.cmp_sql(&mn) == std::cmp::Ordering::Less => m,
                    _ => mn,
                });
                acc.max = Some(match acc.max.take() {
                    Some(m) if m.cmp_sql(&mx) == std::cmp::Ordering::Greater => m,
                    _ => mx,
                });
            }
            for i in 0..col.len() {
                if !col.is_null(i) {
                    acc.sketch.insert_value(&col.get(i));
                }
            }
        }
    }

    /// Merge another builder (per-slice builders fold into table stats).
    pub fn merge(&mut self, other: &StatsBuilder) {
        assert_eq!(self.cols.len(), other.cols.len());
        self.rows += other.rows;
        for (a, b) in self.cols.iter_mut().zip(&other.cols) {
            a.nulls += b.nulls;
            a.bytes += b.bytes;
            a.sketch.merge(&b.sketch);
            if let Some(bm) = &b.min {
                a.min = Some(match a.min.take() {
                    Some(m) if m.cmp_sql(bm) == std::cmp::Ordering::Less => m,
                    _ => bm.clone(),
                });
            }
            if let Some(bm) = &b.max {
                a.max = Some(match a.max.take() {
                    Some(m) if m.cmp_sql(bm) == std::cmp::Ordering::Greater => m,
                    _ => bm.clone(),
                });
            }
        }
    }

    pub fn finish(&self) -> TableStats {
        TableStats {
            rows: self.rows,
            columns: self
                .cols
                .iter()
                .map(|a| ColumnStats {
                    rows: self.rows,
                    nulls: a.nulls,
                    min: a.min.clone(),
                    max: a.max.clone(),
                    ndv: a.sketch.estimate(),
                    avg_width: if self.rows > 0 { a.bytes as f64 / self.rows as f64 } else { 0.0 },
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_common::DataType;

    #[test]
    fn kmv_exact_below_k() {
        let mut s = KmvSketch::new(64);
        for i in 0..40 {
            s.insert_value(&Value::Int8(i));
        }
        assert_eq!(s.estimate(), 40.0);
        // Duplicates don't inflate.
        for i in 0..40 {
            s.insert_value(&Value::Int8(i));
        }
        assert_eq!(s.estimate(), 40.0);
    }

    #[test]
    fn kmv_estimates_large_cardinalities() {
        let mut s = KmvSketch::new(256);
        let true_ndv = 50_000;
        for i in 0..true_ndv {
            s.insert_value(&Value::Int8(i));
        }
        let est = s.estimate();
        let err = (est - true_ndv as f64).abs() / true_ndv as f64;
        assert!(err < 0.15, "estimate {est} vs {true_ndv} (err {err:.3})");
    }

    #[test]
    fn kmv_merge_matches_union() {
        let mut a = KmvSketch::new(256);
        let mut b = KmvSketch::new(256);
        for i in 0..10_000 {
            a.insert_value(&Value::Int8(i));
        }
        for i in 5_000..15_000 {
            b.insert_value(&Value::Int8(i));
        }
        a.merge(&b);
        let est = a.estimate();
        assert!((est - 15_000.0).abs() / 15_000.0 < 0.15, "est {est}");
    }

    #[test]
    fn stats_builder_end_to_end() {
        let mut ints = ColumnData::new(DataType::Int8);
        let mut strs = ColumnData::new(DataType::Varchar);
        for i in 0..1_000i64 {
            ints.push_value(&Value::Int8(i % 10)).unwrap();
            if i % 4 == 0 {
                strs.push_null();
            } else {
                strs.push_value(&Value::Str(format!("u{}", i % 100))).unwrap();
            }
        }
        let mut b = StatsBuilder::new(2);
        b.update(&[ints, strs]);
        let stats = b.finish();
        assert_eq!(stats.rows, 1_000);
        assert_eq!(stats.columns[0].nulls, 0);
        assert_eq!(stats.columns[1].nulls, 250);
        assert_eq!(stats.columns[0].min.as_ref().unwrap().as_i64(), Some(0));
        assert_eq!(stats.columns[0].max.as_ref().unwrap().as_i64(), Some(9));
        assert!((stats.columns[0].ndv - 10.0).abs() < 0.5);
        assert!(stats.columns[1].avg_width > 0.0);
    }

    #[test]
    fn table_stats_roundtrip() {
        let mut ints = ColumnData::new(DataType::Int8);
        let mut strs = ColumnData::new(DataType::Varchar);
        for i in 0..500i64 {
            ints.push_value(&Value::Int8(i)).unwrap();
            if i % 3 == 0 {
                strs.push_null();
            } else {
                strs.push_value(&Value::Str(format!("v{i}"))).unwrap();
            }
        }
        let mut b = StatsBuilder::new(2);
        b.update(&[ints, strs]);
        let stats = b.finish();
        let mut w = Writer::new();
        stats.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = TableStats::decode(&mut r).unwrap();
        assert_eq!(back.rows, stats.rows);
        assert_eq!(back.columns.len(), 2);
        for (a, b) in back.columns.iter().zip(&stats.columns) {
            assert_eq!(a.rows, b.rows);
            assert_eq!(a.nulls, b.nulls);
            assert_eq!(a.min, b.min);
            assert_eq!(a.max, b.max);
            assert_eq!(a.ndv, b.ndv);
            assert_eq!(a.avg_width, b.avg_width);
        }
    }

    #[test]
    fn builder_merge() {
        let mut col1 = ColumnData::new(DataType::Int4);
        let mut col2 = ColumnData::new(DataType::Int4);
        for i in 0..100 {
            col1.push_value(&Value::Int4(i)).unwrap();
            col2.push_value(&Value::Int4(i + 50)).unwrap();
        }
        let mut a = StatsBuilder::new(1);
        a.update(&[col1]);
        let mut b = StatsBuilder::new(1);
        b.update(&[col2]);
        a.merge(&b);
        let stats = a.finish();
        assert_eq!(stats.rows, 200);
        assert_eq!(stats.columns[0].min.as_ref().unwrap().as_i64(), Some(0));
        assert_eq!(stats.columns[0].max.as_ref().unwrap().as_i64(), Some(149));
        assert!((stats.columns[0].ndv - 150.0).abs() < 10.0);
    }
}
