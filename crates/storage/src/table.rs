//! Per-slice table storage.
//!
//! Each slice owns an independent `SliceTable` per table (§2.1: a slice
//! "is allocated a portion of the node's memory and disk space, where it
//! processes a portion of the workload assigned to the node"). Data lives
//! in row groups — one encoded block per column per group — divided into
//! a **sorted region** (produced by `VACUUM`, ordered by the table's sort
//! key) and an **unsorted append region** (produced by `COPY`/`INSERT`).
//!
//! Scans prune row groups with zone maps; tables with an *interleaved*
//! sort key additionally prune with z-code interval intersection
//! ([`redsim_zorder`]), which is what makes predicates on any subset of
//! the key columns effective (§3.3).

use crate::analyzer::{analyze_compression, DEFAULT_SAMPLE_ROWS};
use crate::block::{BlockId, EncodedBlock};
use crate::encoding::{decode_column, encode_column, Encoding};
use crate::stats::StatsBuilder;
use crate::store::BlockStore;
use crate::zonemap::ZoneMap;
use redsim_common::codec::{Reader, Writer};
use redsim_common::{ColumnData, DataType, Result, RsError, Schema, Value};
use redsim_zorder::{normalize_f64, normalize_i64, ZSpace};

/// Table sort order specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SortKeySpec {
    /// No sort key: VACUUM merely compacts.
    None,
    /// Compound: lexicographic on the listed columns (prefix-sensitive).
    Compound(Vec<usize>),
    /// Interleaved: z-order over the listed columns (order-insensitive).
    Interleaved(Vec<usize>),
}

impl SortKeySpec {
    pub fn columns(&self) -> &[usize] {
        match self {
            SortKeySpec::None => &[],
            SortKeySpec::Compound(c) | SortKeySpec::Interleaved(c) => c,
        }
    }
}

/// Per-slice table configuration.
#[derive(Debug, Clone)]
pub struct TableConfig {
    /// Rows per row group (the block granularity). Real Redshift blocks
    /// are a fixed 1 MiB; we fix the row count per group instead so all
    /// columns stay row-aligned, and choose the default so a typical
    /// 8-byte column lands near that size region.
    pub rows_per_group: usize,
    pub sort_key: SortKeySpec,
    /// Pick per-column encodings automatically on first flush (the COPY
    /// default); `false` forces Raw everywhere (ablation baseline).
    pub auto_compress: bool,
}

impl Default for TableConfig {
    fn default() -> Self {
        TableConfig { rows_per_group: 4_096, sort_key: SortKeySpec::None, auto_compress: true }
    }
}

/// One column's inclusive range constraint for scan pruning.
#[derive(Debug, Clone)]
pub struct ColumnRange {
    pub col: usize,
    pub lo: Option<Value>,
    pub hi: Option<Value>,
}

/// A conjunction of column ranges (what the planner can push down).
#[derive(Debug, Clone, Default)]
pub struct ScanPredicate {
    pub ranges: Vec<ColumnRange>,
}

#[derive(Debug, Clone)]
struct BlockRef {
    id: BlockId,
    zone: ZoneMap,
}

#[derive(Debug, Clone)]
struct RowGroup {
    rows: u32,
    cols: Vec<BlockRef>,
    /// z-code interval covered by this group (interleaved sorted region).
    z_range: Option<(u128, u128)>,
}

/// Normalization parameters mapping key-column values onto the z-grid.
#[derive(Debug, Clone)]
struct ZNorm {
    space: ZSpace,
    /// (column index, int min/max or float min/max) per dimension.
    dims: Vec<(usize, NormParam)>,
}

#[derive(Debug, Clone)]
enum NormParam {
    Int { min: i64, max: i64 },
    Float { min: f64, max: f64 },
}

/// Scan output: decoded batches plus pruning telemetry for EXPLAIN.
#[derive(Debug, Default)]
pub struct ScanOutput {
    /// One entry per surviving row group: the projected columns.
    pub batches: Vec<Vec<ColumnData>>,
    pub groups_total: usize,
    pub groups_skipped: usize,
    pub blocks_read: usize,
    pub bytes_read: u64,
}

/// Snapshot of a slice table's mutable write state, taken by
/// [`SliceTable::begin_write`] before the first append of a write
/// statement and either discarded on success or handed back to
/// [`SliceTable::rollback_write`] to undo every effect of the
/// statement (staged-then-atomic-install, cf. C-Store's WOS→ROS).
///
/// The snapshot is cheap: group manifests are captured by *length*
/// (append/flush only ever push), only the buffered tail — at most
/// `rows_per_group - 1` rows — is deep-cloned.
#[derive(Debug)]
pub struct WriteCheckpoint {
    encodings: Option<Vec<Encoding>>,
    sorted_len: usize,
    unsorted_len: usize,
    buffer: Vec<ColumnData>,
    auto_compress: bool,
}

impl WriteCheckpoint {
    /// The auto-compress flag as of the checkpoint. COPY's COMPUPDATE
    /// is a per-statement override, so the loader restores this on
    /// *both* commit and rollback.
    pub fn auto_compress(&self) -> bool {
        self.auto_compress
    }
}

/// Columnar storage of one table on one slice.
///
/// `Clone` is deliberate: MVCC publishes a committed *version* of every
/// slice (manifests only — block payloads live in the store), so a deep
/// copy here is a few group descriptors, not table data.
#[derive(Debug, Clone)]
pub struct SliceTable {
    schema: Schema,
    config: TableConfig,
    /// Locked-in per-column encodings (chosen on first flush).
    encodings: Option<Vec<Encoding>>,
    sorted: Vec<RowGroup>,
    unsorted: Vec<RowGroup>,
    /// Partial row group not yet encoded.
    buffer: Vec<ColumnData>,
    znorm: Option<ZNorm>,
}

impl SliceTable {
    pub fn new(schema: Schema, config: TableConfig) -> Result<Self> {
        for &c in config.sort_key.columns() {
            if c >= schema.len() {
                return Err(RsError::Analysis(format!("sort key column {c} out of range")));
            }
            if matches!(config.sort_key, SortKeySpec::Interleaved(_)) {
                let ty = schema.column(c).data_type;
                if !ty.is_numeric() && !matches!(ty, DataType::Date | DataType::Timestamp) {
                    return Err(RsError::Unsupported(format!(
                        "INTERLEAVED sort keys support numeric/date/timestamp columns; {} is {ty}",
                        schema.column(c).name
                    )));
                }
            }
        }
        if matches!(&config.sort_key, SortKeySpec::Interleaved(c) if c.len() > 8 || c.is_empty()) {
            return Err(RsError::Unsupported("INTERLEAVED takes 1..=8 columns".into()));
        }
        let buffer = schema.columns().iter().map(|c| ColumnData::new(c.data_type)).collect();
        Ok(SliceTable {
            schema,
            config,
            encodings: None,
            sorted: Vec::new(),
            unsorted: Vec::new(),
            buffer,
            znorm: None,
        })
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn sort_key(&self) -> &SortKeySpec {
        &self.config.sort_key
    }

    /// Total rows (sorted + unsorted + buffered).
    pub fn row_count(&self) -> u64 {
        let grouped: u64 = self
            .sorted
            .iter()
            .chain(&self.unsorted)
            .map(|g| g.rows as u64)
            .sum();
        grouped + self.buffer.first().map_or(0, |c| c.len()) as u64
    }

    /// Rows in the unsorted region (drives "vacuum needed" telemetry).
    pub fn unsorted_rows(&self) -> u64 {
        self.unsorted.iter().map(|g| g.rows as u64).sum::<u64>()
            + self.buffer.first().map_or(0, |c| c.len()) as u64
    }

    /// Chosen per-column encodings, if already locked in.
    pub fn encodings(&self) -> Option<&[Encoding]> {
        self.encodings.as_deref()
    }

    /// Toggle automatic compression analysis (`COPY … COMPUPDATE OFF`).
    /// Only affects tables whose encodings are not yet locked in.
    pub fn set_auto_compress(&mut self, on: bool) {
        self.config.auto_compress = on;
    }

    /// Snapshot the mutable write state ahead of a write statement.
    /// Pair with [`SliceTable::rollback_write`] on any downstream error;
    /// on success simply drop the checkpoint (install is the no-op).
    pub fn begin_write(&self) -> WriteCheckpoint {
        WriteCheckpoint {
            encodings: self.encodings.clone(),
            sorted_len: self.sorted.len(),
            unsorted_len: self.unsorted.len(),
            buffer: self.buffer.clone(),
            auto_compress: self.config.auto_compress,
        }
    }

    /// Restore the state captured by [`SliceTable::begin_write`],
    /// deleting every block encoded since the checkpoint from `store`
    /// (for a replicated store that removes primary *and* secondary
    /// copies and the placement record, so the mirror stays in
    /// lockstep; S3 backup copies are governed by snapshot retention
    /// and become unreachable orphans). Returns the number of blocks
    /// dropped.
    pub fn rollback_write(&mut self, cp: WriteCheckpoint, store: &dyn BlockStore) -> usize {
        let mut dropped = 0usize;
        for g in self.sorted.drain(cp.sorted_len..) {
            for b in &g.cols {
                store.delete(b.id);
                dropped += 1;
            }
        }
        for g in self.unsorted.drain(cp.unsorted_len..) {
            for b in &g.cols {
                store.delete(b.id);
                dropped += 1;
            }
        }
        self.buffer = cp.buffer;
        self.encodings = cp.encodings;
        self.config.auto_compress = cp.auto_compress;
        dropped
    }

    /// Ids of every block owned by this slice table (replication/backup).
    pub fn block_ids(&self) -> Vec<BlockId> {
        self.sorted
            .iter()
            .chain(&self.unsorted)
            .flat_map(|g| g.cols.iter().map(|b| b.id))
            .collect()
    }

    /// Append a batch of columns (arity/type must match the schema).
    /// Full row groups are encoded and written through to `store`.
    pub fn append(&mut self, cols: &[ColumnData], store: &dyn BlockStore) -> Result<()> {
        if cols.len() != self.schema.len() {
            return Err(RsError::Analysis(format!(
                "batch arity {} != schema arity {}",
                cols.len(),
                self.schema.len()
            )));
        }
        let n = cols.first().map_or(0, |c| c.len());
        for (i, c) in cols.iter().enumerate() {
            if c.len() != n {
                return Err(RsError::Analysis("ragged batch".into()));
            }
            if !c.data_type().storage_compatible(self.schema.column(i).data_type) {
                return Err(RsError::Analysis(format!(
                    "column {} type {} != schema type {}",
                    i,
                    c.data_type(),
                    self.schema.column(i).data_type
                )));
            }
        }
        for (buf, col) in self.buffer.iter_mut().zip(cols) {
            buf.append(col);
        }
        while self.buffer.first().map_or(0, |c| c.len()) >= self.config.rows_per_group {
            let take = self.config.rows_per_group;
            let group_cols: Vec<ColumnData> =
                self.buffer.iter().map(|c| c.slice(0, take)).collect();
            let rest: Vec<ColumnData> =
                self.buffer.iter().map(|c| c.slice(take, c.len())).collect();
            self.buffer = rest;
            let group = self.encode_group(&group_cols, store)?;
            self.unsorted.push(group);
        }
        Ok(())
    }

    /// Flush any buffered partial group to the unsorted region.
    pub fn flush(&mut self, store: &dyn BlockStore) -> Result<()> {
        if self.buffer.first().map_or(0, |c| c.len()) == 0 {
            return Ok(());
        }
        let group_cols = std::mem::replace(
            &mut self.buffer,
            self.schema.columns().iter().map(|c| ColumnData::new(c.data_type)).collect(),
        );
        let group = self.encode_group(&group_cols, store)?;
        self.unsorted.push(group);
        Ok(())
    }

    fn ensure_encodings(&mut self, cols: &[ColumnData]) {
        if self.encodings.is_some() {
            return;
        }
        let encodings = if self.config.auto_compress {
            cols.iter().map(|c| analyze_compression(c, DEFAULT_SAMPLE_ROWS)).collect()
        } else {
            vec![Encoding::Raw; cols.len()]
        };
        self.encodings = Some(encodings);
    }

    fn encode_group(&mut self, cols: &[ColumnData], store: &dyn BlockStore) -> Result<RowGroup> {
        self.ensure_encodings(cols);
        let encodings = self.encodings.clone().expect("set above");
        let rows = cols.first().map_or(0, |c| c.len()) as u32;
        let mut refs: Vec<BlockRef> = Vec::with_capacity(cols.len());
        for (col, &enc) in cols.iter().zip(&encodings) {
            // The analyzer picks from a sample; data later in the load can
            // break a codec's data-dependent limits (dict overflow). Fall
            // back to Raw rather than failing the load.
            let payload = match encode_column(col, enc)
                .or_else(|_| encode_column(col, Encoding::Raw))
            {
                Ok(p) => p,
                Err(e) => {
                    // Scrub columns already written for this group so a
                    // failed encode leaves no orphan blocks behind.
                    for r in &refs {
                        store.delete(r.id);
                    }
                    return Err(e);
                }
            };
            let zone = ZoneMap::build(col);
            let block = EncodedBlock::new(rows, payload);
            let id = block.id;
            if let Err(e) = store.put(block) {
                // A failed put may have partially dual-written (mirror
                // primary ok, secondary refused → no placement record).
                // delete() is idempotent and removes the id from every
                // node, so scrub the failing id too, then the group's
                // already-written columns.
                store.delete(id);
                for r in &refs {
                    store.delete(r.id);
                }
                return Err(e);
            }
            refs.push(BlockRef { id, zone });
        }
        let z_range = self.z_range_of(cols);
        Ok(RowGroup { rows, cols: refs, z_range })
    }

    /// Compute the z-code range covered by a group (only meaningful after
    /// vacuum has established normalization parameters).
    fn z_range_of(&self, cols: &[ColumnData]) -> Option<(u128, u128)> {
        let norm = self.znorm.as_ref()?;
        let n = cols.first().map_or(0, |c| c.len());
        if n == 0 {
            return None;
        }
        let mut lo = u128::MAX;
        let mut hi = 0u128;
        for row in 0..n {
            let code = zcode_of_row(norm, cols, row);
            lo = lo.min(code);
            hi = hi.max(code);
        }
        Some((lo, hi))
    }

    /// Scan with projection and optional pruning predicate.
    pub fn scan(
        &self,
        store: &dyn BlockStore,
        projection: &[usize],
        pred: Option<&ScanPredicate>,
    ) -> Result<ScanOutput> {
        let mut out = ScanOutput::default();
        let rect = pred.and_then(|p| self.pred_to_rect(p));
        for group in self.sorted.iter().chain(&self.unsorted) {
            out.groups_total += 1;
            if let Some(p) = pred {
                if !self.group_may_match(group, p, rect.as_deref()) {
                    out.groups_skipped += 1;
                    continue;
                }
            }
            let mut batch = Vec::with_capacity(projection.len());
            for &ci in projection {
                if ci >= self.schema.len() {
                    return Err(RsError::Analysis(format!("projection column {ci} out of range")));
                }
                let blk = store.get(group.cols[ci].id)?;
                out.blocks_read += 1;
                out.bytes_read += blk.byte_size() as u64;
                let col = decode_column(&blk.payload, Some(self.schema.column(ci).data_type))?;
                batch.push(col);
            }
            out.batches.push(batch);
        }
        // Buffered rows are always visible (they have no zone maps yet).
        let buffered = self.buffer.first().map_or(0, |c| c.len());
        if buffered > 0 {
            out.groups_total += 1;
            let batch: Vec<ColumnData> =
                projection.iter().map(|&ci| self.buffer[ci].clone()).collect();
            out.batches.push(batch);
        }
        Ok(out)
    }

    fn group_may_match(
        &self,
        group: &RowGroup,
        pred: &ScanPredicate,
        rect: Option<&[(u32, u32)]>,
    ) -> bool {
        for r in &pred.ranges {
            if r.col < group.cols.len()
                && !group.cols[r.col].zone.may_overlap(r.lo.as_ref(), r.hi.as_ref())
            {
                return false;
            }
        }
        // z-interval pruning on interleaved-sorted groups.
        if let (Some(rect), Some((zlo, zhi)), Some(norm)) = (rect, group.z_range, &self.znorm) {
            let lo: Vec<u32> = rect.iter().map(|&(l, _)| l).collect();
            let hi: Vec<u32> = rect.iter().map(|&(_, h)| h).collect();
            if !norm.space.interval_intersects_rect(zlo, zhi, &lo, &hi) {
                return false;
            }
        }
        true
    }

    /// Convert predicate ranges on key columns into a normalized z-grid
    /// rectangle (per dimension: (lo_cell, hi_cell)).
    fn pred_to_rect(&self, pred: &ScanPredicate) -> Option<Vec<(u32, u32)>> {
        let norm = self.znorm.as_ref()?;
        let mut rect: Vec<(u32, u32)> =
            norm.dims.iter().map(|_| (0, norm.space.max_coord())).collect();
        let mut constrained = false;
        for (d, (col, param)) in norm.dims.iter().enumerate() {
            for r in &pred.ranges {
                if r.col != *col {
                    continue;
                }
                let (cur_lo, cur_hi) = rect[d];
                let lo_cell = r.lo.as_ref().map(|v| normalize_value(param, v, norm.space.bits_per_dim()));
                let hi_cell = r.hi.as_ref().map(|v| normalize_value(param, v, norm.space.bits_per_dim()));
                rect[d] = (
                    lo_cell.map_or(cur_lo, |c| c.max(cur_lo)),
                    hi_cell.map_or(cur_hi, |c| c.min(cur_hi)),
                );
                if rect[d].0 > rect[d].1 {
                    // Empty rectangle: clamp (callers still get zone-map
                    // pruning; an empty rect prunes every group anyway).
                    rect[d] = (rect[d].0, rect[d].0);
                }
                constrained = true;
            }
        }
        constrained.then_some(rect)
    }

    /// VACUUM: merge sorted + unsorted + buffer into a fully sorted
    /// region (by the table's sort key), rewriting all blocks. Returns
    /// the number of rows rewritten.
    pub fn vacuum(&mut self, store: &dyn BlockStore) -> Result<u64> {
        let (rows, old_blocks) = self.vacuum_deferred(store)?;
        for id in old_blocks {
            store.delete(id);
        }
        Ok(rows)
    }

    /// [`SliceTable::vacuum`] with the old blocks' deletion *deferred*:
    /// the rewrite installs new groups but leaves the pre-vacuum blocks
    /// in the store, returning their ids for the caller to delete. The
    /// crash-recovery write path needs this ordering — old blocks must
    /// outlive the WAL commit of the post-vacuum manifests, so that a
    /// crash on either side of the commit leaves one complete, readable
    /// block set (the other side's blocks become scrubbable orphans).
    /// On error the table is untouched and any partially-written new
    /// blocks are scrubbed.
    pub fn vacuum_deferred(&mut self, store: &dyn BlockStore) -> Result<(u64, Vec<BlockId>)> {
        // Materialize everything.
        let all_cols_idx: Vec<usize> = (0..self.schema.len()).collect();
        let scanned = self.scan(store, &all_cols_idx, None)?;
        let mut full: Vec<ColumnData> =
            self.schema.columns().iter().map(|c| ColumnData::new(c.data_type)).collect();
        for batch in &scanned.batches {
            for (acc, col) in full.iter_mut().zip(batch) {
                acc.append(col);
            }
        }
        let n = full.first().map_or(0, |c| c.len());

        // Establish sort order.
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut new_znorm = None;
        match &self.config.sort_key {
            SortKeySpec::None => {}
            SortKeySpec::Compound(keys) => {
                let keys = keys.clone();
                order.sort_by(|&a, &b| {
                    for &k in &keys {
                        let o = full[k].get(a as usize).cmp_sql(&full[k].get(b as usize));
                        if o != std::cmp::Ordering::Equal {
                            return o;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
            }
            SortKeySpec::Interleaved(keys) => {
                let norm = build_znorm(keys, &full)?;
                let codes: Vec<u128> =
                    (0..n).map(|row| zcode_of_row(&norm, &full, row)).collect();
                order.sort_by_key(|&i| codes[i as usize]);
                new_znorm = Some(norm);
            }
        }
        let sorted_cols: Vec<ColumnData> = full.iter().map(|c| c.gather(&order)).collect();

        // Rewrite into new blocks first; the old blocks stay until the
        // caller deletes them. Stage into a local vec so a mid-rewrite
        // error leaves `self` exactly as it was.
        let old_blocks = self.block_ids();
        if let Some(norm) = new_znorm {
            self.znorm = Some(norm);
        }
        let mut new_sorted = Vec::new();
        let mut offset = 0usize;
        while offset < n {
            let end = (offset + self.config.rows_per_group).min(n);
            let group_cols: Vec<ColumnData> =
                sorted_cols.iter().map(|c| c.slice(offset, end)).collect();
            let group = match self.encode_group(&group_cols, store) {
                Ok(g) => g,
                Err(e) => {
                    for g in &new_sorted {
                        let g: &RowGroup = g;
                        for b in &g.cols {
                            store.delete(b.id);
                        }
                    }
                    return Err(e);
                }
            };
            new_sorted.push(group);
            offset = end;
        }
        self.sorted = new_sorted;
        self.unsorted.clear();
        self.buffer =
            self.schema.columns().iter().map(|c| ColumnData::new(c.data_type)).collect();
        Ok((n as u64, old_blocks))
    }

    /// Compute full table statistics (ANALYZE) for this slice.
    pub fn analyze(&self, store: &dyn BlockStore) -> Result<StatsBuilder> {
        let all: Vec<usize> = (0..self.schema.len()).collect();
        let scanned = self.scan(store, &all, None)?;
        let mut b = StatsBuilder::new(self.schema.len());
        for batch in &scanned.batches {
            b.update(batch);
        }
        Ok(b)
    }

    /// Remove every block owned by this table from the store.
    pub fn drop_storage(&mut self, store: &dyn BlockStore) {
        for id in self.block_ids() {
            store.delete(id);
        }
        self.sorted.clear();
        self.unsorted.clear();
        self.buffer =
            self.schema.columns().iter().map(|c| ColumnData::new(c.data_type)).collect();
    }

    /// Serialize the slice-table metadata (not the blocks) for snapshots.
    pub fn encode_meta(&self, w: &mut Writer) {
        self.schema.encode(w);
        w.put_u32(self.config.rows_per_group as u32);
        w.put_bool(self.config.auto_compress);
        match &self.config.sort_key {
            SortKeySpec::None => w.put_u8(0),
            SortKeySpec::Compound(c) => {
                w.put_u8(1);
                w.put_u32(c.len() as u32);
                for &i in c {
                    w.put_u32(i as u32);
                }
            }
            SortKeySpec::Interleaved(c) => {
                w.put_u8(2);
                w.put_u32(c.len() as u32);
                for &i in c {
                    w.put_u32(i as u32);
                }
            }
        }
        match &self.encodings {
            Some(encs) => {
                w.put_bool(true);
                w.put_u32(encs.len() as u32);
                for e in encs {
                    w.put_u8(e.tag());
                }
            }
            None => w.put_bool(false),
        }
        for region in [&self.sorted, &self.unsorted] {
            w.put_u32(region.len() as u32);
            for g in region {
                w.put_u32(g.rows);
                w.put_u32(g.cols.len() as u32);
                for b in &g.cols {
                    w.put_u64(b.id.0);
                    b.zone.encode(w);
                }
                match g.z_range {
                    Some((a, b)) => {
                        w.put_bool(true);
                        w.put_i128(a as i128);
                        w.put_i128(b as i128);
                    }
                    None => w.put_bool(false),
                }
            }
        }
        match &self.znorm {
            Some(norm) => {
                w.put_bool(true);
                w.put_u8(norm.dims.len() as u8);
                w.put_u8(norm.space.bits_per_dim() as u8);
                for (col, param) in &norm.dims {
                    w.put_u32(*col as u32);
                    match param {
                        NormParam::Int { min, max } => {
                            w.put_u8(0);
                            w.put_i64(*min);
                            w.put_i64(*max);
                        }
                        NormParam::Float { min, max } => {
                            w.put_u8(1);
                            w.put_f64(*min);
                            w.put_f64(*max);
                        }
                    }
                }
            }
            None => w.put_bool(false),
        }
    }

    /// Inverse of [`encode_meta`](Self::encode_meta). The blocks
    /// referenced must be resolvable through the store handed to later
    /// scans (streaming restore page-faults them in).
    pub fn decode_meta(r: &mut Reader) -> Result<SliceTable> {
        let schema = Schema::decode(r)?;
        let rows_per_group = r.get_u32()? as usize;
        let auto_compress = r.get_bool()?;
        let sort_key = match r.get_u8()? {
            0 => SortKeySpec::None,
            tag @ (1 | 2) => {
                let n = r.get_u32()? as usize;
                let mut cols = Vec::with_capacity(n);
                for _ in 0..n {
                    cols.push(r.get_u32()? as usize);
                }
                if tag == 1 {
                    SortKeySpec::Compound(cols)
                } else {
                    SortKeySpec::Interleaved(cols)
                }
            }
            t => return Err(RsError::Codec(format!("bad sort key tag {t}"))),
        };
        let encodings = if r.get_bool()? {
            let n = r.get_u32()? as usize;
            let mut encs = Vec::with_capacity(n);
            for _ in 0..n {
                encs.push(Encoding::from_tag(r.get_u8()?)?);
            }
            Some(encs)
        } else {
            None
        };
        let mut regions: Vec<Vec<RowGroup>> = Vec::with_capacity(2);
        for _ in 0..2 {
            let n_groups = r.get_u32()? as usize;
            let mut groups = Vec::with_capacity(n_groups);
            for _ in 0..n_groups {
                let rows = r.get_u32()?;
                let n_cols = r.get_u32()? as usize;
                let mut cols = Vec::with_capacity(n_cols);
                for _ in 0..n_cols {
                    let id = BlockId(r.get_u64()?);
                    let zone = ZoneMap::decode(r)?;
                    cols.push(BlockRef { id, zone });
                }
                let z_range = if r.get_bool()? {
                    Some((r.get_i128()? as u128, r.get_i128()? as u128))
                } else {
                    None
                };
                groups.push(RowGroup { rows, cols, z_range });
            }
            regions.push(groups);
        }
        let unsorted = regions.pop().expect("two regions");
        let sorted = regions.pop().expect("two regions");
        let znorm = if r.get_bool()? {
            let ndims = r.get_u8()? as usize;
            let bits = r.get_u8()? as u32;
            let mut dims = Vec::with_capacity(ndims);
            for _ in 0..ndims {
                let col = r.get_u32()? as usize;
                let param = match r.get_u8()? {
                    0 => NormParam::Int { min: r.get_i64()?, max: r.get_i64()? },
                    1 => NormParam::Float { min: r.get_f64()?, max: r.get_f64()? },
                    t => return Err(RsError::Codec(format!("bad norm tag {t}"))),
                };
                dims.push((col, param));
            }
            Some(ZNorm { space: ZSpace::with_bits(ndims, bits), dims })
        } else {
            None
        };
        let buffer = schema.columns().iter().map(|c| ColumnData::new(c.data_type)).collect();
        Ok(SliceTable {
            schema,
            config: TableConfig { rows_per_group, sort_key, auto_compress },
            encodings,
            sorted,
            unsorted,
            buffer,
            znorm,
        })
    }
}

fn build_znorm(keys: &[usize], cols: &[ColumnData]) -> Result<ZNorm> {
    // Bits per dim chosen by the space; dims from per-column min/max.
    let space = ZSpace::new(keys.len());
    let mut dims = Vec::with_capacity(keys.len());
    for &k in keys {
        let param = match cols[k].data_type() {
            DataType::Float8 => {
                let (mn, mx) = match cols[k].min_max() {
                    Some((a, b)) => (a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0)),
                    None => (0.0, 0.0),
                };
                NormParam::Float { min: mn, max: mx }
            }
            ty if ty.is_integer() || matches!(ty, DataType::Date | DataType::Timestamp) => {
                let (mn, mx) = match cols[k].min_max() {
                    Some((a, b)) => (a.as_i64().unwrap_or(0), b.as_i64().unwrap_or(0)),
                    None => (0, 0),
                };
                NormParam::Int { min: mn, max: mx }
            }
            DataType::Decimal(_, _) => {
                let (mn, mx) = match cols[k].min_max() {
                    Some((a, b)) => (a.as_f64().unwrap_or(0.0), b.as_f64().unwrap_or(0.0)),
                    None => (0.0, 0.0),
                };
                NormParam::Float { min: mn, max: mx }
            }
            ty => {
                return Err(RsError::Unsupported(format!(
                    "interleaved sort key on {ty} not supported"
                )))
            }
        };
        dims.push((k, param));
    }
    Ok(ZNorm { space, dims })
}

fn normalize_value(param: &NormParam, v: &Value, bits: u32) -> u32 {
    match param {
        NormParam::Int { min, max } => normalize_i64(v.as_i64().unwrap_or(*min), *min, *max, bits),
        NormParam::Float { min, max } => {
            normalize_f64(v.as_f64().unwrap_or(*min), *min, *max, bits)
        }
    }
}

fn zcode_of_row(norm: &ZNorm, cols: &[ColumnData], row: usize) -> u128 {
    let coords: Vec<u32> = norm
        .dims
        .iter()
        .map(|(col, param)| {
            if cols[*col].is_null(row) {
                // NULLs sort to the origin cell.
                0
            } else {
                normalize_value(param, &cols[*col].get(row), norm.space.bits_per_dim())
            }
        })
        .collect();
    norm.space.encode(&coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemBlockStore;
    use redsim_common::ColumnDef;

    fn schema2() -> Schema {
        Schema::new(vec![
            ColumnDef::new("a", DataType::Int8),
            ColumnDef::new("b", DataType::Varchar),
        ])
        .unwrap()
    }

    fn batch(rows: std::ops::Range<i64>) -> Vec<ColumnData> {
        let mut a = ColumnData::new(DataType::Int8);
        let mut b = ColumnData::new(DataType::Varchar);
        for i in rows {
            a.push_value(&Value::Int8(i)).unwrap();
            b.push_value(&Value::Str(format!("row{i}"))).unwrap();
        }
        vec![a, b]
    }

    #[test]
    fn write_checkpoint_rollback_restores_state_and_deletes_blocks() {
        let store = MemBlockStore::new();
        let mut t = SliceTable::new(
            schema2(),
            TableConfig { rows_per_group: 100, ..Default::default() },
        )
        .unwrap();
        // Committed base state: 150 rows (one sealed group + 50 buffered).
        t.append(&batch(0..150), &store).unwrap();
        let base_rows = t.row_count();
        let base_blocks = t.block_ids();
        let base_store_blocks = store.block_count();
        let base_encodings = t.encodings().map(<[Encoding]>::to_vec);

        // Open a write txn, mutate everything it protects, then roll back.
        let cp = t.begin_write();
        t.set_auto_compress(false);
        t.append(&batch(150..400), &store).unwrap(); // seals 2 more groups
        t.flush(&store).unwrap(); // seals the mixed tail
        assert!(t.row_count() > base_rows);
        assert!(store.block_count() > base_store_blocks);
        let dropped = t.rollback_write(cp, &store);
        assert!(dropped > 0, "rollback must delete the txn's blocks");
        assert_eq!(t.row_count(), base_rows, "row count not restored");
        assert_eq!(t.block_ids(), base_blocks, "manifest not restored");
        assert_eq!(
            store.block_count(),
            base_store_blocks,
            "orphan blocks left in the store"
        );
        assert_eq!(
            t.encodings().map(<[Encoding]>::to_vec),
            base_encodings,
            "encodings not restored"
        );

        // The slice is fully writable afterwards: same data re-appends.
        let cp = t.begin_write();
        t.append(&batch(150..400), &store).unwrap();
        t.flush(&store).unwrap();
        drop(cp); // install = keep
        assert_eq!(t.row_count(), 400);
    }

    #[test]
    fn rollback_of_first_write_resets_locked_encodings() {
        // Encodings lock in on the first seal; aborting that first write
        // must unlock them so the next COPY's COMPUPDATE decides afresh.
        let store = MemBlockStore::new();
        let mut t = SliceTable::new(
            schema2(),
            TableConfig { rows_per_group: 100, ..Default::default() },
        )
        .unwrap();
        let cp = t.begin_write();
        t.append(&batch(0..150), &store).unwrap();
        assert!(t.encodings().is_some(), "first seal locks encodings");
        t.rollback_write(cp, &store);
        assert!(t.encodings().is_none(), "aborted first write left encodings locked");
        assert_eq!(t.row_count(), 0);
        assert_eq!(store.block_count(), 0);
    }

    #[test]
    fn append_flush_scan_roundtrip() {
        let store = MemBlockStore::new();
        let mut t = SliceTable::new(
            schema2(),
            TableConfig { rows_per_group: 100, ..Default::default() },
        )
        .unwrap();
        t.append(&batch(0..250), &store).unwrap();
        assert_eq!(t.row_count(), 250);
        // 2 full groups encoded, 50 buffered.
        assert_eq!(t.unsorted_rows(), 250);
        t.flush(&store).unwrap();
        let out = t.scan(&store, &[0, 1], None).unwrap();
        let total: usize = out.batches.iter().map(|b| b[0].len()).sum();
        assert_eq!(total, 250);
        // Verify a value survived encode/decode.
        let first = &out.batches[0];
        assert_eq!(first[1].get_str(3), Some("row3"));
    }

    #[test]
    fn zone_map_pruning_on_sorted_data() {
        let store = MemBlockStore::new();
        let mut t = SliceTable::new(
            schema2(),
            TableConfig {
                rows_per_group: 100,
                sort_key: SortKeySpec::Compound(vec![0]),
                ..Default::default()
            },
        )
        .unwrap();
        t.append(&batch(0..1000), &store).unwrap();
        t.flush(&store).unwrap();
        t.vacuum(&store).unwrap();
        // Range predicate on the sort key hits exactly 1 of 10 groups.
        let pred = ScanPredicate {
            ranges: vec![ColumnRange {
                col: 0,
                lo: Some(Value::Int8(500)),
                hi: Some(Value::Int8(550)),
            }],
        };
        let out = t.scan(&store, &[0], Some(&pred)).unwrap();
        assert_eq!(out.groups_total, 10);
        assert!(out.groups_skipped >= 8, "skipped {}", out.groups_skipped);
        let total: usize = out.batches.iter().map(|b| b[0].len()).sum();
        assert!(total >= 51 && total <= 200);
    }

    #[test]
    fn no_pruning_on_random_data() {
        let store = MemBlockStore::new();
        let mut t = SliceTable::new(
            schema2(),
            TableConfig { rows_per_group: 100, ..Default::default() },
        )
        .unwrap();
        // Scatter values so every group spans the whole domain.
        let mut a = ColumnData::new(DataType::Int8);
        let mut b = ColumnData::new(DataType::Varchar);
        for i in 0..1000i64 {
            a.push_value(&Value::Int8((i * 2_654_435_761) % 1000)).unwrap();
            b.push_value(&Value::Str("x".into())).unwrap();
        }
        t.append(&[a, b], &store).unwrap();
        t.flush(&store).unwrap();
        let pred = ScanPredicate {
            ranges: vec![ColumnRange {
                col: 0,
                lo: Some(Value::Int8(500)),
                hi: Some(Value::Int8(501)),
            }],
        };
        let out = t.scan(&store, &[0], Some(&pred)).unwrap();
        assert_eq!(out.groups_skipped, 0);
    }

    #[test]
    fn vacuum_sorts_and_rewrites() {
        let store = MemBlockStore::new();
        let mut t = SliceTable::new(
            schema2(),
            TableConfig {
                rows_per_group: 64,
                sort_key: SortKeySpec::Compound(vec![0]),
                ..Default::default()
            },
        )
        .unwrap();
        // Load in reverse order.
        let mut a = ColumnData::new(DataType::Int8);
        let mut b = ColumnData::new(DataType::Varchar);
        for i in (0..500i64).rev() {
            a.push_value(&Value::Int8(i)).unwrap();
            b.push_value(&Value::Str(format!("r{i}"))).unwrap();
        }
        t.append(&[a, b], &store).unwrap();
        t.flush(&store).unwrap();
        let before_blocks = store.block_count();
        let rewritten = t.vacuum(&store).unwrap();
        assert_eq!(rewritten, 500);
        assert_eq!(t.unsorted_rows(), 0);
        assert!(store.block_count() <= before_blocks);
        // Scan comes back globally sorted.
        let out = t.scan(&store, &[0], None).unwrap();
        let mut all = Vec::new();
        for bch in &out.batches {
            for i in 0..bch[0].len() {
                all.push(bch[0].get_i64(i).unwrap());
            }
        }
        let mut expect = all.clone();
        expect.sort();
        assert_eq!(all, expect);
    }

    #[test]
    fn interleaved_prunes_on_any_dimension() {
        let store = MemBlockStore::new();
        let schema = Schema::new(vec![
            ColumnDef::new("x", DataType::Int8),
            ColumnDef::new("y", DataType::Int8),
        ])
        .unwrap();
        let mut t = SliceTable::new(
            schema,
            TableConfig {
                rows_per_group: 256,
                sort_key: SortKeySpec::Interleaved(vec![0, 1]),
                ..Default::default()
            },
        )
        .unwrap();
        let mut x = ColumnData::new(DataType::Int8);
        let mut y = ColumnData::new(DataType::Int8);
        for i in 0..4096i64 {
            x.push_value(&Value::Int8((i * 37) % 1024)).unwrap();
            y.push_value(&Value::Int8((i * 101) % 1024)).unwrap();
        }
        t.append(&[x, y], &store).unwrap();
        t.flush(&store).unwrap();
        t.vacuum(&store).unwrap();
        // Predicate on the *second* key column alone must still prune.
        let pred = ScanPredicate {
            ranges: vec![ColumnRange {
                col: 1,
                lo: Some(Value::Int8(0)),
                hi: Some(Value::Int8(63)),
            }],
        };
        let out = t.scan(&store, &[0, 1], Some(&pred)).unwrap();
        assert!(
            out.groups_skipped > 0,
            "interleaved sort should prune on non-leading column: {out:?}"
        );
        // Results are a superset of matching rows; verify none were lost.
        let mut matches = 0;
        for bch in &out.batches {
            for i in 0..bch[1].len() {
                if (0..=63).contains(&bch[1].get_i64(i).unwrap()) {
                    matches += 1;
                }
            }
        }
        assert_eq!(matches, 4096 / 1024 * 64, "every matching row present");
    }

    #[test]
    fn meta_roundtrip_preserves_scan() {
        let store = MemBlockStore::new();
        let mut t = SliceTable::new(
            schema2(),
            TableConfig {
                rows_per_group: 128,
                sort_key: SortKeySpec::Compound(vec![0]),
                ..Default::default()
            },
        )
        .unwrap();
        t.append(&batch(0..300), &store).unwrap();
        t.flush(&store).unwrap();
        t.vacuum(&store).unwrap();
        let mut w = Writer::new();
        t.encode_meta(&mut w);
        let bytes = w.into_bytes();
        let t2 = SliceTable::decode_meta(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(t2.row_count(), 300);
        let out = t2.scan(&store, &[0, 1], None).unwrap();
        let total: usize = out.batches.iter().map(|b| b[0].len()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn type_mismatch_on_append_rejected() {
        let store = MemBlockStore::new();
        let mut t = SliceTable::new(schema2(), TableConfig::default()).unwrap();
        let wrong = vec![ColumnData::new(DataType::Int4), ColumnData::new(DataType::Varchar)];
        assert!(t.append(&wrong, &store).is_err());
        let ragged = {
            let mut a = ColumnData::new(DataType::Int8);
            a.push_value(&Value::Int8(1)).unwrap();
            vec![a, ColumnData::new(DataType::Varchar)]
        };
        assert!(t.append(&ragged, &store).is_err());
    }

    #[test]
    fn interleaved_rejects_string_keys() {
        let schema = Schema::new(vec![ColumnDef::new("s", DataType::Varchar)]).unwrap();
        let cfg = TableConfig { sort_key: SortKeySpec::Interleaved(vec![0]), ..Default::default() };
        assert!(SliceTable::new(schema, cfg).is_err());
    }

    #[test]
    fn drop_storage_frees_blocks() {
        let store = MemBlockStore::new();
        let mut t = SliceTable::new(schema2(), TableConfig::default()).unwrap();
        t.append(&batch(0..100), &store).unwrap();
        t.flush(&store).unwrap();
        assert!(store.block_count() > 0);
        t.drop_storage(&store);
        assert_eq!(store.block_count(), 0);
        assert_eq!(t.row_count(), 0);
    }
}
