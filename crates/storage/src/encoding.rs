//! Per-column compression codecs.
//!
//! Mirrors Redshift's encoding family (§2.1, §6): raw, run-length,
//! delta, byte-dictionary, mostly-8/16/32, and LZ (here LZSS) for text.
//! Every encoded segment is self-describing — decoding needs only the
//! bytes — so blocks can be shipped to S3, another node, or a restored
//! cluster without side metadata.
//!
//! Wire format (all little-endian, via `redsim_common::codec`):
//!
//! ```text
//! u8   encoding tag
//! u8   data-type tag, u8 precision, u8 scale
//! u32  row count
//! u32  null-bitmap word count, then raw u64 words
//! u32  payload byte length, then payload (per-encoding)
//! ```

use crate::lzss;
use crate::varint::{read_ivarint, write_ivarint};
use redsim_common::codec::{Reader, Writer};
use redsim_common::{Bitmap, ColumnData, DataType, Result, RsError, StrVec};

/// Available column encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Encoding {
    /// No compression.
    Raw,
    /// Run-length: (count, value) pairs.
    Rle,
    /// First value + zigzag-varint deltas (integer family + decimals).
    Delta,
    /// Byte dictionary: ≤ 65,536 distinct values per block.
    Dict,
    /// 8-bit values with an exception list.
    Mostly8,
    /// 16-bit values with an exception list.
    Mostly16,
    /// 32-bit values with an exception list.
    Mostly32,
    /// LZSS over the raw text payload (VARCHAR only).
    Lzss,
}

impl Encoding {
    pub const ALL: [Encoding; 8] = [
        Encoding::Raw,
        Encoding::Rle,
        Encoding::Delta,
        Encoding::Dict,
        Encoding::Mostly8,
        Encoding::Mostly16,
        Encoding::Mostly32,
        Encoding::Lzss,
    ];

    pub fn tag(self) -> u8 {
        match self {
            Encoding::Raw => 0,
            Encoding::Rle => 1,
            Encoding::Delta => 2,
            Encoding::Dict => 3,
            Encoding::Mostly8 => 4,
            Encoding::Mostly16 => 5,
            Encoding::Mostly32 => 6,
            Encoding::Lzss => 7,
        }
    }

    pub fn from_tag(t: u8) -> Result<Self> {
        Self::ALL
            .into_iter()
            .find(|e| e.tag() == t)
            .ok_or_else(|| RsError::Codec(format!("unknown encoding tag {t}")))
    }

    /// Can this encoding represent a column of type `ty` at all?
    /// (The analyzer additionally checks data-dependent limits like
    /// dictionary cardinality.)
    pub fn applicable_to(self, ty: DataType) -> bool {
        match self {
            Encoding::Raw | Encoding::Rle | Encoding::Dict => true,
            Encoding::Delta => {
                ty.is_integer()
                    || matches!(ty, DataType::Date | DataType::Timestamp | DataType::Decimal(_, _))
            }
            Encoding::Mostly8 | Encoding::Mostly16 | Encoding::Mostly32 => {
                // Narrowing below the natural width must be possible.
                let natural = match ty {
                    DataType::Int2 => 2,
                    DataType::Int4 | DataType::Date => 4,
                    DataType::Int8 | DataType::Timestamp => 8,
                    DataType::Decimal(_, _) => 16,
                    _ => return false,
                };
                let narrow = match self {
                    Encoding::Mostly8 => 1,
                    Encoding::Mostly16 => 2,
                    _ => 4,
                };
                narrow < natural
            }
            Encoding::Lzss => ty == DataType::Varchar,
        }
    }
}

impl std::fmt::Display for Encoding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Encoding::Raw => "raw",
            Encoding::Rle => "runlength",
            Encoding::Delta => "delta",
            Encoding::Dict => "bytedict",
            Encoding::Mostly8 => "mostly8",
            Encoding::Mostly16 => "mostly16",
            Encoding::Mostly32 => "mostly32",
            Encoding::Lzss => "lzo", // Redshift's text encoding slot
        };
        f.write_str(s)
    }
}

// ---------------------------------------------------------------------
// Widened views: every non-varchar column maps onto i128 (bools 0/1,
// floats via to_bits) so the integer codecs share one implementation.
// ---------------------------------------------------------------------

fn widen(col: &ColumnData) -> Option<Vec<i128>> {
    Some(match col {
        ColumnData::Bool { data, .. } => data.iter().map(|&b| b as i128).collect(),
        ColumnData::Int2 { data, .. } => data.iter().map(|&v| v as i128).collect(),
        ColumnData::Int4 { data, .. } | ColumnData::Date { data, .. } => {
            data.iter().map(|&v| v as i128).collect()
        }
        ColumnData::Int8 { data, .. } | ColumnData::Timestamp { data, .. } => {
            data.iter().map(|&v| v as i128).collect()
        }
        ColumnData::Decimal { data, .. } => data.clone(),
        ColumnData::Float8 { .. } | ColumnData::Str { .. } => return None,
    })
}

fn narrow(ty: DataType, vals: Vec<i128>, nulls: Bitmap) -> Result<ColumnData> {
    let err = |v: i128| RsError::Codec(format!("decoded value {v} out of range for {ty}"));
    Ok(match ty {
        DataType::Bool => ColumnData::Bool {
            data: vals.into_iter().map(|v| v != 0).collect(),
            nulls,
        },
        DataType::Int2 => ColumnData::Int2 {
            data: vals
                .into_iter()
                .map(|v| i16::try_from(v).map_err(|_| err(v)))
                .collect::<Result<_>>()?,
            nulls,
        },
        DataType::Int4 => ColumnData::Int4 {
            data: vals
                .into_iter()
                .map(|v| i32::try_from(v).map_err(|_| err(v)))
                .collect::<Result<_>>()?,
            nulls,
        },
        DataType::Date => ColumnData::Date {
            data: vals
                .into_iter()
                .map(|v| i32::try_from(v).map_err(|_| err(v)))
                .collect::<Result<_>>()?,
            nulls,
        },
        DataType::Int8 => ColumnData::Int8 {
            data: vals
                .into_iter()
                .map(|v| i64::try_from(v).map_err(|_| err(v)))
                .collect::<Result<_>>()?,
            nulls,
        },
        DataType::Timestamp => ColumnData::Timestamp {
            data: vals
                .into_iter()
                .map(|v| i64::try_from(v).map_err(|_| err(v)))
                .collect::<Result<_>>()?,
            nulls,
        },
        DataType::Decimal(_, s) => ColumnData::Decimal { data: vals, scale: s, nulls },
        DataType::Float8 | DataType::Varchar => {
            return Err(RsError::Codec(format!("{ty} is not an integer-family type")))
        }
    })
}

// ---------------------------------------------------------------------
// Raw payloads (also the base representation for Dict entries and LZSS).
// ---------------------------------------------------------------------

fn write_raw_payload(col: &ColumnData, w: &mut Writer) {
    match col {
        ColumnData::Bool { data, .. } => {
            for &b in data {
                w.put_u8(b as u8);
            }
        }
        ColumnData::Int2 { data, .. } => {
            for &v in data {
                w.put_raw(&v.to_le_bytes());
            }
        }
        ColumnData::Int4 { data, .. } | ColumnData::Date { data, .. } => {
            for &v in data {
                w.put_i32(v);
            }
        }
        ColumnData::Int8 { data, .. } | ColumnData::Timestamp { data, .. } => {
            for &v in data {
                w.put_i64(v);
            }
        }
        ColumnData::Float8 { data, .. } => {
            for &v in data {
                w.put_f64(v);
            }
        }
        ColumnData::Decimal { data, .. } => {
            for &v in data {
                w.put_i128(v);
            }
        }
        ColumnData::Str { data, .. } => {
            let (offsets, bytes) = data.raw_parts();
            w.put_u32(offsets.len() as u32);
            for &o in offsets {
                w.put_u32(o);
            }
            w.put_bytes(bytes);
        }
    }
}

fn read_raw_payload(ty: DataType, rows: usize, nulls: Bitmap, r: &mut Reader) -> Result<ColumnData> {
    Ok(match ty {
        DataType::Bool => {
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(r.get_u8()? != 0);
            }
            ColumnData::Bool { data, nulls }
        }
        DataType::Int2 => {
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(i16::from_le_bytes(r.get_raw(2)?.try_into().unwrap()));
            }
            ColumnData::Int2 { data, nulls }
        }
        DataType::Int4 | DataType::Date => {
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(r.get_i32()?);
            }
            if ty == DataType::Int4 {
                ColumnData::Int4 { data, nulls }
            } else {
                ColumnData::Date { data, nulls }
            }
        }
        DataType::Int8 | DataType::Timestamp => {
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(r.get_i64()?);
            }
            if ty == DataType::Int8 {
                ColumnData::Int8 { data, nulls }
            } else {
                ColumnData::Timestamp { data, nulls }
            }
        }
        DataType::Float8 => {
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(r.get_f64()?);
            }
            ColumnData::Float8 { data, nulls }
        }
        DataType::Decimal(_, s) => {
            let mut data = Vec::with_capacity(rows);
            for _ in 0..rows {
                data.push(r.get_i128()?);
            }
            ColumnData::Decimal { data, scale: s, nulls }
        }
        DataType::Varchar => {
            let n_off = r.get_u32()? as usize;
            if n_off != rows + 1 {
                return Err(RsError::Codec("StrVec offset count mismatch".into()));
            }
            let mut offsets = Vec::with_capacity(n_off);
            for _ in 0..n_off {
                offsets.push(r.get_u32()?);
            }
            let bytes = r.get_bytes()?.to_vec();
            ColumnData::Str { data: StrVec::from_raw_parts(offsets, bytes)?, nulls }
        }
    })
}

// Single-value writers used by Dict entries and RLE run values. Strings
// are length-prefixed; fixed types use their natural width.
fn write_one(col: &ColumnData, i: usize, w: &mut Writer) {
    match col {
        ColumnData::Bool { data, .. } => w.put_u8(data[i] as u8),
        ColumnData::Int2 { data, .. } => w.put_raw(&data[i].to_le_bytes()),
        ColumnData::Int4 { data, .. } | ColumnData::Date { data, .. } => w.put_i32(data[i]),
        ColumnData::Int8 { data, .. } | ColumnData::Timestamp { data, .. } => w.put_i64(data[i]),
        ColumnData::Float8 { data, .. } => w.put_f64(data[i]),
        ColumnData::Decimal { data, .. } => w.put_i128(data[i]),
        ColumnData::Str { data, .. } => w.put_str(data.get(i)),
    }
}

fn read_one_into(out: &mut ColumnData, r: &mut Reader) -> Result<()> {
    match out {
        ColumnData::Bool { data, nulls } => {
            data.push(r.get_u8()? != 0);
            nulls.push(true);
        }
        ColumnData::Int2 { data, nulls } => {
            data.push(i16::from_le_bytes(r.get_raw(2)?.try_into().unwrap()));
            nulls.push(true);
        }
        ColumnData::Int4 { data, nulls } | ColumnData::Date { data, nulls } => {
            data.push(r.get_i32()?);
            nulls.push(true);
        }
        ColumnData::Int8 { data, nulls } | ColumnData::Timestamp { data, nulls } => {
            data.push(r.get_i64()?);
            nulls.push(true);
        }
        ColumnData::Float8 { data, nulls } => {
            data.push(r.get_f64()?);
            nulls.push(true);
        }
        ColumnData::Decimal { data, nulls, .. } => {
            data.push(r.get_i128()?);
            nulls.push(true);
        }
        ColumnData::Str { data, nulls } => {
            data.push(&r.get_str()?);
            nulls.push(true);
        }
    }
    Ok(())
}

/// Physical equality of two slots (NULL payload slots compare by their
/// default payload, which is what run-length wants).
fn slot_eq(col: &ColumnData, a: usize, b: usize) -> bool {
    match col {
        ColumnData::Bool { data, .. } => data[a] == data[b],
        ColumnData::Int2 { data, .. } => data[a] == data[b],
        ColumnData::Int4 { data, .. } | ColumnData::Date { data, .. } => data[a] == data[b],
        ColumnData::Int8 { data, .. } | ColumnData::Timestamp { data, .. } => data[a] == data[b],
        ColumnData::Float8 { data, .. } => data[a].to_bits() == data[b].to_bits(),
        ColumnData::Decimal { data, .. } => data[a] == data[b],
        ColumnData::Str { data, .. } => {
            // Strict raw-byte comparison: indexes the offset table
            // directly so an out-of-range index panics like every other
            // arm (instead of any lenient "absent == absent" outcome
            // silently fusing RLE runs), and skips per-slot UTF-8
            // revalidation on this hot loop.
            let (off, bytes) = data.raw_parts();
            let ra = off[a] as usize..off[a + 1] as usize;
            let rb = off[b] as usize..off[b + 1] as usize;
            bytes[ra] == bytes[rb]
        }
    }
}

/// FxHasher's word mix, inlined over a byte slice (no trait dispatch,
/// no length-prefix round); length folded in last so zero-padding can't
/// alias two strings of different lengths.
#[inline]
fn hash_bytes(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    // Single-word fast path for short strings (the common dictionary
    // case): one load, two mixes, no chunk iterator.
    if bytes.len() <= 8 {
        let mut buf = [0u8; 8];
        buf[..bytes.len()].copy_from_slice(bytes);
        let h = u64::from_le_bytes(buf).wrapping_mul(SEED);
        return (h.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(SEED);
    }
    let mut h = 0u64;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        h = (h.rotate_left(5) ^ u64::from_le_bytes(c.try_into().unwrap())).wrapping_mul(SEED);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        h = (h.rotate_left(5) ^ u64::from_le_bytes(buf)).wrapping_mul(SEED);
    }
    (h.rotate_left(5) ^ bytes.len() as u64).wrapping_mul(SEED)
}

/// Open-addressing (linear probe) map from slot content to dictionary
/// code, keyed by per-variant typed hashes (`mix64` on the raw payload
/// word, `hash_bytes` on string arena bytes — consistent with
/// [`slot_eq`]: slot-equal implies hash-equal, floats by bit pattern)
/// and verified against the first-occurrence row — no owned key bytes,
/// no per-row allocation.
struct SlotDict {
    /// `(hash, first_row, code)`; `first_row == u32::MAX` marks a free
    /// slot (row indices are block-relative, far below that).
    slots: Vec<(u64, u32, u32)>,
    len: usize,
}

const DICT_FREE: u32 = u32::MAX;

impl SlotDict {
    /// Pre-size from the row count, capped at 2048 slots (32 KiB) so a
    /// low-cardinality column never pays for zeroing a table it won't
    /// fill; high-cardinality builds reach the 131072-slot ceiling (the
    /// dictionary caps at 65536 entries, and 65536 * 10 / 7 < 131072)
    /// in two 8x grows instead of a cascade of doublings.
    fn with_capacity(rows: usize) -> Self {
        let want = rows.min(65_536) * 10 / 7 + 1;
        let slots = want.next_power_of_two().clamp(1024, 2_048);
        SlotDict { slots: vec![(0, DICT_FREE, 0); slots], len: 0 }
    }

    /// Find the probe slot for `h`: `(index, Some(code))` on a verified
    /// hit, `(index, None)` at the free slot where an insert belongs.
    fn probe(&self, h: u64, eq: impl Fn(u32) -> bool) -> (usize, Option<u32>) {
        let mask = self.slots.len() - 1;
        let mut idx = (h as usize) & mask;
        loop {
            let (sh, row, code) = self.slots[idx];
            if row == DICT_FREE {
                return (idx, None);
            }
            if sh == h && eq(row) {
                return (idx, Some(code));
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Insert at the probe slot returned by [`Self::probe`], growing
    /// the table 8x when load passes ~70%.
    fn insert(&mut self, idx: usize, h: u64, row: u32, code: u32) {
        self.slots[idx] = (h, row, code);
        self.len += 1;
        if self.len * 10 >= self.slots.len() * 7 {
            let grown = vec![(0, DICT_FREE, 0); (self.slots.len() * 8).min(131_072)];
            let old = std::mem::replace(&mut self.slots, grown);
            let mask = self.slots.len() - 1;
            for entry in old {
                if entry.1 == DICT_FREE {
                    continue;
                }
                let mut j = (entry.0 as usize) & mask;
                while self.slots[j].1 != DICT_FREE {
                    j = (j + 1) & mask;
                }
                self.slots[j] = entry;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Encode / decode entry points
// ---------------------------------------------------------------------

/// Encode a column segment with the chosen encoding.
///
/// Returns `Err(Unsupported)` if the encoding cannot represent this data
/// (wrong type family, dictionary overflow) — the analyzer relies on that
/// to filter candidates.
pub fn encode_column(col: &ColumnData, enc: Encoding) -> Result<Vec<u8>> {
    let ty = col.data_type();
    if !enc.applicable_to(ty) {
        return Err(RsError::Unsupported(format!("{enc} not applicable to {ty}")));
    }
    let mut w = Writer::with_capacity(col.byte_size() / 2 + 64);
    w.put_u8(enc.tag());
    w.put_u8(ty.tag());
    let (p, s) = match ty {
        DataType::Decimal(p, s) => (p, s),
        _ => (0, 0),
    };
    w.put_u8(p);
    w.put_u8(s);
    w.put_u32(col.len() as u32);
    let nulls = col.nulls();
    w.put_u32(nulls.words().len() as u32);
    for &word in nulls.words() {
        w.put_u64(word);
    }

    let mut payload = Writer::new();
    match enc {
        Encoding::Raw => write_raw_payload(col, &mut payload),
        Encoding::Lzss => {
            let mut raw = Writer::new();
            write_raw_payload(col, &mut raw);
            payload.put_raw(&lzss::compress(&raw.into_bytes()));
        }
        Encoding::Rle => {
            // Runs of physically-equal adjacent slots.
            let n = col.len();
            let mut runs: Vec<(u32, usize)> = Vec::new(); // (len, first index)
            let mut i = 0;
            while i < n {
                let start = i;
                i += 1;
                while i < n && slot_eq(col, start, i) {
                    i += 1;
                }
                runs.push(((i - start) as u32, start));
            }
            payload.put_u32(runs.len() as u32);
            for (len, first) in runs {
                payload.put_u32(len);
                write_one(col, first, &mut payload);
            }
        }
        Encoding::Dict => {
            let n = col.len();
            // One-pass dictionary build in first-seen order: slots hash
            // and compare in place over the raw column payload, so the
            // loop never serializes a row that was already seen and
            // never owns key bytes. The dictionary payload is written
            // once, at each code's first occurrence — byte-identical to
            // the old serialize-every-row build.
            let mut dict = SlotDict::with_capacity(n);
            let mut dict_w = Writer::new();
            let mut codes: Vec<u32> = Vec::with_capacity(n);
            let mut dict_len = 0u32;
            // One `match` on the variant, then a fully typed loop: the
            // per-row hash / equality / dictionary-entry emission all
            // see concrete slices (no per-row enum dispatch).
            macro_rules! build {
                ($hash:expr, $eq:expr, $emit:expr) => {
                    for i in 0..n {
                        let h = $hash(i);
                        let (idx, hit) = dict.probe(h, |row| $eq(row as usize, i));
                        let code = match hit {
                            Some(c) => c,
                            None => {
                                // Early exit *before* admitting the
                                // 65,537th distinct value, not after a
                                // wasted insert.
                                if dict_len == 65_536 {
                                    return Err(RsError::Unsupported(
                                        "dictionary overflow (> 65536 distinct values)".into(),
                                    ));
                                }
                                let c = dict_len;
                                $emit(i, &mut dict_w);
                                dict.insert(idx, h, i as u32, c);
                                dict_len += 1;
                                c
                            }
                        };
                        codes.push(code);
                    }
                };
            }
            use redsim_common::mix64;
            match col {
                ColumnData::Bool { data, .. } => build!(
                    |i: usize| mix64(data[i] as u64),
                    |a: usize, b: usize| data[a] == data[b],
                    |i: usize, w: &mut Writer| w.put_u8(data[i] as u8)
                ),
                ColumnData::Int2 { data, .. } => build!(
                    |i: usize| mix64(data[i] as u64),
                    |a: usize, b: usize| data[a] == data[b],
                    |i: usize, w: &mut Writer| w.put_raw(&data[i].to_le_bytes())
                ),
                ColumnData::Int4 { data, .. } | ColumnData::Date { data, .. } => build!(
                    |i: usize| mix64(data[i] as u64),
                    |a: usize, b: usize| data[a] == data[b],
                    |i: usize, w: &mut Writer| w.put_i32(data[i])
                ),
                ColumnData::Int8 { data, .. } | ColumnData::Timestamp { data, .. } => build!(
                    |i: usize| mix64(data[i] as u64),
                    |a: usize, b: usize| data[a] == data[b],
                    |i: usize, w: &mut Writer| w.put_i64(data[i])
                ),
                ColumnData::Float8 { data, .. } => build!(
                    |i: usize| mix64(data[i].to_bits()),
                    |a: usize, b: usize| data[a].to_bits() == data[b].to_bits(),
                    |i: usize, w: &mut Writer| w.put_f64(data[i])
                ),
                ColumnData::Decimal { data, .. } => build!(
                    |i: usize| mix64(data[i] as u128 as u64 ^ mix64((data[i] >> 64) as u64)),
                    |a: usize, b: usize| data[a] == data[b],
                    |i: usize, w: &mut Writer| w.put_i128(data[i])
                ),
                ColumnData::Str { data, .. } => {
                    let (off, bytes) = data.raw_parts();
                    let at = |i: usize| &bytes[off[i] as usize..off[i + 1] as usize];
                    build!(
                        |i: usize| hash_bytes(at(i)),
                        |a: usize, b: usize| at(a) == at(b),
                        // Matches `write_one`'s `put_str`: u32 length
                        // prefix + raw bytes (already valid UTF-8).
                        |i: usize, w: &mut Writer| {
                            let s = at(i);
                            w.put_u32(s.len() as u32);
                            w.put_raw(s);
                        }
                    )
                }
            }
            payload.put_u32(dict_len);
            payload.put_bytes(&dict_w.into_bytes());
            let wide = dict_len > 256;
            payload.put_bool(wide);
            // Bulk-narrow the code stream (same bytes as per-code
            // `put_u8`/`put_u16` LE, but one extend instead of n calls;
            // the u32 -> u8 narrowing loop auto-vectorizes).
            if wide {
                let mut buf = Vec::with_capacity(codes.len() * 2);
                for c in &codes {
                    buf.extend_from_slice(&(*c as u16).to_le_bytes());
                }
                payload.put_raw(&buf);
            } else {
                let buf: Vec<u8> = codes.iter().map(|&c| c as u8).collect();
                payload.put_raw(&buf);
            }
        }
        Encoding::Delta => {
            let vals = widen(col).ok_or_else(|| {
                RsError::Unsupported(format!("delta not applicable to {ty}"))
            })?;
            let mut buf = Vec::with_capacity(vals.len() * 2);
            let mut prev = 0i128;
            for v in vals {
                write_ivarint(&mut buf, v - prev);
                prev = v;
            }
            payload.put_raw(&buf);
        }
        Encoding::Mostly8 | Encoding::Mostly16 | Encoding::Mostly32 => {
            let vals = widen(col).ok_or_else(|| {
                RsError::Unsupported(format!("{enc} not applicable to {ty}"))
            })?;
            let (lo, hi, width) = match enc {
                Encoding::Mostly8 => (i8::MIN as i128 + 1, i8::MAX as i128, 1usize),
                Encoding::Mostly16 => (i16::MIN as i128 + 1, i16::MAX as i128, 2),
                _ => (i32::MIN as i128 + 1, i32::MAX as i128, 4),
            };
            // Sentinel (narrow MIN) marks an exception slot.
            let mut exceptions: Vec<u8> = Vec::new();
            let mut n_exc = 0u32;
            let mut narrow_bytes = Vec::with_capacity(vals.len() * width);
            for (i, &v) in vals.iter().enumerate() {
                if v >= lo && v <= hi {
                    match enc {
                        Encoding::Mostly8 => narrow_bytes.push(v as i8 as u8),
                        Encoding::Mostly16 => {
                            narrow_bytes.extend_from_slice(&(v as i16).to_le_bytes())
                        }
                        _ => narrow_bytes.extend_from_slice(&(v as i32).to_le_bytes()),
                    }
                } else {
                    match enc {
                        Encoding::Mostly8 => narrow_bytes.push(i8::MIN as u8),
                        Encoding::Mostly16 => {
                            narrow_bytes.extend_from_slice(&i16::MIN.to_le_bytes())
                        }
                        _ => narrow_bytes.extend_from_slice(&i32::MIN.to_le_bytes()),
                    }
                    exceptions.extend_from_slice(&(i as u32).to_le_bytes());
                    write_ivarint(&mut exceptions, v);
                    n_exc += 1;
                }
            }
            payload.put_u32(n_exc);
            payload.put_bytes(&exceptions);
            payload.put_raw(&narrow_bytes);
        }
    }
    let payload = payload.into_bytes();
    w.put_u32(payload.len() as u32);
    w.put_raw(&payload);
    Ok(w.into_bytes())
}

/// Decode a segment produced by [`encode_column`]. `expected` guards
/// against catalog/blob mismatches.
pub fn decode_column(bytes: &[u8], expected: Option<DataType>) -> Result<ColumnData> {
    let mut r = Reader::new(bytes);
    let enc = Encoding::from_tag(r.get_u8()?)?;
    let ty_tag = r.get_u8()?;
    let p = r.get_u8()?;
    let s = r.get_u8()?;
    let ty = DataType::from_tag(ty_tag, p, s)?;
    if let Some(e) = expected {
        if !e.storage_compatible(ty) {
            return Err(RsError::Codec(format!("block holds {ty}, expected {e}")));
        }
    }
    let rows = r.get_u32()? as usize;
    let n_words = r.get_u32()? as usize;
    let mut words = Vec::with_capacity(n_words);
    for _ in 0..n_words {
        words.push(r.get_u64()?);
    }
    if n_words != rows.div_ceil(64) {
        return Err(RsError::Codec("null bitmap size mismatch".into()));
    }
    let nulls = Bitmap::from_raw(words, rows);
    let payload_len = r.get_u32()? as usize;
    let payload = r.get_raw(payload_len)?;
    let mut pr = Reader::new(payload);

    let col = match enc {
        Encoding::Raw => read_raw_payload(ty, rows, nulls, &mut pr)?,
        Encoding::Lzss => {
            let raw = lzss::decompress(payload)?;
            read_raw_payload(ty, rows, nulls, &mut Reader::new(&raw))?
        }
        Encoding::Rle => {
            let n_runs = pr.get_u32()? as usize;
            let mut out = ColumnData::new(ty);
            let mut total = 0usize;
            for _ in 0..n_runs {
                let len = pr.get_u32()? as usize;
                let mut tmp = ColumnData::new(ty);
                read_one_into(&mut tmp, &mut pr)?;
                for _ in 0..len {
                    out.push_from(&tmp, 0);
                }
                total += len;
            }
            if total != rows {
                return Err(RsError::Codec("RLE run total mismatch".into()));
            }
            restore_nulls(out, nulls)
        }
        Encoding::Dict => {
            let dict_len = pr.get_u32()? as usize;
            let dict_bytes = pr.get_bytes()?;
            let mut dict = ColumnData::new(ty);
            let mut dr = Reader::new(dict_bytes);
            for _ in 0..dict_len {
                read_one_into(&mut dict, &mut dr)?;
            }
            let wide = pr.get_bool()?;
            let mut out = ColumnData::new(ty);
            for _ in 0..rows {
                let code = if wide { pr.get_u16()? as usize } else { pr.get_u8()? as usize };
                if code >= dict_len {
                    return Err(RsError::Codec("dictionary code out of range".into()));
                }
                out.push_from(&dict, code);
            }
            restore_nulls(out, nulls)
        }
        Encoding::Delta => {
            let buf = payload;
            // Skip past the header fields the payload reader consumed: the
            // delta stream is the entire payload.
            let mut pos = 0usize;
            let mut vals = Vec::with_capacity(rows);
            let mut prev = 0i128;
            for _ in 0..rows {
                prev += read_ivarint(buf, &mut pos)?;
                vals.push(prev);
            }
            narrow(ty, vals, nulls)?
        }
        Encoding::Mostly8 | Encoding::Mostly16 | Encoding::Mostly32 => {
            let n_exc = pr.get_u32()? as usize;
            let exc_bytes = pr.get_bytes()?;
            let width = match enc {
                Encoding::Mostly8 => 1usize,
                Encoding::Mostly16 => 2,
                _ => 4,
            };
            let narrow_bytes = pr.get_raw(rows * width)?;
            let mut vals: Vec<i128> = Vec::with_capacity(rows);
            for i in 0..rows {
                let v = match enc {
                    Encoding::Mostly8 => narrow_bytes[i] as i8 as i128,
                    Encoding::Mostly16 => i16::from_le_bytes(
                        narrow_bytes[i * 2..i * 2 + 2].try_into().unwrap(),
                    ) as i128,
                    _ => i32::from_le_bytes(narrow_bytes[i * 4..i * 4 + 4].try_into().unwrap())
                        as i128,
                };
                vals.push(v);
            }
            // Patch exceptions.
            let mut pos = 0usize;
            for _ in 0..n_exc {
                if pos + 4 > exc_bytes.len() {
                    return Err(RsError::Codec("mostly-N exception list truncated".into()));
                }
                let idx =
                    u32::from_le_bytes(exc_bytes[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 4;
                let v = read_ivarint(exc_bytes, &mut pos)?;
                if idx >= rows {
                    return Err(RsError::Codec("mostly-N exception index out of range".into()));
                }
                vals[idx] = v;
            }
            narrow(ty, vals, nulls)?
        }
    };
    if col.len() != rows {
        return Err(RsError::Codec("decoded row count mismatch".into()));
    }
    Ok(col)
}

/// Replace the decoded column's nulls with the stored bitmap (codecs above
/// reconstruct payload slots as non-null).
fn restore_nulls(col: ColumnData, nulls: Bitmap) -> ColumnData {
    match col {
        ColumnData::Bool { data, .. } => ColumnData::Bool { data, nulls },
        ColumnData::Int2 { data, .. } => ColumnData::Int2 { data, nulls },
        ColumnData::Int4 { data, .. } => ColumnData::Int4 { data, nulls },
        ColumnData::Int8 { data, .. } => ColumnData::Int8 { data, nulls },
        ColumnData::Float8 { data, .. } => ColumnData::Float8 { data, nulls },
        ColumnData::Str { data, .. } => ColumnData::Str { data, nulls },
        ColumnData::Date { data, .. } => ColumnData::Date { data, nulls },
        ColumnData::Timestamp { data, .. } => ColumnData::Timestamp { data, nulls },
        ColumnData::Decimal { data, scale, .. } => ColumnData::Decimal { data, scale, nulls },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_common::Value;

    fn int_col(vals: &[Option<i64>], ty: DataType) -> ColumnData {
        let mut c = ColumnData::new(ty);
        for v in vals {
            match v {
                Some(x) => c.push_value(&Value::Int8(*x)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    }

    fn str_col(vals: &[Option<&str>]) -> ColumnData {
        let mut c = ColumnData::new(DataType::Varchar);
        for v in vals {
            match v {
                Some(s) => c.push_value(&Value::Str(s.to_string())).unwrap(),
                None => c.push_null(),
            }
        }
        c
    }

    fn roundtrip(col: &ColumnData, enc: Encoding) {
        let bytes = encode_column(col, enc).unwrap();
        let back = decode_column(&bytes, Some(col.data_type())).unwrap();
        assert_eq!(col.len(), back.len());
        for i in 0..col.len() {
            assert_eq!(col.get(i), back.get(i), "row {i} enc {enc}");
        }
    }

    #[test]
    fn raw_roundtrip_all_types() {
        roundtrip(&int_col(&[Some(1), None, Some(-7)], DataType::Int4), Encoding::Raw);
        roundtrip(&int_col(&[Some(1), Some(2)], DataType::Int2), Encoding::Raw);
        roundtrip(&int_col(&[Some(1 << 40), None], DataType::Int8), Encoding::Raw);
        roundtrip(&str_col(&[Some("a"), None, Some("hello")]), Encoding::Raw);
        let mut f = ColumnData::new(DataType::Float8);
        f.push_value(&Value::Float8(1.5)).unwrap();
        f.push_null();
        roundtrip(&f, Encoding::Raw);
        let mut d = ColumnData::new(DataType::Decimal(10, 2));
        d.push_value(&Value::Decimal { units: -12345, scale: 2 }).unwrap();
        roundtrip(&d, Encoding::Raw);
        let mut b = ColumnData::new(DataType::Bool);
        b.push_value(&Value::Bool(true)).unwrap();
        b.push_value(&Value::Bool(false)).unwrap();
        roundtrip(&b, Encoding::Rle);
    }

    #[test]
    fn rle_compresses_runs() {
        let vals: Vec<Option<i64>> = (0..1000).map(|i| Some(i / 250)).collect();
        let col = int_col(&vals, DataType::Int4);
        roundtrip(&col, Encoding::Rle);
        let rle = encode_column(&col, Encoding::Rle).unwrap();
        let raw = encode_column(&col, Encoding::Raw).unwrap();
        assert!(rle.len() * 10 < raw.len(), "rle {} raw {}", rle.len(), raw.len());
    }

    #[test]
    fn delta_compresses_sequences() {
        let vals: Vec<Option<i64>> = (0..1000).map(|i| Some(1_000_000_000 + i)).collect();
        let col = int_col(&vals, DataType::Int8);
        roundtrip(&col, Encoding::Delta);
        let delta = encode_column(&col, Encoding::Delta).unwrap();
        let raw = encode_column(&col, Encoding::Raw).unwrap();
        assert!(delta.len() * 3 < raw.len(), "delta {} raw {}", delta.len(), raw.len());
    }

    #[test]
    fn delta_handles_negatives_and_nulls() {
        let col = int_col(&[Some(-5), None, Some(100), Some(-200), None], DataType::Int8);
        roundtrip(&col, Encoding::Delta);
    }

    #[test]
    fn dict_roundtrip_strings_and_overflow() {
        let vals: Vec<Option<&str>> =
            (0..500).map(|i| Some(["us", "eu", "ap"][i % 3])).collect();
        let col = str_col(&vals);
        roundtrip(&col, Encoding::Dict);
        let dict = encode_column(&col, Encoding::Dict).unwrap();
        let raw = encode_column(&col, Encoding::Raw).unwrap();
        assert!(dict.len() < raw.len());
        // Overflow: > 65536 distinct values.
        let many: Vec<String> = (0..70_000).map(|i| format!("v{i}")).collect();
        let col = str_col(&many.iter().map(|s| Some(s.as_str())).collect::<Vec<_>>());
        assert!(encode_column(&col, Encoding::Dict).is_err());
    }

    #[test]
    fn dict_wide_indexes() {
        // Between 257 and 65536 distinct -> u16 codes.
        let many: Vec<String> = (0..300).map(|i| format!("v{}", i % 300)).collect();
        let col = str_col(&many.iter().map(|s| Some(s.as_str())).collect::<Vec<_>>());
        roundtrip(&col, Encoding::Dict);
    }

    #[test]
    #[should_panic]
    fn slot_eq_str_panics_out_of_range() {
        // Regression: the Str arm must index the offset table strictly,
        // like every fixed-width arm, so a bad row index can never
        // compare "equal" and silently fuse an RLE run or dict code.
        let col = str_col(&[Some("a"), Some("b")]);
        slot_eq(&col, 0, 2);
    }

    #[test]
    fn slot_eq_str_compares_bytes() {
        let col = str_col(&[Some("abc"), Some("abc"), Some("abd"), None, None]);
        assert!(slot_eq(&col, 0, 1));
        assert!(!slot_eq(&col, 1, 2));
        // NULL slots hold the default (empty) payload and compare equal.
        assert!(slot_eq(&col, 3, 4));
    }

    #[test]
    fn dict_one_pass_first_seen_order_and_float_bits() {
        // Codes are assigned in first-seen order, and floats are
        // dictionary-keyed by bit pattern: NaN deduplicates against an
        // identical NaN, and -0.0 stays distinct from 0.0.
        let mut c = ColumnData::new(DataType::Float8);
        for v in [f64::NAN, 0.0, -0.0, f64::NAN, 0.0, f64::NAN] {
            c.push_value(&Value::Float8(v)).unwrap();
        }
        let bytes = encode_column(&c, Encoding::Dict).unwrap();
        let back = decode_column(&bytes, Some(DataType::Float8)).unwrap();
        for i in 0..c.len() {
            let (a, b) = match (&c, &back) {
                (
                    ColumnData::Float8 { data: x, .. },
                    ColumnData::Float8 { data: y, .. },
                ) => (x[i], y[i]),
                _ => unreachable!(),
            };
            assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
        }
        // 3 distinct bit patterns (NaN, 0.0, -0.0), narrow u8 codes.
        let dict = encode_column(&c, Encoding::Dict).unwrap();
        let raw = encode_column(&c, Encoding::Raw).unwrap();
        assert!(dict.len() < raw.len());
    }

    #[test]
    fn rle_float_nan_runs_by_bit_pattern() {
        // slot_eq compares floats by bit pattern, so identical NaNs fuse
        // into one run and the decode restores the exact bits.
        let mut c = ColumnData::new(DataType::Float8);
        for v in [f64::NAN, f64::NAN, f64::NAN, 0.0, -0.0, -0.0] {
            c.push_value(&Value::Float8(v)).unwrap();
        }
        let bytes = encode_column(&c, Encoding::Rle).unwrap();
        let back = decode_column(&bytes, Some(DataType::Float8)).unwrap();
        for i in 0..c.len() {
            let (a, b) = match (&c, &back) {
                (
                    ColumnData::Float8 { data: x, .. },
                    ColumnData::Float8 { data: y, .. },
                ) => (x[i], y[i]),
                _ => unreachable!(),
            };
            assert_eq!(a.to_bits(), b.to_bits(), "row {i}");
        }
    }

    #[test]
    fn dict_overflow_exits_before_admitting_extra_entry() {
        // Exactly 65,536 distinct values fits; 65,537 must fail.
        let ok: Vec<Option<i64>> = (0..65_536).map(Some).collect();
        assert!(encode_column(&int_col(&ok, DataType::Int8), Encoding::Dict).is_ok());
        let over: Vec<Option<i64>> = (0..65_537).map(Some).collect();
        assert!(encode_column(&int_col(&over, DataType::Int8), Encoding::Dict).is_err());
    }

    #[test]
    fn mostly8_with_exceptions() {
        let mut vals: Vec<Option<i64>> = (0..1000).map(|i| Some(i % 100)).collect();
        vals[17] = Some(1 << 50);
        vals[900] = Some(-(1 << 50));
        vals[3] = Some(i8::MIN as i64); // collides with sentinel -> exception
        vals[5] = None;
        let col = int_col(&vals, DataType::Int8);
        roundtrip(&col, Encoding::Mostly8);
        let m8 = encode_column(&col, Encoding::Mostly8).unwrap();
        let raw = encode_column(&col, Encoding::Raw).unwrap();
        assert!(m8.len() * 4 < raw.len(), "m8 {} raw {}", m8.len(), raw.len());
    }

    #[test]
    fn mostly16_and_32_roundtrip() {
        let vals: Vec<Option<i64>> =
            (0..500).map(|i| Some(if i % 50 == 0 { 1 << 45 } else { i * 3 })).collect();
        roundtrip(&int_col(&vals, DataType::Int8), Encoding::Mostly16);
        roundtrip(&int_col(&vals, DataType::Int8), Encoding::Mostly32);
    }

    #[test]
    fn mostly_rejected_for_narrow_types() {
        let col = int_col(&[Some(1)], DataType::Int2);
        assert!(encode_column(&col, Encoding::Mostly16).is_err());
        assert!(encode_column(&col, Encoding::Mostly32).is_err());
    }

    #[test]
    fn lzss_for_text() {
        let vals: Vec<String> = (0..400)
            .map(|i| format!("https://www.amazon.com/product/{}/ref=sr_{}", i % 20, i))
            .collect();
        let col = str_col(&vals.iter().map(|s| Some(s.as_str())).collect::<Vec<_>>());
        roundtrip(&col, Encoding::Lzss);
        let lz = encode_column(&col, Encoding::Lzss).unwrap();
        let raw = encode_column(&col, Encoding::Raw).unwrap();
        assert!(lz.len() * 2 < raw.len(), "lz {} raw {}", lz.len(), raw.len());
        // Not applicable to ints.
        assert!(encode_column(&int_col(&[Some(1)], DataType::Int4), Encoding::Lzss).is_err());
    }

    #[test]
    fn type_mismatch_detected() {
        let col = int_col(&[Some(1)], DataType::Int4);
        let bytes = encode_column(&col, Encoding::Raw).unwrap();
        assert!(decode_column(&bytes, Some(DataType::Int8)).is_err());
    }

    #[test]
    fn empty_column_roundtrips() {
        for enc in [Encoding::Raw, Encoding::Rle, Encoding::Dict, Encoding::Delta] {
            let col = int_col(&[], DataType::Int8);
            roundtrip(&col, enc);
        }
    }

    #[test]
    fn date_and_timestamp_delta() {
        let mut c = ColumnData::new(DataType::Date);
        for d in [16000, 16001, 16002, 16005] {
            c.push_value(&Value::Date(d)).unwrap();
        }
        roundtrip(&c, Encoding::Delta);
        let mut t = ColumnData::new(DataType::Timestamp);
        for us in [0i64, 1_000_000, 2_000_000] {
            t.push_value(&Value::Timestamp(us)).unwrap();
        }
        roundtrip(&t, Encoding::Delta);
    }

    #[test]
    fn decimal_delta_roundtrip() {
        let mut d = ColumnData::new(DataType::Decimal(12, 2));
        for units in [100i128, 200, 150, -75] {
            d.push_value(&Value::Decimal { units, scale: 2 }).unwrap();
        }
        roundtrip(&d, Encoding::Delta);
    }
}
