//! Zone maps: per-block value-range metadata for block skipping.
//!
//! The paper (§6): Redshift "foregoes traditional indexes … and instead
//! focuses on sequential scan speed through compiled code execution and
//! column-block skipping based on value-ranges stored in memory", the
//! technique of Moerkotte's small materialized aggregates.

use redsim_common::codec::{Reader, Writer};
use redsim_common::{ColumnData, Result, RsError, Value};
use std::cmp::Ordering;

/// Min/max/null-count summary of one column within one block.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// Smallest non-NULL value, `None` when the block is all NULL.
    pub min: Option<Value>,
    /// Largest non-NULL value.
    pub max: Option<Value>,
    pub null_count: u32,
    pub rows: u32,
}

impl ZoneMap {
    /// Build from a column segment.
    pub fn build(col: &ColumnData) -> ZoneMap {
        let mm = col.min_max();
        ZoneMap {
            min: mm.as_ref().map(|(a, _)| a.clone()),
            max: mm.map(|(_, b)| b),
            null_count: col.null_count() as u32,
            rows: col.len() as u32,
        }
    }

    /// Could any row in this block satisfy `value >= lo` (if `Some`) and
    /// `value <= hi` (if `Some`)? NULL rows never satisfy range predicates,
    /// so an all-NULL block is always prunable.
    pub fn may_overlap(&self, lo: Option<&Value>, hi: Option<&Value>) -> bool {
        let (min, max) = match (&self.min, &self.max) {
            (Some(a), Some(b)) => (a, b),
            _ => return false, // all NULL
        };
        if let Some(lo) = lo {
            if max.cmp_sql(lo) == Ordering::Less {
                return false;
            }
        }
        if let Some(hi) = hi {
            if min.cmp_sql(hi) == Ordering::Greater {
                return false;
            }
        }
        true
    }

    /// Could this block contain `v` exactly?
    pub fn may_contain(&self, v: &Value) -> bool {
        self.may_overlap(Some(v), Some(v))
    }

    /// Merge with another zone map (VACUUM combines blocks; table-level
    /// stats fold per-block maps).
    pub fn merge(&self, other: &ZoneMap) -> ZoneMap {
        let pick = |a: &Option<Value>, b: &Option<Value>, want_less: bool| match (a, b) {
            (Some(x), Some(y)) => Some(
                if (x.cmp_sql(y) == Ordering::Less) == want_less { x.clone() } else { y.clone() },
            ),
            (Some(x), None) => Some(x.clone()),
            (None, Some(y)) => Some(y.clone()),
            (None, None) => None,
        };
        ZoneMap {
            min: pick(&self.min, &other.min, true),
            max: pick(&self.max, &other.max, false),
            null_count: self.null_count + other.null_count,
            rows: self.rows + other.rows,
        }
    }

    pub fn encode(&self, w: &mut Writer) {
        encode_value_opt(w, &self.min);
        encode_value_opt(w, &self.max);
        w.put_u32(self.null_count);
        w.put_u32(self.rows);
    }

    pub fn decode(r: &mut Reader) -> Result<ZoneMap> {
        Ok(ZoneMap {
            min: decode_value_opt(r)?,
            max: decode_value_opt(r)?,
            null_count: r.get_u32()?,
            rows: r.get_u32()?,
        })
    }
}

/// Serialize a scalar `Value` (used by zone maps, stats and the catalog).
pub fn encode_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Bool(b) => {
            w.put_u8(1);
            w.put_bool(*b);
        }
        Value::Int2(x) => {
            w.put_u8(2);
            w.put_i32(*x as i32);
        }
        Value::Int4(x) => {
            w.put_u8(3);
            w.put_i32(*x);
        }
        Value::Int8(x) => {
            w.put_u8(4);
            w.put_i64(*x);
        }
        Value::Float8(x) => {
            w.put_u8(5);
            w.put_f64(*x);
        }
        Value::Str(s) => {
            w.put_u8(6);
            w.put_str(s);
        }
        Value::Date(d) => {
            w.put_u8(7);
            w.put_i32(*d);
        }
        Value::Timestamp(t) => {
            w.put_u8(8);
            w.put_i64(*t);
        }
        Value::Decimal { units, scale } => {
            w.put_u8(9);
            w.put_i128(*units);
            w.put_u8(*scale);
        }
    }
}

/// Inverse of [`encode_value`].
pub fn decode_value(r: &mut Reader) -> Result<Value> {
    Ok(match r.get_u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.get_bool()?),
        2 => Value::Int2(r.get_i32()? as i16),
        3 => Value::Int4(r.get_i32()?),
        4 => Value::Int8(r.get_i64()?),
        5 => Value::Float8(r.get_f64()?),
        6 => Value::Str(r.get_str()?),
        7 => Value::Date(r.get_i32()?),
        8 => Value::Timestamp(r.get_i64()?),
        9 => Value::Decimal { units: r.get_i128()?, scale: r.get_u8()? },
        t => return Err(RsError::Codec(format!("unknown value tag {t}"))),
    })
}

fn encode_value_opt(w: &mut Writer, v: &Option<Value>) {
    match v {
        Some(v) => {
            w.put_bool(true);
            encode_value(w, v);
        }
        None => w.put_bool(false),
    }
}

fn decode_value_opt(r: &mut Reader) -> Result<Option<Value>> {
    if r.get_bool()? {
        Ok(Some(decode_value(r)?))
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_common::DataType;

    fn col(vals: &[Option<i64>]) -> ColumnData {
        let mut c = ColumnData::new(DataType::Int8);
        for v in vals {
            match v {
                Some(x) => c.push_value(&Value::Int8(*x)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    }

    #[test]
    fn build_and_overlap() {
        let zm = ZoneMap::build(&col(&[Some(10), Some(20), None, Some(15)]));
        assert_eq!(zm.min.as_ref().unwrap().as_i64(), Some(10));
        assert_eq!(zm.max.as_ref().unwrap().as_i64(), Some(20));
        assert_eq!(zm.null_count, 1);
        assert!(zm.may_contain(&Value::Int8(15)));
        assert!(zm.may_contain(&Value::Int8(10)));
        assert!(!zm.may_contain(&Value::Int8(9)));
        assert!(!zm.may_contain(&Value::Int8(21)));
        assert!(zm.may_overlap(Some(&Value::Int8(18)), None));
        assert!(!zm.may_overlap(Some(&Value::Int8(21)), None));
        assert!(zm.may_overlap(None, Some(&Value::Int8(10))));
        assert!(!zm.may_overlap(None, Some(&Value::Int8(9))));
    }

    #[test]
    fn all_null_block_always_prunes() {
        let zm = ZoneMap::build(&col(&[None, None]));
        assert!(!zm.may_overlap(None, None) || zm.min.is_none());
        assert!(!zm.may_contain(&Value::Int8(0)));
    }

    #[test]
    fn merge_widens() {
        let a = ZoneMap::build(&col(&[Some(5), Some(10)]));
        let b = ZoneMap::build(&col(&[Some(-3), None]));
        let m = a.merge(&b);
        assert_eq!(m.min.unwrap().as_i64(), Some(-3));
        assert_eq!(m.max.unwrap().as_i64(), Some(10));
        assert_eq!(m.rows, 4);
        assert_eq!(m.null_count, 1);
    }

    #[test]
    fn value_codec_roundtrip() {
        let vals = [
            Value::Null,
            Value::Bool(true),
            Value::Int2(-2),
            Value::Int4(7),
            Value::Int8(1 << 60),
            Value::Float8(2.5),
            Value::Str("zm".into()),
            Value::Date(16000),
            Value::Timestamp(123456789),
            Value::Decimal { units: -42, scale: 3 },
        ];
        let mut w = Writer::new();
        for v in &vals {
            encode_value(&mut w, v);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        for v in &vals {
            assert_eq!(&decode_value(&mut r).unwrap(), v);
        }
    }

    #[test]
    fn zonemap_codec_roundtrip() {
        let zm = ZoneMap::build(&col(&[Some(1), None, Some(9)]));
        let mut w = Writer::new();
        zm.encode(&mut w);
        let bytes = w.into_bytes();
        let rt = ZoneMap::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(zm, rt);
    }

    fn fcol(vals: &[Option<f64>]) -> ColumnData {
        let mut c = ColumnData::new(DataType::Float8);
        for v in vals {
            match v {
                Some(x) => c.push_value(&Value::Float8(*x)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    }

    #[test]
    fn float_nan_zone_map_build_and_overlap() {
        // cmp_sql orders NaN greater than every finite float, so a block
        // containing NaN has max = NaN and never prunes an upper-open
        // range probe.
        let zm = ZoneMap::build(&fcol(&[Some(1.0), Some(f64::NAN), Some(-2.0), None]));
        assert_eq!(zm.min.as_ref().unwrap().as_f64(), Some(-2.0));
        assert!(matches!(zm.max, Some(Value::Float8(x)) if x.is_nan()));
        assert_eq!(zm.null_count, 1);
        assert!(zm.may_contain(&Value::Float8(f64::NAN)), "NaN probe hits NaN max");
        assert!(zm.may_overlap(Some(&Value::Float8(1e300)), None), "NaN max blocks hi-open pruning");
        assert!(!zm.may_overlap(None, Some(&Value::Float8(-3.0))), "min still prunes below");

        // A NaN-free block prunes a NaN equality probe: max < NaN.
        let finite = ZoneMap::build(&fcol(&[Some(1.0), Some(2.0)]));
        assert!(!finite.may_contain(&Value::Float8(f64::NAN)));
    }

    #[test]
    fn float_nan_zone_map_merge_and_codec() {
        let a = ZoneMap::build(&fcol(&[Some(1.0), Some(2.0)]));
        let b = ZoneMap::build(&fcol(&[Some(f64::NAN)]));
        let m = a.merge(&b);
        assert_eq!(m.min.as_ref().unwrap().as_f64(), Some(1.0));
        assert!(matches!(m.max, Some(Value::Float8(x)) if x.is_nan()));
        assert_eq!((m.rows, m.null_count), (3, 0));

        // Encode/decode keeps the exact NaN bit pattern.
        let mut w = Writer::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        let rt = ZoneMap::decode(&mut Reader::new(&bytes)).unwrap();
        let (orig, back) = match (&m.max, &rt.max) {
            (Some(Value::Float8(x)), Some(Value::Float8(y))) => (*x, *y),
            other => panic!("expected Float8 maxes, got {other:?}"),
        };
        assert_eq!(orig.to_bits(), back.to_bits());
        assert_eq!(rt.min, m.min);
        assert_eq!((rt.rows, rt.null_count), (m.rows, m.null_count));
    }

    #[test]
    fn string_zone_maps() {
        let mut c = ColumnData::new(DataType::Varchar);
        for s in ["delta", "alpha", "omega"] {
            c.push_value(&Value::Str(s.into())).unwrap();
        }
        let zm = ZoneMap::build(&c);
        assert!(zm.may_contain(&Value::Str("beta".into())));
        assert!(!zm.may_contain(&Value::Str("zz".into())));
    }
}
