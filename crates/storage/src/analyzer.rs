//! Automatic compression selection.
//!
//! One of the paper's "dusty knobs" (§3.3): "we automatically pick
//! compression types based on data sampling … the database generally has
//! as much or more information as available to the customer to set these
//! well." `COPY` calls [`analyze_compression`] on the first loaded chunk
//! of each column and locks in the winner.

use crate::encoding::{encode_column, Encoding};
use redsim_common::ColumnData;

/// Default sample size (rows) used when analyzing a column.
pub const DEFAULT_SAMPLE_ROWS: usize = 4_096;

/// Try every applicable encoding on (a sample of) `col`; return the one
/// producing the fewest bytes. Ties break toward the cheaper-to-decode
/// encoding (the order of `Encoding::ALL`).
pub fn analyze_compression(col: &ColumnData, sample_rows: usize) -> Encoding {
    let sample;
    let view = if col.len() > sample_rows {
        // Stride sample so sortedness/run structure is still visible.
        let stride = col.len() / sample_rows;
        let mut s = ColumnData::new(col.data_type());
        let mut i = 0;
        while i < col.len() {
            // Take short contiguous runs, not single rows: run-length and
            // delta structure lives in adjacency.
            let end = (i + 8).min(col.len());
            for j in i..end {
                s.push_from(col, j);
            }
            i += stride.max(8);
        }
        sample = s;
        &sample
    } else {
        col
    };
    encoding_report(view)
        .into_iter()
        .min_by_key(|&(_, size)| size)
        .map(|(e, _)| e)
        .unwrap_or(Encoding::Raw)
}

/// Encoded size for every applicable encoding (E9's oracle comparison).
pub fn encoding_report(col: &ColumnData) -> Vec<(Encoding, usize)> {
    Encoding::ALL
        .into_iter()
        .filter(|e| e.applicable_to(col.data_type()))
        .filter_map(|e| encode_column(col, e).ok().map(|b| (e, b.len())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_common::{DataType, Value};

    fn int_col(vals: impl Iterator<Item = i64>, ty: DataType) -> ColumnData {
        let mut c = ColumnData::new(ty);
        for v in vals {
            c.push_value(&Value::Int8(v)).unwrap();
        }
        c
    }

    #[test]
    fn picks_rle_for_constant_runs() {
        let col = int_col((0..10_000).map(|i| i / 2_500), DataType::Int8);
        assert_eq!(analyze_compression(&col, DEFAULT_SAMPLE_ROWS), Encoding::Rle);
    }

    #[test]
    fn picks_delta_for_sequences() {
        let col = int_col((0..10_000).map(|i| 5_000_000_000 + i * 7), DataType::Int8);
        let pick = analyze_compression(&col, DEFAULT_SAMPLE_ROWS);
        assert_eq!(pick, Encoding::Delta);
    }

    #[test]
    fn picks_narrow_encoding_for_small_values() {
        // Small, non-monotonic, non-repeating values: mostly8 or dict wins.
        let col = int_col((0..10_000).map(|i| (i * 37) % 120), DataType::Int8);
        let pick = analyze_compression(&col, DEFAULT_SAMPLE_ROWS);
        assert!(
            matches!(pick, Encoding::Mostly8 | Encoding::Dict),
            "picked {pick}"
        );
    }

    #[test]
    fn picks_dict_for_low_cardinality_strings() {
        let mut c = ColumnData::new(DataType::Varchar);
        let cats = ["US", "EU", "APAC", "LATAM"];
        for i in 0..5_000usize {
            c.push_value(&Value::Str(cats[(i * 7) % 4].into())).unwrap();
        }
        assert_eq!(analyze_compression(&c, DEFAULT_SAMPLE_ROWS), Encoding::Dict);
    }

    #[test]
    fn picks_lzss_for_repetitive_text() {
        let mut c = ColumnData::new(DataType::Varchar);
        for i in 0..3_000usize {
            c.push_value(&Value::Str(format!(
                "https://www.amazon.com/gp/product/B{:07}/ref=ppx_yo_dt",
                i
            )))
            .unwrap();
        }
        assert_eq!(analyze_compression(&c, DEFAULT_SAMPLE_ROWS), Encoding::Lzss);
    }

    #[test]
    fn sample_pick_close_to_oracle() {
        // The analyzer's sampled pick must be within 15% of the true best
        // on every shape we generate (E9's acceptance bar).
        let shapes: Vec<ColumnData> = vec![
            int_col((0..50_000).map(|i| i), DataType::Int8),
            int_col((0..50_000).map(|i| i % 3), DataType::Int8),
            int_col((0..50_000).map(|i| (i * 2_654_435_761) % 1_000_000_007), DataType::Int8),
        ];
        for col in shapes {
            let sampled = analyze_compression(&col, DEFAULT_SAMPLE_ROWS);
            let report = encoding_report(&col);
            let best = report.iter().map(|&(_, s)| s).min().unwrap();
            let picked = report.iter().find(|&&(e, _)| e == sampled).unwrap().1;
            assert!(
                picked as f64 <= best as f64 * 1.15,
                "pick {sampled} = {picked}B vs oracle {best}B"
            );
        }
    }

    #[test]
    fn empty_column_defaults_to_raw_family() {
        let col = ColumnData::new(DataType::Float8);
        // No data: any applicable encoding is fine; must not panic.
        let _ = analyze_compression(&col, DEFAULT_SAMPLE_ROWS);
    }
}
