//! Write-ahead redo log.
//!
//! The durability half of the multi-writer transaction story: every
//! write statement appends redo records describing its *post-state*
//! (slice manifests, router cursor, stats), syncs them past a simulated
//! fsync point, then appends a commit mark. A crash throws away the
//! in-memory catalog and the unsynced tail; recovery replays the
//! durable prefix and reconstructs exactly the committed statements —
//! the paper's §2.2 promise ("committed transactions survive node
//! failure") that DESIGN.md §11 previously disclaimed.
//!
//! ## Record framing
//!
//! ```text
//! record  := kind:u8  txn:u64  len:u32  payload:[u8; len]
//! kind    := 1 Checkpoint — full catalog image (payload owned by core)
//!          | 2 Delta      — one statement's post-state for touched slices
//!          | 3 Commit     — empty payload; marks `txn` committed
//! ```
//!
//! A record is **committed** iff a `Commit` record with the same txn id
//! appears *later* in the durable bytes. Replay finds the last committed
//! `Checkpoint`, then applies every committed `Delta` after it in log
//! order. Because writers to the *same* table are serialized by the MVCC
//! first-committer-wins lock, and a `Delta` carries full post-statement
//! slice images, replay in log order is insensitive to how concurrent
//! writers on different tables interleaved their appends.
//!
//! ## Durable vs. tail
//!
//! The log models a file behind an OS page cache: [`Wal::append`] goes
//! to the in-memory `tail`; [`Wal::sync`] is the fsync point that moves
//! the tail into `durable`; [`Wal::commit`] appends the commit mark and
//! syncs in one step (group commit: it also hardens any other writer's
//! pending tail bytes, which is safe — their deltas stay invisible until
//! their own commit mark lands). A crash keeps `durable`, drops `tail`.
//!
//! Every seam is a faultkit failpoint (`wal.append`, `wal.sync`,
//! `wal.commit`, `wal.truncate`). A fired outcome — `Err` *or* `Drop` —
//! surfaces as an error so the statement aborts; a WAL that silently
//! swallowed a record for a transaction that later commits would break
//! the committed-prefix invariant, so lost-write semantics are modeled
//! by crashing before sync, not by dropping individual records.

use redsim_common::codec::{Reader, Writer};
use redsim_common::{Result, RsError};
use redsim_faultkit::{fp, ErrClass, FaultRegistry, Outcome};
use redsim_testkit::sync::Mutex;
use std::sync::Arc;

/// Record kind tags (see module docs for framing).
const KIND_CHECKPOINT: u8 = 1;
const KIND_DELTA: u8 = 2;
const KIND_COMMIT: u8 = 3;

/// One decoded redo record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// Full catalog image; payload format is owned by the caller (core).
    Checkpoint { txn: u64, payload: Vec<u8> },
    /// One statement's post-state delta.
    Delta { txn: u64, payload: Vec<u8> },
    /// Commit mark for `txn`.
    Commit { txn: u64 },
}

impl WalRecord {
    pub fn txn(&self) -> u64 {
        match self {
            WalRecord::Checkpoint { txn, .. }
            | WalRecord::Delta { txn, .. }
            | WalRecord::Commit { txn } => *txn,
        }
    }
}

/// What replay hands back to recovery: the last committed checkpoint (if
/// any) plus every committed delta after it, in log order.
#[derive(Debug, Default)]
pub struct Replay {
    pub checkpoint: Option<(u64, Vec<u8>)>,
    pub deltas: Vec<(u64, Vec<u8>)>,
}

#[derive(Debug, Default)]
struct WalInner {
    /// Bytes past the fsync point: survive a crash.
    durable: Vec<u8>,
    /// Appended but unsynced: lost on crash.
    tail: Vec<u8>,
}

/// The write-ahead log. Payload-agnostic: core decides what a
/// checkpoint or delta contains; the log only frames, hardens and
/// replays records.
#[derive(Debug)]
pub struct Wal {
    inner: Mutex<WalInner>,
    faults: Arc<FaultRegistry>,
}

impl Wal {
    pub fn new(faults: Arc<FaultRegistry>) -> Self {
        Wal { inner: Mutex::new(WalInner::default()), faults }
    }

    /// Rebuild a log from crash-image bytes (recovery seeds the revived
    /// cluster's log with what survived the crash).
    pub fn from_durable(durable: Vec<u8>, faults: Arc<FaultRegistry>) -> Self {
        Wal { inner: Mutex::new(WalInner { durable, tail: Vec::new() }), faults }
    }

    fn gate(&self, name: &str) -> Result<()> {
        match self.faults.fire(name) {
            Outcome::Proceed => Ok(()),
            Outcome::Err(class) => Err(class_error(class, name)),
            // `Drop` still aborts the statement: a silently lost redo
            // record for a txn that later commits would be unrecoverable.
            Outcome::Drop => Err(class_error(ErrClass::Fault, name)),
        }
    }

    /// Append a delta record to the unsynced tail.
    pub fn append_delta(&self, txn: u64, payload: &[u8]) -> Result<()> {
        self.gate(fp::WAL_APPEND)?;
        self.inner.lock().tail.extend_from_slice(&frame(KIND_DELTA, txn, payload));
        Ok(())
    }

    /// Append a checkpoint record to the unsynced tail.
    pub fn append_checkpoint(&self, txn: u64, payload: &[u8]) -> Result<()> {
        self.gate(fp::WAL_APPEND)?;
        self.inner.lock().tail.extend_from_slice(&frame(KIND_CHECKPOINT, txn, payload));
        Ok(())
    }

    /// The fsync point: everything appended so far becomes durable.
    pub fn sync(&self) -> Result<()> {
        self.gate(fp::WAL_SYNC)?;
        let mut inner = self.inner.lock();
        let tail = std::mem::take(&mut inner.tail);
        inner.durable.extend_from_slice(&tail);
        Ok(())
    }

    /// Append the commit mark for `txn` and sync. On success the
    /// transaction is durably committed; on failure (or a crash before
    /// this returns) recovery treats it as rolled back.
    pub fn commit(&self, txn: u64) -> Result<()> {
        self.gate(fp::WAL_COMMIT)?;
        let mut inner = self.inner.lock();
        inner.tail.extend_from_slice(&frame(KIND_COMMIT, txn, &[]));
        let tail = std::mem::take(&mut inner.tail);
        inner.durable.extend_from_slice(&tail);
        Ok(())
    }

    /// Reclaim durable bytes that precede the last *committed*
    /// checkpoint. Pure space reclamation: replay before and after
    /// truncation reconstructs the same state, and a crash between a
    /// checkpoint's commit and its truncation loses nothing.
    /// Returns the number of bytes reclaimed.
    pub fn truncate(&self) -> Result<usize> {
        self.gate(fp::WAL_TRUNCATE)?;
        let mut inner = self.inner.lock();
        let offset = last_committed_checkpoint_offset(&inner.durable)?;
        let Some(offset) = offset else { return Ok(0) };
        inner.durable.drain(..offset);
        Ok(offset)
    }

    /// Snapshot of the durable bytes — what a crash preserves.
    pub fn durable_bytes(&self) -> Vec<u8> {
        self.inner.lock().durable.clone()
    }

    pub fn durable_len(&self) -> usize {
        self.inner.lock().durable.len()
    }

    /// Unsynced bytes that a crash would lose.
    pub fn tail_len(&self) -> usize {
        self.inner.lock().tail.len()
    }
}

fn class_error(class: ErrClass, name: &str) -> RsError {
    let msg = format!("injected {} at {name}", class.as_str());
    match class {
        ErrClass::Throttle => RsError::Throttled(msg),
        ErrClass::NotFound => RsError::NotFound(msg),
        ErrClass::Repl => RsError::Replication(msg),
        _ => RsError::FaultInjected(msg),
    }
}

fn frame(kind: u8, txn: u64, payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::with_capacity(1 + 8 + 4 + payload.len());
    w.put_u8(kind);
    w.put_u64(txn);
    w.put_bytes(payload);
    w.into_bytes()
}

/// Decode every whole record in `bytes`. Durable bytes are always
/// record-aligned (appends are whole frames and sync moves the whole
/// tail), so a partial trailing record means corruption, not a torn
/// write — surfaced as a codec error.
pub fn decode_records(bytes: &[u8]) -> Result<Vec<WalRecord>> {
    let mut r = Reader::new(bytes);
    let mut out = Vec::new();
    while !r.is_exhausted() {
        let kind = r.get_u8()?;
        let txn = r.get_u64()?;
        let payload = r.get_bytes()?.to_vec();
        out.push(match kind {
            KIND_CHECKPOINT => WalRecord::Checkpoint { txn, payload },
            KIND_DELTA => WalRecord::Delta { txn, payload },
            KIND_COMMIT => {
                if !payload.is_empty() {
                    return Err(RsError::Codec("wal: commit record with payload".into()));
                }
                WalRecord::Commit { txn }
            }
            t => return Err(RsError::Codec(format!("wal: unknown record kind {t}"))),
        });
    }
    Ok(out)
}

/// Byte offset of the last committed checkpoint record, if any.
fn last_committed_checkpoint_offset(bytes: &[u8]) -> Result<Option<usize>> {
    let mut r = Reader::new(bytes);
    let mut committed = std::collections::BTreeSet::new();
    let mut checkpoints: Vec<(usize, u64)> = Vec::new();
    while !r.is_exhausted() {
        let offset = bytes.len() - r.remaining();
        let kind = r.get_u8()?;
        let txn = r.get_u64()?;
        let _payload = r.get_bytes()?;
        match kind {
            KIND_CHECKPOINT => checkpoints.push((offset, txn)),
            KIND_COMMIT => {
                committed.insert(txn);
            }
            _ => {}
        }
    }
    Ok(checkpoints.into_iter().rev().find(|(_, txn)| committed.contains(txn)).map(|(o, _)| o))
}

/// Replay durable bytes: the last committed checkpoint plus every
/// committed delta after it, in log order. Records of transactions with
/// no commit mark — crashed mid-statement — are invisible.
pub fn replay(bytes: &[u8]) -> Result<Replay> {
    let records = decode_records(bytes)?;
    let committed: std::collections::BTreeSet<u64> = records
        .iter()
        .filter_map(|rec| match rec {
            WalRecord::Commit { txn } => Some(*txn),
            _ => None,
        })
        .collect();
    let mut out = Replay::default();
    for rec in records {
        match rec {
            WalRecord::Checkpoint { txn, payload } if committed.contains(&txn) => {
                // A later committed checkpoint supersedes everything
                // before it, deltas included.
                out.checkpoint = Some((txn, payload));
                out.deltas.clear();
            }
            WalRecord::Delta { txn, payload } if committed.contains(&txn) => {
                out.deltas.push((txn, payload));
            }
            _ => {}
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_faultkit::FaultSpec;

    fn wal() -> Wal {
        Wal::new(Arc::new(FaultRegistry::new(0)))
    }

    #[test]
    fn committed_delta_replays_uncommitted_invisible() {
        let w = wal();
        w.append_delta(1, b"one").unwrap();
        w.sync().unwrap();
        w.commit(1).unwrap();
        w.append_delta(2, b"two").unwrap();
        w.sync().unwrap();
        // txn 2 never commits.
        let rep = replay(&w.durable_bytes()).unwrap();
        assert!(rep.checkpoint.is_none());
        assert_eq!(rep.deltas, vec![(1, b"one".to_vec())]);
    }

    #[test]
    fn unsynced_tail_is_not_durable() {
        let w = wal();
        w.append_delta(7, b"lost").unwrap();
        assert_eq!(w.tail_len() > 0, true);
        assert_eq!(w.durable_len(), 0);
        let rep = replay(&w.durable_bytes()).unwrap();
        assert!(rep.deltas.is_empty());
    }

    #[test]
    fn commit_is_group_commit() {
        // Writer 2's synced-but-uncommitted bytes ride along with
        // writer 1's commit, yet stay invisible to replay.
        let w = wal();
        w.append_delta(1, b"a").unwrap();
        w.append_delta(2, b"b").unwrap();
        w.commit(1).unwrap();
        assert_eq!(w.tail_len(), 0);
        let rep = replay(&w.durable_bytes()).unwrap();
        assert_eq!(rep.deltas, vec![(1, b"a".to_vec())]);
    }

    #[test]
    fn checkpoint_supersedes_prior_deltas() {
        let w = wal();
        w.append_delta(1, b"old").unwrap();
        w.commit(1).unwrap();
        w.append_checkpoint(2, b"image").unwrap();
        w.commit(2).unwrap();
        w.append_delta(3, b"new").unwrap();
        w.commit(3).unwrap();
        let rep = replay(&w.durable_bytes()).unwrap();
        assert_eq!(rep.checkpoint, Some((2, b"image".to_vec())));
        assert_eq!(rep.deltas, vec![(3, b"new".to_vec())]);
    }

    #[test]
    fn uncommitted_checkpoint_is_ignored() {
        let w = wal();
        w.append_delta(1, b"keep").unwrap();
        w.commit(1).unwrap();
        w.append_checkpoint(2, b"torn").unwrap();
        w.sync().unwrap(); // durable but no commit mark
        let rep = replay(&w.durable_bytes()).unwrap();
        assert!(rep.checkpoint.is_none());
        assert_eq!(rep.deltas, vec![(1, b"keep".to_vec())]);
    }

    #[test]
    fn truncate_preserves_replay_and_reclaims() {
        let w = wal();
        w.append_delta(1, b"pre").unwrap();
        w.commit(1).unwrap();
        w.append_checkpoint(2, b"image").unwrap();
        w.commit(2).unwrap();
        w.append_delta(3, b"post").unwrap();
        w.commit(3).unwrap();
        let before = replay(&w.durable_bytes()).unwrap();
        let reclaimed = w.truncate().unwrap();
        assert!(reclaimed > 0, "pre-checkpoint bytes should be reclaimed");
        let after = replay(&w.durable_bytes()).unwrap();
        assert_eq!(before.checkpoint, after.checkpoint);
        assert_eq!(before.deltas, after.deltas);
        // Idempotent: nothing left before the checkpoint.
        assert_eq!(w.truncate().unwrap(), 0);
    }

    #[test]
    fn truncate_without_committed_checkpoint_is_noop() {
        let w = wal();
        w.append_delta(1, b"d").unwrap();
        w.commit(1).unwrap();
        let len = w.durable_len();
        assert_eq!(w.truncate().unwrap(), 0);
        assert_eq!(w.durable_len(), len);
    }

    #[test]
    fn from_durable_round_trips_crash_image() {
        let w = wal();
        w.append_delta(1, b"survives").unwrap();
        w.commit(1).unwrap();
        w.append_delta(2, b"tail-lost").unwrap(); // never synced
        let image = w.durable_bytes();
        let revived = Wal::from_durable(image, Arc::new(FaultRegistry::new(0)));
        let rep = replay(&revived.durable_bytes()).unwrap();
        assert_eq!(rep.deltas, vec![(1, b"survives".to_vec())]);
    }

    #[test]
    fn failpoints_abort_and_leave_durable_unchanged() {
        let faults = Arc::new(FaultRegistry::new(0));
        let w = Wal::new(Arc::clone(&faults));
        w.append_delta(1, b"base").unwrap();
        w.commit(1).unwrap();
        let base = w.durable_bytes();

        faults.configure(fp::WAL_APPEND, FaultSpec::err(ErrClass::Fault).once());
        let err = w.append_delta(2, b"x").unwrap_err();
        assert!(err.is_retryable(), "wal faults must be retryable: {err}");

        faults.configure(fp::WAL_SYNC, FaultSpec::err(ErrClass::Throttle).once());
        w.append_delta(3, b"y").unwrap();
        assert!(w.sync().is_err());

        faults.configure(fp::WAL_COMMIT, FaultSpec::err(ErrClass::Fault).once());
        assert!(w.commit(3).is_err());

        // Nothing new became durable through any failed seam.
        assert_eq!(w.durable_bytes(), base);

        // Drop outcomes abort too (a swallowed redo record would be
        // unrecoverable).
        faults.configure(fp::WAL_APPEND, FaultSpec::drop_op().once());
        assert!(w.append_delta(4, b"z").is_err());
    }

    #[test]
    fn corrupt_bytes_surface_codec_error() {
        assert!(replay(&[9, 0, 0]).is_err());
        let w = wal();
        w.append_delta(1, b"ok").unwrap();
        w.commit(1).unwrap();
        let mut bytes = w.durable_bytes();
        bytes.truncate(bytes.len() - 1);
        assert!(replay(&bytes).is_err());
    }
}
