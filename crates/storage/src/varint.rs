//! Zigzag + LEB128 varints, used by the delta encoding.

use redsim_common::{Result, RsError};

/// Zigzag-encode a signed 128-bit integer (covers i64 and decimal units).
#[inline]
pub fn zigzag(v: i128) -> u128 {
    ((v << 1) ^ (v >> 127)) as u128
}

/// Invert [`zigzag`].
#[inline]
pub fn unzigzag(v: u128) -> i128 {
    ((v >> 1) as i128) ^ -((v & 1) as i128)
}

/// Append a LEB128 varint.
pub fn write_uvarint(out: &mut Vec<u8>, mut v: u128) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zigzag varint.
pub fn write_ivarint(out: &mut Vec<u8>, v: i128) {
    write_uvarint(out, zigzag(v));
}

/// Read a LEB128 varint, advancing `pos`.
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Result<u128> {
    let mut v: u128 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| RsError::Codec("varint truncated".into()))?;
        *pos += 1;
        if shift >= 128 {
            return Err(RsError::Codec("varint overflow".into()));
        }
        v |= ((byte & 0x7F) as u128) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Read a zigzag varint.
pub fn read_ivarint(buf: &[u8], pos: &mut usize) -> Result<i128> {
    Ok(unzigzag(read_uvarint(buf, pos)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i128, 1, -1, 63, -64, i64::MAX as i128, i64::MIN as i128, i128::MAX, i128::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v, "v={v}");
        }
    }

    #[test]
    fn varint_roundtrip() {
        let values = [0i128, 1, -1, 127, -128, 300, -300, 1 << 40, -(1 << 40), i128::MAX, i128::MIN];
        let mut buf = Vec::new();
        for &v in &values {
            write_ivarint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_ivarint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        write_ivarint(&mut buf, 3);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, u128::MAX);
        let mut pos = 0;
        assert!(read_uvarint(&buf[..buf.len() - 1], &mut pos).is_err());
    }
}
