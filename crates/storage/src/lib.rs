//! # redsim-storage
//!
//! The columnar storage engine described in §2.1 of the paper:
//!
//! > "Within each slice, data storage is column-oriented. Each column
//! > within each slice is encoded in a chain of one or more fixed size
//! > data blocks. The linkage between the columns of an individual row is
//! > derived by calculating the logical offset within each column chain."
//!
//! * [`encoding`] — per-column compression codecs (raw, run-length,
//!   delta/varint, byte-dictionary, mostly-N, LZSS for text) with a
//!   uniform self-describing wire format.
//! * [`analyzer`] — the automatic compression chooser: samples loaded
//!   data, tries every applicable codec, picks the smallest (the paper's
//!   "dusty knob": `COPY` sets compression so users never have to).
//! * [`zonemap`] — per-block min/max/null metadata and the block-skipping
//!   predicate (the paper forgoes indexes in favor of "column-block
//!   skipping based on value-ranges stored in memory").
//! * [`block`] — encoded block representation with CRC32 integrity.
//! * [`store`] — the [`store::BlockStore`] trait plus an in-memory
//!   implementation; replication wraps this trait to add mirroring and
//!   page-fault restore without storage knowing.
//! * [`table`] — per-slice table storage: row-group-aligned column
//!   chains, a sorted region plus an unsorted append region, `VACUUM`
//!   (merge into sort order, compound or interleaved/z-order), scans with
//!   zone-map and z-curve pruning.
//! * [`stats`] — `ANALYZE` statistics: row counts, NDV via KMV sketch,
//!   min/max, used by the optimizer's join ordering and distribution
//!   decisions.
//! * [`wal`] — the write-ahead redo log: append → fsync-point →
//!   commit-record framing over slice manifests, router cursors and
//!   stats, replayed by crash recovery so committed writes survive a
//!   process crash and uncommitted ones stay invisible.
//!
//! Blocks here are *row-group aligned*: every column of a row group is one
//! block, and groups target a fixed byte size via the configured rows per
//! group. This preserves the paper-visible behaviours (fixed-granularity
//! skipping, logical-offset row linkage) while keeping scans vectorized.

pub mod analyzer;
pub mod block;
pub mod encoding;
pub mod lzss;
pub mod stats;
pub mod store;
pub mod table;
pub mod varint;
pub mod wal;
pub mod zonemap;

pub use analyzer::{analyze_compression, encoding_report};
pub use block::{BlockId, EncodedBlock};
pub use encoding::{decode_column, encode_column, Encoding};
pub use stats::{ColumnStats, TableStats};
pub use store::{BlockStore, MemBlockStore};
pub use table::{ColumnRange, ScanPredicate, SliceTable, SortKeySpec, TableConfig};
pub use wal::{Wal, WalRecord};
pub use zonemap::ZoneMap;
