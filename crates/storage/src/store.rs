//! Block stores.
//!
//! [`BlockStore`] is the seam between the table layer and everything the
//! paper builds underneath it: local disks, the synchronous secondary
//! replica, the asynchronous S3 backup, and page-fault streaming restore.
//! The table layer only ever `put`s, `get`s and `delete`s; the
//! replication crate wraps a store to add mirroring and S3 fall-through
//! without the storage layer knowing.

use crate::block::{BlockId, EncodedBlock};
use redsim_testkit::sync::RwLock;
use redsim_common::{FxHashMap, Result, RsError};
use std::sync::Arc;

/// Abstract block storage.
pub trait BlockStore: Send + Sync {
    /// Store a block (idempotent for identical content).
    fn put(&self, block: EncodedBlock) -> Result<()>;

    /// Fetch a block by id.
    fn get(&self, id: BlockId) -> Result<Arc<EncodedBlock>>;

    /// Drop a block. Missing ids are ignored (deletes are replayed during
    /// recovery).
    fn delete(&self, id: BlockId);

    /// Does the store currently hold this block locally?
    fn contains(&self, id: BlockId) -> bool;

    /// Number of blocks held.
    fn block_count(&self) -> usize;

    /// Total payload bytes held.
    fn total_bytes(&self) -> u64;
}

/// In-memory block store (a node's local disk in the simulation).
#[derive(Default)]
pub struct MemBlockStore {
    inner: RwLock<FxHashMap<u64, Arc<EncodedBlock>>>,
}

impl MemBlockStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the ids currently held (backup enumeration).
    pub fn ids(&self) -> Vec<BlockId> {
        self.inner.read().keys().map(|&k| BlockId(k)).collect()
    }
}

impl BlockStore for MemBlockStore {
    fn put(&self, block: EncodedBlock) -> Result<()> {
        block.verify()?;
        self.inner.write().insert(block.id.0, Arc::new(block));
        Ok(())
    }

    fn get(&self, id: BlockId) -> Result<Arc<EncodedBlock>> {
        self.inner
            .read()
            .get(&id.0)
            .cloned()
            .ok_or_else(|| RsError::NotFound(format!("{id} not in store")))
    }

    fn delete(&self, id: BlockId) {
        self.inner.write().remove(&id.0);
    }

    fn contains(&self, id: BlockId) -> bool {
        self.inner.read().contains_key(&id.0)
    }

    fn block_count(&self) -> usize {
        self.inner.read().len()
    }

    fn total_bytes(&self) -> u64 {
        self.inner.read().values().map(|b| b.byte_size() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let store = MemBlockStore::new();
        let blk = EncodedBlock::new(5, vec![9, 9, 9]);
        let id = blk.id;
        store.put(blk.clone()).unwrap();
        assert!(store.contains(id));
        assert_eq!(store.get(id).unwrap().payload, vec![9, 9, 9]);
        assert_eq!(store.block_count(), 1);
        assert_eq!(store.total_bytes(), 3);
        store.delete(id);
        assert!(!store.contains(id));
        assert!(store.get(id).is_err());
        store.delete(id); // idempotent
    }

    #[test]
    fn corrupt_put_rejected() {
        let store = MemBlockStore::new();
        let mut blk = EncodedBlock::new(5, vec![1]);
        blk.payload[0] = 2; // break CRC
        assert!(store.put(blk).is_err());
        assert_eq!(store.block_count(), 0);
    }

    #[test]
    fn concurrent_access() {
        let store = Arc::new(MemBlockStore::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let s = Arc::clone(&store);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let blk = EncodedBlock::new(1, vec![t as u8, i as u8]);
                    let id = blk.id;
                    s.put(blk).unwrap();
                    assert!(s.get(id).is_ok());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(store.block_count(), 800);
    }
}
