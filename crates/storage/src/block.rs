//! Encoded data blocks.
//!
//! A block is the unit of storage, replication, backup and page-fault
//! restore. Its payload is a self-describing encoded column segment (see
//! [`crate::encoding`]); the header adds identity and an integrity CRC.

use redsim_common::codec::{crc32, Reader, Writer};
use redsim_common::{Result, RsError};
use std::sync::atomic::{AtomicU64, Ordering};

/// Globally unique block identifier.
///
/// Identifiers are process-unique (monotonic counter); the replication
/// layer namespaces them per cluster when talking to S3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

impl std::fmt::Display for BlockId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "blk-{:016x}", self.0)
    }
}

static NEXT_BLOCK_ID: AtomicU64 = AtomicU64::new(1);

impl BlockId {
    /// Allocate a fresh process-unique id.
    pub fn alloc() -> BlockId {
        BlockId(NEXT_BLOCK_ID.fetch_add(1, Ordering::Relaxed))
    }
}

/// An encoded column segment plus identity and integrity metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedBlock {
    pub id: BlockId,
    /// Rows contained in the segment.
    pub rows: u32,
    /// Encoded payload (self-describing; see `encoding`).
    pub payload: Vec<u8>,
    /// CRC32 of the payload.
    pub crc: u32,
}

const BLOCK_MAGIC: u32 = 0x5244_424B; // "RDBK"

impl EncodedBlock {
    /// Wrap an encoded payload in a block with a fresh id.
    pub fn new(rows: u32, payload: Vec<u8>) -> EncodedBlock {
        Self::with_id(BlockId::alloc(), rows, payload)
    }

    /// Wrap a payload under an existing id (encryption wrappers transform
    /// payloads while preserving block identity).
    pub fn with_id(id: BlockId, rows: u32, payload: Vec<u8>) -> EncodedBlock {
        let crc = crc32(&payload);
        EncodedBlock { id, rows, payload, crc }
    }

    /// Verify payload integrity.
    pub fn verify(&self) -> Result<()> {
        if crc32(&self.payload) != self.crc {
            return Err(RsError::Storage(format!("CRC mismatch on {}", self.id)));
        }
        Ok(())
    }

    /// Bytes held by this block (payload only; header overhead is
    /// negligible and excluded from capacity accounting).
    pub fn byte_size(&self) -> usize {
        self.payload.len()
    }

    /// Serialize for S3 / cross-node shipping.
    pub fn serialize(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(self.payload.len() + 32);
        w.put_u32(BLOCK_MAGIC);
        w.put_u64(self.id.0);
        w.put_u32(self.rows);
        w.put_u32(self.crc);
        w.put_bytes(&self.payload);
        w.into_bytes()
    }

    /// Inverse of [`serialize`](Self::serialize); verifies magic and CRC.
    pub fn deserialize(bytes: &[u8]) -> Result<EncodedBlock> {
        let mut r = Reader::new(bytes);
        if r.get_u32()? != BLOCK_MAGIC {
            return Err(RsError::Codec("bad block magic".into()));
        }
        let id = BlockId(r.get_u64()?);
        let rows = r.get_u32()?;
        let crc = r.get_u32()?;
        let payload = r.get_bytes()?.to_vec();
        let blk = EncodedBlock { id, rows, payload, crc };
        blk.verify()?;
        Ok(blk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique() {
        let a = BlockId::alloc();
        let b = BlockId::alloc();
        assert_ne!(a, b);
    }

    #[test]
    fn serialize_roundtrip() {
        let blk = EncodedBlock::new(10, vec![1, 2, 3, 4]);
        let bytes = blk.serialize();
        let rt = EncodedBlock::deserialize(&bytes).unwrap();
        assert_eq!(blk, rt);
    }

    #[test]
    fn corruption_detected() {
        let blk = EncodedBlock::new(10, vec![1, 2, 3, 4]);
        let mut bytes = blk.serialize();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF;
        assert!(EncodedBlock::deserialize(&bytes).is_err());

        let mut tampered = blk.clone();
        tampered.payload[0] ^= 1;
        assert!(tampered.verify().is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(EncodedBlock::deserialize(&[0u8; 24]).is_err());
    }
}
