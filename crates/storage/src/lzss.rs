//! LZSS — sliding-window Lempel–Ziv with literal/copy flags.
//!
//! Used for text-heavy columns where dictionary and run-length codecs do
//! not apply (URLs, user agents, free text — exactly the web-log payloads
//! of the paper's flagship workload). Format:
//!
//! ```text
//! [u32 uncompressed_len] then a stream of groups:
//!   flag byte: bit i set => token i is a (offset,len) copy, else literal
//!   literal: 1 raw byte
//!   copy:    2 bytes: offset (11 bits, 1-based back-distance) | len-3 (5 bits)
//! ```
//!
//! Window 2048 bytes, match lengths 3..=34. A simple 3-byte-prefix hash
//! chain keeps compression O(n) with bounded probing.

const WINDOW: usize = 2048;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 34;
const HASH_SIZE: usize = 1 << 12;
const MAX_PROBES: usize = 32;

#[inline]
fn hash3(b: &[u8]) -> usize {
    let h = (b[0] as u32).wrapping_mul(2654435761)
        ^ (b[1] as u32).wrapping_mul(40503)
        ^ (b[2] as u32).wrapping_mul(2246822519);
    (h as usize) & (HASH_SIZE - 1)
}

/// Compress `input`. Always succeeds; worst case expands by ~1/8 + 5 bytes.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    // head[h] = most recent position with hash h; prev[i % WINDOW] = chain.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];
    let mut i = 0usize;
    let mut flag_pos = usize::MAX;
    let mut flag_bit = 8u8;
    let push_token = |out: &mut Vec<u8>, flag_pos: &mut usize, flag_bit: &mut u8, is_copy: bool, bytes: &[u8]| {
        if *flag_bit == 8 {
            *flag_pos = out.len();
            out.push(0);
            *flag_bit = 0;
        }
        if is_copy {
            let fp = *flag_pos;
            out[fp] |= 1 << *flag_bit;
        }
        *flag_bit += 1;
        out.extend_from_slice(bytes);
    };
    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash3(&input[i..]);
            let mut cand = head[h];
            let mut probes = 0;
            while cand != usize::MAX && probes < MAX_PROBES {
                if i - cand > WINDOW {
                    break;
                }
                // Extend match.
                let max = MAX_MATCH.min(input.len() - i);
                let mut l = 0;
                while l < max && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == MAX_MATCH {
                        break;
                    }
                }
                cand = prev[cand % WINDOW];
                probes += 1;
            }
        }
        if best_len >= MIN_MATCH {
            let token = ((best_off as u16 - 1) << 5) | (best_len as u16 - MIN_MATCH as u16);
            push_token(&mut out, &mut flag_pos, &mut flag_bit, true, &token.to_le_bytes());
            // Insert hash entries for every covered position.
            let end = i + best_len;
            while i < end && i + MIN_MATCH <= input.len() {
                let h = hash3(&input[i..]);
                prev[i % WINDOW] = head[h];
                head[h] = i;
                i += 1;
            }
            i = end;
        } else {
            if i + MIN_MATCH <= input.len() {
                let h = hash3(&input[i..]);
                prev[i % WINDOW] = head[h];
                head[h] = i;
            }
            push_token(&mut out, &mut flag_pos, &mut flag_bit, false, &input[i..=i]);
            i += 1;
        }
    }
    out
}

/// Decompress a buffer produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, redsim_common::RsError> {
    use redsim_common::RsError;
    let err = || RsError::Codec("corrupt LZSS stream".into());
    if data.len() < 4 {
        return Err(err());
    }
    let expect = u32::from_le_bytes(data[..4].try_into().unwrap()) as usize;
    let mut out = Vec::with_capacity(expect);
    let mut pos = 4usize;
    while out.len() < expect {
        let flags = *data.get(pos).ok_or_else(err)?;
        pos += 1;
        for bit in 0..8 {
            if out.len() >= expect {
                break;
            }
            if flags & (1 << bit) != 0 {
                let lo = *data.get(pos).ok_or_else(err)?;
                let hi = *data.get(pos + 1).ok_or_else(err)?;
                pos += 2;
                let token = u16::from_le_bytes([lo, hi]);
                let off = ((token >> 5) + 1) as usize;
                let len = (token & 0x1F) as usize + MIN_MATCH;
                if off > out.len() {
                    return Err(err());
                }
                let start = out.len() - off;
                // Overlapping copies are defined byte-by-byte.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                out.push(*data.get(pos).ok_or_else(err)?);
                pos += 1;
            }
        }
    }
    if out.len() != expect {
        return Err(err());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_compresses_well() {
        let data = b"http://example.com/page ".repeat(200);
        let c = compress(&data);
        assert!(c.len() < data.len() / 4, "{} vs {}", c.len(), data.len());
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_matches() {
        // "aaaa..." forces overlapping copy semantics.
        let data = vec![b'a'; 1000];
        roundtrip(&data);
    }

    #[test]
    fn incompressible_roundtrips() {
        // Pseudo-random bytes shouldn't compress but must round-trip.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..5000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn long_input_exceeding_window() {
        let mut data = Vec::new();
        for i in 0..3000u32 {
            data.extend_from_slice(format!("row-{}-{}", i % 10, i).as_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn corrupt_stream_rejected() {
        let c = compress(b"hello hello hello hello");
        assert!(decompress(&c[..c.len() - 1]).is_err());
        assert!(decompress(&[1, 0]).is_err());
    }
}
