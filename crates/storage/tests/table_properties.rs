//! Property tests for the storage layer's core invariants.

use redsim_common::codec::{Reader, Writer};
use redsim_common::{ColumnData, ColumnDef, DataType, Schema, Value};
use redsim_storage::table::{ColumnRange, ScanPredicate, SliceTable, SortKeySpec, TableConfig};
use redsim_storage::MemBlockStore;
use redsim_testkit::prop::{self, Config, Gen};

fn schema() -> Schema {
    Schema::new(vec![
        ColumnDef::new("k", DataType::Int8),
        ColumnDef::new("v", DataType::Varchar),
    ])
    .unwrap()
}

fn build_table(
    rows: &[(i64, Option<String>)],
    sort: SortKeySpec,
    rows_per_group: usize,
) -> (MemBlockStore, SliceTable) {
    let store = MemBlockStore::new();
    let mut t = SliceTable::new(
        schema(),
        TableConfig { rows_per_group, sort_key: sort, auto_compress: true },
    )
    .unwrap();
    let mut k = ColumnData::new(DataType::Int8);
    let mut v = ColumnData::new(DataType::Varchar);
    for (a, b) in rows {
        k.push_value(&Value::Int8(*a)).unwrap();
        match b {
            Some(s) => v.push_value(&Value::Str(s.clone())).unwrap(),
            None => v.push_null(),
        }
    }
    t.append(&[k, v], &store).unwrap();
    t.flush(&store).unwrap();
    (store, t)
}

fn all_rows(store: &MemBlockStore, t: &SliceTable) -> Vec<(Option<i64>, Option<String>)> {
    let out = t.scan(store, &[0, 1], None).unwrap();
    let mut rows = Vec::new();
    for b in &out.batches {
        for i in 0..b[0].len() {
            rows.push((b[0].get_i64(i), b[1].get_str(i).map(str::to_string)));
        }
    }
    rows
}

/// `(key, optional short string)` rows, the bread-and-butter table shape.
fn arb_rows(max_str: &'static str, len: std::ops::Range<usize>) -> Gen<Vec<(i64, Option<String>)>> {
    prop::vec_of(
        prop::pair(prop::any_i64(), prop::option_of(prop::pattern(max_str))),
        len,
    )
}

/// Whatever goes in comes back out (append/flush/scan), regardless of
/// group size and data shape.
#[test]
fn scan_returns_exactly_what_was_appended() {
    let gen = prop::pair(arb_rows("[a-z]{0,8}", 0..300), prop::range(1usize..64));
    prop::check(
        "scan_returns_exactly_what_was_appended",
        &Config::with_cases(48),
        &gen,
        |(rows, rows_per_group)| {
            let (store, t) = build_table(rows, SortKeySpec::None, *rows_per_group);
            let mut got = all_rows(&store, &t);
            let mut want: Vec<(Option<i64>, Option<String>)> =
                rows.iter().map(|(a, b)| (Some(*a), b.clone())).collect();
            got.sort();
            want.sort();
            assert_eq!(got, want);
            assert_eq!(t.row_count(), rows.len() as u64);
        },
    );
}

/// VACUUM preserves the multiset of rows and produces global order.
#[test]
fn vacuum_preserves_rows_and_sorts() {
    let gen = prop::pair(arb_rows("[a-z]{0,6}", 1..250), prop::range(4usize..64));
    prop::check(
        "vacuum_preserves_rows_and_sorts",
        &Config::with_cases(48),
        &gen,
        |(rows, rows_per_group)| {
            let (store, mut t) =
                build_table(rows, SortKeySpec::Compound(vec![0]), *rows_per_group);
            let mut before = all_rows(&store, &t);
            let rewritten = t.vacuum(&store).unwrap();
            assert_eq!(rewritten, rows.len() as u64);
            let after = all_rows(&store, &t);
            // Multiset equal.
            let mut after_sorted = after.clone();
            before.sort();
            after_sorted.sort();
            assert_eq!(before, after_sorted);
            // Globally sorted by the key.
            let keys: Vec<Option<i64>> = after.iter().map(|(a, _)| *a).collect();
            let mut expect = keys.clone();
            expect.sort();
            assert_eq!(keys, expect);
            assert_eq!(t.unsorted_rows(), 0);
        },
    );
}

/// Pruned scans never lose a matching row, for any sort layout.
#[test]
fn pruning_is_sound() {
    let gen = prop::tuple4(
        prop::vec_of(prop::range(-500i64..500), 1..300),
        prop::range(-500i64..500),
        prop::range(0i64..300),
        prop::any_bool(),
    );
    prop::check(
        "pruning_is_sound",
        &Config::with_cases(48),
        &gen,
        |(keys, lo, width, vacuum)| {
            let rows: Vec<(i64, Option<String>)> =
                keys.iter().map(|&k| (k, Some(format!("s{k}")))).collect();
            let (store, mut t) = build_table(&rows, SortKeySpec::Compound(vec![0]), 16);
            if *vacuum {
                t.vacuum(&store).unwrap();
            }
            let (lo, hi) = (*lo, *lo + *width);
            let pred = ScanPredicate {
                ranges: vec![ColumnRange {
                    col: 0,
                    lo: Some(Value::Int8(lo)),
                    hi: Some(Value::Int8(hi)),
                }],
            };
            let out = t.scan(&store, &[0], Some(&pred)).unwrap();
            let mut surviving = 0usize;
            for b in &out.batches {
                for i in 0..b[0].len() {
                    if let Some(k) = b[0].get_i64(i) {
                        if k >= lo && k <= hi {
                            surviving += 1;
                        }
                    }
                }
            }
            let expect = keys.iter().filter(|&&k| k >= lo && k <= hi).count();
            assert_eq!(surviving, expect, "pruning dropped matching rows");
        },
    );
}

/// Metadata round-trips: a decoded table scans identically.
#[test]
fn meta_roundtrip_any_table() {
    let gen = prop::pair(arb_rows("[a-z]{0,6}", 0..150), prop::any_bool());
    prop::check(
        "meta_roundtrip_any_table",
        &Config::with_cases(48),
        &gen,
        |(rows, interleaved)| {
            let sort = if *interleaved {
                SortKeySpec::Interleaved(vec![0])
            } else {
                SortKeySpec::Compound(vec![0])
            };
            let (store, mut t) = build_table(rows, sort, 16);
            if !rows.is_empty() {
                t.vacuum(&store).unwrap();
            }
            let mut w = Writer::new();
            t.encode_meta(&mut w);
            let bytes = w.into_bytes();
            let t2 = SliceTable::decode_meta(&mut Reader::new(&bytes)).unwrap();
            let mut a = all_rows(&store, &t);
            let mut b = all_rows(&store, &t2);
            a.sort();
            b.sort();
            assert_eq!(a, b);
            assert_eq!(t.row_count(), t2.row_count());
        },
    );
}

/// Interleaved tables keep pruning after a metadata round-trip (the
/// z-normalization parameters survive serialization).
#[test]
fn interleaved_meta_preserves_pruning() {
    let store = MemBlockStore::new();
    let schema = Schema::new(vec![
        ColumnDef::new("x", DataType::Int8),
        ColumnDef::new("y", DataType::Int8),
    ])
    .unwrap();
    let mut t = SliceTable::new(
        schema,
        TableConfig {
            rows_per_group: 256,
            sort_key: SortKeySpec::Interleaved(vec![0, 1]),
            auto_compress: true,
        },
    )
    .unwrap();
    let mut x = ColumnData::new(DataType::Int8);
    let mut y = ColumnData::new(DataType::Int8);
    for i in 0..4096i64 {
        x.push_value(&Value::Int8((i * 37) % 1024)).unwrap();
        y.push_value(&Value::Int8((i * 101) % 1024)).unwrap();
    }
    t.append(&[x, y], &store).unwrap();
    t.flush(&store).unwrap();
    t.vacuum(&store).unwrap();

    let mut w = Writer::new();
    t.encode_meta(&mut w);
    let bytes = w.into_bytes();
    let t2 = SliceTable::decode_meta(&mut Reader::new(&bytes)).unwrap();

    let pred = ScanPredicate {
        ranges: vec![ColumnRange {
            col: 1,
            lo: Some(Value::Int8(0)),
            hi: Some(Value::Int8(63)),
        }],
    };
    let orig = t.scan(&store, &[0, 1], Some(&pred)).unwrap();
    let restored = t2.scan(&store, &[0, 1], Some(&pred)).unwrap();
    assert!(orig.groups_skipped > 0);
    assert_eq!(orig.groups_skipped, restored.groups_skipped);
    let rows = |o: &redsim_storage::table::ScanOutput| -> usize {
        o.batches.iter().map(|b| b[0].len()).sum()
    };
    assert_eq!(rows(&orig), rows(&restored));
}
