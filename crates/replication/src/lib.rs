//! # redsim-replication
//!
//! The durability substrate of §2.1–2.2:
//!
//! > "Each data block is synchronously written to both its primary slice
//! > as well as to at least one secondary on a separate node. … Data
//! > blocks are also asynchronously and automatically backed up to Amazon
//! > S3 … The primary, secondary and Amazon S3 copies of the data block
//! > are each available for read, making media failures transparent."
//!
//! * [`s3sim`] — a multi-region durable object store standing in for
//!   Amazon S3 (the paper's hardware/service gate; see DESIGN.md §5).
//! * [`mirror`] — per-node block stores wrapped by a cluster-wide
//!   [`mirror::ReplicatedStore`]: synchronous primary+secondary writes
//!   with cohort-constrained placement, read fall-through
//!   primary → secondary → S3, failure injection, and re-replication.
//! * [`backup`] — continuous incremental snapshots: only blocks S3 has
//!   not seen are uploaded; system snapshots age out; user snapshots
//!   persist; optional second-region copies for disaster recovery.
//! * [`restore`] — **streaming restore**: a store that serves reads by
//!   page-faulting blocks from S3 while a background process hydrates
//!   the rest, so "the database \[can\] be opened for SQL operations after
//!   metadata and catalog restoration".

//! Fault seams (this PR's escalator substrate): every S3-touching path
//! consults a named `faultkit` failpoint and is wrapped in a typed
//! retry loop — [`inject`] holds the class→`RsError` mapping and the
//! `obs` glue — so transient faults are absorbed with backoff while
//! permanent ones surface typed, per the paper's §5 "escalators, not
//! elevators".

pub mod backup;
pub mod inject;
pub mod mirror;
pub mod restore;
pub mod s3sim;

pub use backup::{BackupManager, SnapshotInfo, SnapshotKind};
pub use inject::{fault_error, fire, fire_no_skip, retry_observer, Flow};
pub use mirror::{NodeStore, ReplicatedStore};
pub use restore::StreamingRestoreStore;
pub use s3sim::S3Sim;
