//! Synchronous primary/secondary block mirroring with cohort placement.

use crate::inject::{self, Flow};
use crate::s3sim::S3Sim;
use redsim_faultkit::{fp, FaultRegistry};
use redsim_obs::{TraceSink, LVL_PHASE};
use redsim_testkit::sync::{Mutex, RwLock};
use redsim_common::{FxHashMap, Result, RetryPolicy, RsError};
use redsim_distribution::{CohortMap, NodeId};
use redsim_storage::{BlockId, BlockStore, EncodedBlock, MemBlockStore};
use std::sync::Arc;

/// Where a block's replicas live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    pub primary: NodeId,
    pub secondary: Option<NodeId>,
}

/// Cluster-wide replicated storage shared by all nodes.
pub struct ReplicatedStore {
    nodes: Vec<Arc<MemBlockStore>>,
    alive: RwLock<Vec<bool>>,
    cohorts: CohortMap,
    placements: RwLock<FxHashMap<u64, Placement>>,
    s3: Arc<S3Sim>,
    region: String,
    bucket: String,
    /// Blocks written but not yet uploaded to S3 (the async backup queue).
    backup_queue: Mutex<Vec<BlockId>>,
    /// Read path telemetry.
    secondary_reads: Mutex<u64>,
    s3_reads: Mutex<u64>,
    /// Optional telemetry sink (the owning cluster's). Mirror lag shows
    /// up as the `mirror.backup_backlog` gauge; drains and
    /// re-replication as `mirror.*` spans/counters.
    trace: RwLock<Option<Arc<TraceSink>>>,
    /// Retry policy for every S3-touching and failpoint-armed path.
    retry: RwLock<RetryPolicy>,
}

impl ReplicatedStore {
    pub fn new(
        n_nodes: u32,
        cohort_size: u32,
        s3: Arc<S3Sim>,
        region: impl Into<String>,
        bucket: impl Into<String>,
    ) -> Result<Arc<Self>> {
        Ok(Arc::new(ReplicatedStore {
            nodes: (0..n_nodes).map(|_| Arc::new(MemBlockStore::new())).collect(),
            alive: RwLock::new(vec![true; n_nodes as usize]),
            cohorts: CohortMap::new(n_nodes, cohort_size)?,
            placements: RwLock::new(FxHashMap::default()),
            s3,
            region: region.into(),
            bucket: bucket.into(),
            backup_queue: Mutex::new(Vec::new()),
            secondary_reads: Mutex::new(0),
            s3_reads: Mutex::new(0),
            trace: RwLock::new(None),
            retry: RwLock::new(RetryPolicy::default()),
        }))
    }

    /// Attach a telemetry sink after construction (the store is always
    /// behind an `Arc`, so this is interior rather than a builder).
    pub fn set_trace(&self, sink: Arc<TraceSink>) {
        *self.trace.write() = Some(sink);
    }

    /// Replace the retry policy (the cluster plumbs
    /// `ClusterConfig::retry` here at launch).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *self.retry.write() = policy;
    }

    /// The failpoint registry shared through the S3 handle.
    pub fn faults(&self) -> &Arc<FaultRegistry> {
        self.s3.faults()
    }

    fn sink_opt(&self) -> Option<Arc<TraceSink>> {
        self.trace.read().clone()
    }

    fn with_sink(&self, f: impl FnOnce(&Arc<TraceSink>)) {
        if let Some(t) = self.trace.read().as_ref() {
            f(t);
        }
    }

    fn publish_backlog(&self) {
        let depth = self.backup_queue.lock().len() as i64;
        self.with_sink(|t| t.gauge("mirror.backup_backlog").set(depth));
    }

    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    fn s3_key(&self, id: BlockId) -> String {
        format!("{}/blocks/{:016x}", self.bucket, id.0)
    }

    /// A per-node handle implementing [`BlockStore`]; writes through this
    /// handle place the primary replica on that node.
    pub fn node_store(self: &Arc<Self>, node: NodeId) -> NodeStore {
        assert!((node.0 as usize) < self.nodes.len());
        NodeStore { node, inner: Arc::clone(self) }
    }

    fn node_alive(&self, node: NodeId) -> bool {
        self.alive.read()[node.0 as usize]
    }

    /// Synchronous dual write: primary on `node`, secondary in-cohort.
    fn put_from(&self, node: NodeId, block: EncodedBlock) -> Result<()> {
        if !self.node_alive(node) {
            return Err(RsError::FaultInjected(format!("{node} is down")));
        }
        let id = block.id;
        let mut secondary = self.cohorts.secondary_for(node, id.0);
        // Skip dead secondaries: pick another cohort member if possible.
        if let Some(s) = secondary {
            if !self.node_alive(s) {
                secondary = self
                    .cohorts
                    .members(node)
                    .into_iter()
                    .find(|&m| m != node && self.node_alive(m));
            }
        }
        let retry = *self.retry.read();
        let sink = self.sink_opt();
        let faults = self.faults();
        // Primary replica, behind the `mirror.write.primary` failpoint.
        // A `drop` action skips the local write but keeps the placement:
        // reads then fall through to the secondary (the escalator).
        retry.run_observed(
            "mirror.write.primary",
            || match inject::fire(faults, sink.as_ref(), fp::MIRROR_WRITE_PRIMARY)? {
                Flow::Skip => Ok(()),
                Flow::Continue => self.nodes[node.0 as usize].put(block.clone()),
            },
            inject::retry_observer(sink.clone()),
        )?;
        if let Some(s) = secondary {
            retry.run_observed(
                "mirror.write.secondary",
                || match inject::fire(faults, sink.as_ref(), fp::MIRROR_WRITE_SECONDARY)? {
                    Flow::Skip => Ok(()),
                    Flow::Continue => self.nodes[s.0 as usize].put(block.clone()),
                },
                inject::retry_observer(sink.clone()),
            )?;
        }
        self.placements.write().insert(id.0, Placement { primary: node, secondary });
        self.backup_queue.lock().push(id);
        self.publish_backlog();
        Ok(())
    }

    /// Read with fall-through: primary → secondary → S3.
    pub fn get_any(&self, id: BlockId) -> Result<Arc<EncodedBlock>> {
        let placement = self.placements.read().get(&id.0).copied();
        if let Some(p) = placement {
            if self.node_alive(p.primary) {
                if let Ok(b) = self.nodes[p.primary.0 as usize].get(id) {
                    return Ok(b);
                }
            }
            if let Some(s) = p.secondary {
                if self.node_alive(s) {
                    if let Ok(b) = self.nodes[s.0 as usize].get(id) {
                        *self.secondary_reads.lock() += 1;
                        return Ok(b);
                    }
                }
            }
        }
        // Page-fault from S3 ("making media failures transparent").
        // Transient S3 faults (throttles, injected flakiness) are
        // absorbed by the retry loop; a genuinely missing object keeps
        // the legacy "unavailable everywhere" replication error, while
        // an exhausted retry budget surfaces its own class (THROTTLE,
        // FAULT, ...) so callers see the true failure.
        let retry = *self.retry.read();
        let key = self.s3_key(id);
        let bytes = retry
            .run_observed(
                "s3.get",
                || self.s3.get(&self.region, &key),
                inject::retry_observer(self.sink_opt()),
            )
            .map_err(|e| match e {
                RsError::NotFound(_) => {
                    RsError::Replication(format!("{id} unavailable on all replicas and S3"))
                }
                other => other,
            })?;
        *self.s3_reads.lock() += 1;
        Ok(Arc::new(EncodedBlock::deserialize(&bytes)?))
    }

    /// Drain the async backup queue to S3; returns blocks uploaded.
    /// (In the real service this runs continuously; tests and the backup
    /// manager call it explicitly for determinism.)
    pub fn drain_backup_queue(&self) -> Result<usize> {
        let pending: Vec<BlockId> = std::mem::take(&mut *self.backup_queue.lock());
        let requested = pending.len();
        let mut span = match self.trace.read().as_ref() {
            Some(t) => t.span(LVL_PHASE, "mirror.backup_drain"),
            None => redsim_obs::Span::disabled(),
        };
        let retry = *self.retry.read();
        let sink = self.sink_opt();
        let faults = self.faults();
        let mut uploaded = 0;
        let mut requeue: Vec<BlockId> = Vec::new();
        let mut failure: Option<RsError> = None;
        let mut iter = pending.into_iter();
        for id in iter.by_ref() {
            let key = self.s3_key(id);
            if self.s3.exists(&self.region, &key) {
                continue; // incremental: S3 already has it
            }
            let block = match self.get_any(id) {
                Ok(b) => b,
                Err(_) if !self.placements.read().contains_key(&id.0) => {
                    continue; // deleted before upload; skip for good
                }
                Err(e) => {
                    // Still placed but unreadable right now (e.g. S3
                    // flakiness past the retry budget while both
                    // replicas are down): keep it queued, surface typed.
                    requeue.push(id);
                    failure = Some(e);
                    break;
                }
            };
            let res = retry.run_observed(
                "mirror.backup_drain",
                || match inject::fire(faults, sink.as_ref(), fp::MIRROR_BACKUP_DRAIN)? {
                    Flow::Skip => Ok(false), // stays queued for the next drain
                    Flow::Continue => {
                        self.s3.put_checked(&self.region, &key, block.serialize())?;
                        Ok(true)
                    }
                },
                inject::retry_observer(sink.clone()),
            );
            match res {
                Ok(true) => uploaded += 1,
                Ok(false) => requeue.push(id),
                Err(e) => {
                    requeue.push(id);
                    failure = Some(e);
                    break;
                }
            }
        }
        // Anything unprocessed (skip, failure, or never reached) goes
        // back on the queue — a failed drain never loses durability work.
        requeue.extend(iter);
        if !requeue.is_empty() {
            self.backup_queue.lock().extend(requeue);
        }
        if span.is_recording() {
            span.attr("queued", requested);
            span.attr("uploaded", uploaded);
            span.attr("failed", failure.is_some());
        }
        span.finish();
        self.with_sink(|t| t.counter("mirror.blocks_backed_up").add(uploaded as u64));
        self.publish_backlog();
        match failure {
            Some(e) => Err(e),
            None => Ok(uploaded),
        }
    }

    /// Blocks still awaiting S3 upload (durability-window accounting).
    pub fn backup_backlog(&self) -> usize {
        self.backup_queue.lock().len()
    }

    /// Fail a node: local data evaporates, reads fall through.
    /// Idempotent — killing an already-dead node is a no-op and returns
    /// `false`, so chaos schedules with repeated kills can't double-count
    /// failures or skew re-replication accounting.
    pub fn kill_node(&self, node: NodeId) -> bool {
        let mut alive = self.alive.write();
        if !alive[node.0 as usize] {
            return false;
        }
        alive[node.0 as usize] = false;
        true
    }

    /// Bring a (replaced) node back empty. Idempotent — reviving a node
    /// that is already alive is a no-op and returns `false`. (The old
    /// behavior deleted the live node's hosted blocks, silently
    /// destroying replicas and skewing `fallthrough_stats`.)
    pub fn revive_node(&self, node: NodeId) -> bool {
        {
            let mut alive = self.alive.write();
            if alive[node.0 as usize] {
                return false;
            }
            // Flip aliveness under the lock; the block wipe below races
            // only with reads, which treat missing blocks as fall-through.
            alive[node.0 as usize] = true;
        }
        // The replacement arrives blank: clear blocks the dead incarnation
        // hosted (we can't swap the store Arc in-place without unsafe).
        let placements = self.placements.read();
        for (&idraw, p) in placements.iter() {
            if p.primary == node || p.secondary == Some(node) {
                self.nodes[node.0 as usize].delete(BlockId(idraw));
            }
        }
        drop(placements);
        true
    }

    /// Re-replicate every block that lost a replica on `failed`.
    /// Returns (blocks re-replicated, bytes copied) — the "resource
    /// impact of re-replication" the cohort design bounds.
    pub fn re_replicate(&self, failed: NodeId) -> Result<(usize, u64)> {
        let mut span = match self.trace.read().as_ref() {
            Some(t) => t.span(LVL_PHASE, "mirror.re_replicate"),
            None => redsim_obs::Span::disabled(),
        };
        let affected: Vec<(u64, Placement)> = self
            .placements
            .read()
            .iter()
            .filter(|(_, p)| p.primary == failed || p.secondary == Some(failed))
            .map(|(&id, &p)| (id, p))
            .collect();
        let retry = *self.retry.read();
        let sink = self.sink_opt();
        let faults = self.faults();
        let mut blocks = 0usize;
        let mut bytes = 0u64;
        for (idraw, old) in affected {
            let id = BlockId(idraw);
            // `mirror.re_replicate` + retry wrap the block read; a
            // `drop` action skips this block (it stays under-replicated
            // until the next pass), transient errors are absorbed, and
            // persistent ones surface typed with partial progress kept.
            let fetched = retry.run_observed(
                "mirror.re_replicate",
                || match inject::fire(faults, sink.as_ref(), fp::MIRROR_RE_REPLICATE)? {
                    Flow::Skip => Ok(None),
                    Flow::Continue => self.get_any(id).map(Some),
                },
                inject::retry_observer(sink.clone()),
            )?;
            let Some(block) = fetched else { continue };
            // New primary: the survivor; new secondary: another live
            // cohort member.
            let survivor = if old.primary == failed {
                old.secondary.filter(|&s| self.node_alive(s))
            } else {
                Some(old.primary).filter(|&p| self.node_alive(p))
            };
            let survivor = survivor.ok_or_else(|| {
                RsError::Replication(format!("{id}: no surviving on-cluster replica"))
            })?;
            let new_secondary = self
                .cohorts
                .members(survivor)
                .into_iter()
                .find(|&m| m != survivor && m != failed && self.node_alive(m));
            if let Some(ns) = new_secondary {
                self.nodes[ns.0 as usize].put((*block).clone())?;
                bytes += block.byte_size() as u64;
            }
            self.placements
                .write()
                .insert(idraw, Placement { primary: survivor, secondary: new_secondary });
            blocks += 1;
        }
        if span.is_recording() {
            span.attr("node", failed.0);
            span.attr("blocks", blocks);
            span.attr("bytes", bytes);
        }
        span.finish();
        self.with_sink(|t| t.counter("mirror.blocks_re_replicated").add(blocks as u64));
        Ok((blocks, bytes))
    }

    pub fn placement_of(&self, id: BlockId) -> Option<Placement> {
        self.placements.read().get(&id.0).copied()
    }

    /// Every block id with a live placement. Crash recovery's scrub pass
    /// diffs this against the manifests it rebuilt from the redo log:
    /// anything placed but unreferenced is an orphan from a transaction
    /// that died before its commit mark, and gets deleted.
    pub fn placed_block_ids(&self) -> Vec<BlockId> {
        self.placements.read().keys().map(|&id| BlockId(id)).collect()
    }

    /// (secondary reads, s3 page-fault reads) served so far.
    pub fn fallthrough_stats(&self) -> (u64, u64) {
        (*self.secondary_reads.lock(), *self.s3_reads.lock())
    }

    /// Total bytes held across all node-local stores.
    pub fn local_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.total_bytes()).sum()
    }

    fn delete_everywhere(&self, id: BlockId) {
        for n in &self.nodes {
            n.delete(id);
        }
        self.placements.write().remove(&id.0);
        // S3 copies are governed by snapshot retention, not live deletes.
    }
}

/// Per-node [`BlockStore`] handle over a [`ReplicatedStore`].
#[derive(Clone)]
pub struct NodeStore {
    node: NodeId,
    inner: Arc<ReplicatedStore>,
}

impl NodeStore {
    pub fn node(&self) -> NodeId {
        self.node
    }

    pub fn cluster(&self) -> &Arc<ReplicatedStore> {
        &self.inner
    }
}

impl BlockStore for NodeStore {
    fn put(&self, block: EncodedBlock) -> Result<()> {
        self.inner.put_from(self.node, block)
    }

    fn get(&self, id: BlockId) -> Result<Arc<EncodedBlock>> {
        self.inner.get_any(id)
    }

    fn delete(&self, id: BlockId) {
        self.inner.delete_everywhere(id);
    }

    fn contains(&self, id: BlockId) -> bool {
        self.inner.placements.read().contains_key(&id.0)
    }

    fn block_count(&self) -> usize {
        self.inner.placements.read().len()
    }

    fn total_bytes(&self) -> u64 {
        self.inner.local_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(payload: Vec<u8>) -> EncodedBlock {
        EncodedBlock::new(1, payload)
    }

    fn setup(nodes: u32) -> (Arc<S3Sim>, Arc<ReplicatedStore>) {
        let s3 = Arc::new(S3Sim::new());
        let store = ReplicatedStore::new(nodes, 4, Arc::clone(&s3), "us-east-1", "clu-1").unwrap();
        (s3, store)
    }

    #[test]
    fn dual_write_and_placement() {
        let (_s3, store) = setup(4);
        let ns = store.node_store(NodeId(1));
        let b = block(vec![1, 2, 3]);
        let id = b.id;
        ns.put(b).unwrap();
        let p = store.placement_of(id).unwrap();
        assert_eq!(p.primary, NodeId(1));
        let sec = p.secondary.unwrap();
        assert_ne!(sec, NodeId(1));
        // Both copies exist on-cluster.
        assert!(store.nodes[1].contains(id));
        assert!(store.nodes[sec.0 as usize].contains(id));
    }

    #[test]
    fn read_falls_through_to_secondary_then_s3() {
        let (_s3, store) = setup(4);
        let ns = store.node_store(NodeId(0));
        let b = block(vec![9; 64]);
        let id = b.id;
        ns.put(b).unwrap();
        store.drain_backup_queue().unwrap();

        store.kill_node(NodeId(0));
        assert_eq!(store.get_any(id).unwrap().payload, vec![9; 64]);
        let (sec_reads, _) = store.fallthrough_stats();
        assert_eq!(sec_reads, 1);

        // Kill the secondary too: S3 page fault.
        let p = store.placement_of(id).unwrap();
        store.kill_node(p.secondary.unwrap());
        assert_eq!(store.get_any(id).unwrap().payload, vec![9; 64]);
        let (_, s3_reads) = store.fallthrough_stats();
        assert_eq!(s3_reads, 1);
    }

    #[test]
    fn durability_window_requires_multiple_faults() {
        // Block not yet in S3 + both replicas lost = data loss (reported
        // as an error, never silent corruption).
        let (_s3, store) = setup(4);
        let ns = store.node_store(NodeId(0));
        let b = block(vec![5]);
        let id = b.id;
        ns.put(b).unwrap();
        assert_eq!(store.backup_backlog(), 1);
        let p = store.placement_of(id).unwrap();
        store.kill_node(NodeId(0));
        store.kill_node(p.secondary.unwrap());
        assert!(store.get_any(id).is_err(), "double fault inside the backup window");
    }

    #[test]
    fn incremental_backup_skips_existing() {
        let (s3, store) = setup(2);
        let ns = store.node_store(NodeId(0));
        let b1 = block(vec![1]);
        ns.put(b1).unwrap();
        assert_eq!(store.drain_backup_queue().unwrap(), 1);
        let b2 = block(vec![2]);
        ns.put(b2).unwrap();
        assert_eq!(store.drain_backup_queue().unwrap(), 1, "only the new block uploads");
        assert_eq!(s3.stats("us-east-1").puts, 2);
    }

    #[test]
    fn re_replication_restores_redundancy() {
        let (_s3, store) = setup(4);
        let ns = store.node_store(NodeId(0));
        let mut ids = Vec::new();
        for i in 0..20u8 {
            let b = block(vec![i; 32]);
            ids.push(b.id);
            ns.put(b).unwrap();
        }
        store.kill_node(NodeId(0));
        let (blocks, bytes) = store.re_replicate(NodeId(0)).unwrap();
        assert_eq!(blocks, 20);
        assert!(bytes > 0);
        // Every block now has two live replicas not involving node 0.
        for id in ids {
            let p = store.placement_of(id).unwrap();
            assert_ne!(p.primary, NodeId(0));
            assert_ne!(p.secondary, Some(NodeId(0)));
            assert!(p.secondary.is_some());
            assert!(store.get_any(id).is_ok());
        }
    }

    #[test]
    fn cohort_bounds_secondary_placement() {
        let (_s3, store) = setup(8); // cohorts of 4: {0..3}, {4..7}
        let ns = store.node_store(NodeId(5));
        for i in 0..50u8 {
            ns.put(block(vec![i])).unwrap();
        }
        for p in store.placements.read().values() {
            let s = p.secondary.unwrap();
            assert!((4..8).contains(&s.0), "secondary {s} escaped the cohort");
        }
    }

    #[test]
    fn single_node_cluster_relies_on_s3() {
        let s3 = Arc::new(S3Sim::new());
        let store = ReplicatedStore::new(1, 2, Arc::clone(&s3), "r", "b").unwrap();
        let ns = store.node_store(NodeId(0));
        let b = block(vec![3]);
        let id = b.id;
        ns.put(b).unwrap();
        assert!(store.placement_of(id).unwrap().secondary.is_none());
        store.drain_backup_queue().unwrap();
        store.kill_node(NodeId(0));
        assert!(store.get_any(id).is_ok(), "page-faulted from S3");
    }

    #[test]
    fn kill_and_revive_are_idempotent() {
        use redsim_testkit::rng::{Pcg32, Rng};
        let (_s3, store) = setup(4);
        let ns = store.node_store(NodeId(0));
        let b = block(vec![8; 16]);
        let id = b.id;
        ns.put(b).unwrap();
        let p = store.placement_of(id).unwrap();
        let sec = p.secondary.unwrap();

        // Regression: revive-of-live used to wipe the live node's hosted
        // blocks, silently destroying replicas and skewing fallthrough
        // stats. It must be a no-op now.
        assert!(!store.revive_node(NodeId(0)));
        assert!(store.nodes[0].contains(id), "revive of a live node must not destroy replicas");
        store.get_any(id).unwrap();
        assert_eq!(store.fallthrough_stats(), (0, 0), "read served from the primary");

        // Double-kill: the second call is a no-op.
        assert!(store.kill_node(NodeId(0)));
        assert!(!store.kill_node(NodeId(0)));
        let (blocks, _) = store.re_replicate(NodeId(0)).unwrap();
        assert_eq!(blocks, 1, "re-replication counts each block once despite double-kill");

        // Revive exactly once; a second revive is a no-op and must not
        // touch the re-replicated copies.
        assert!(store.revive_node(NodeId(0)));
        assert!(!store.revive_node(NodeId(0)));
        assert!(store.nodes[sec.0 as usize].contains(id));
        assert_eq!(store.get_any(id).unwrap().payload, vec![8; 16]);

        // Randomized kill/revive storm: accounting never drifts.
        let mut rng = Pcg32::seed_from_u64(11);
        let mut alive = [true; 4];
        for _ in 0..200 {
            let n = rng.gen_range(0u32..4);
            if rng.gen_bool(0.5) {
                assert_eq!(store.kill_node(NodeId(n)), alive[n as usize]);
                alive[n as usize] = false;
            } else {
                assert_eq!(store.revive_node(NodeId(n)), !alive[n as usize]);
                alive[n as usize] = true;
            }
        }
    }

    #[test]
    fn get_any_retries_transient_s3_faults() {
        use redsim_faultkit::{fp, ErrClass, FaultSpec};
        let (s3, store) = setup(2);
        let ns = store.node_store(NodeId(0));
        let b = block(vec![4; 32]);
        let id = b.id;
        ns.put(b).unwrap();
        store.drain_backup_queue().unwrap();
        store.kill_node(NodeId(0));
        store.kill_node(store.placement_of(id).unwrap().secondary.unwrap());
        // First two S3 GETs throttle, then S3 recovers: the retry loop
        // must absorb the transient and serve the read.
        s3.faults().configure(fp::S3_GET, FaultSpec::err(ErrClass::Throttle).times(2));
        assert_eq!(store.get_any(id).unwrap().payload, vec![4; 32]);
        assert_eq!(s3.faults().injected_total(), 2);
    }

    #[test]
    fn retry_exhaustion_surfaces_throttle_not_a_hang() {
        use redsim_faultkit::{fp, ErrClass, FaultSpec};
        use std::time::{Duration, Instant};
        let (s3, store) = setup(2);
        let ns = store.node_store(NodeId(0));
        let b = block(vec![4; 32]);
        let id = b.id;
        ns.put(b).unwrap();
        store.drain_backup_queue().unwrap();
        store.kill_node(NodeId(0));
        store.kill_node(store.placement_of(id).unwrap().secondary.unwrap());
        store.set_retry_policy(
            redsim_common::RetryPolicy::default()
                .with_max_attempts(4)
                .with_delays(Duration::from_micros(100), Duration::from_millis(1))
                .with_deadline(Duration::from_millis(200)),
        );
        // Permanent throttling: typed THROTTLE after the budget, fast.
        s3.faults().configure(fp::S3_GET, FaultSpec::err(ErrClass::Throttle));
        let t0 = Instant::now();
        let err = store.get_any(id).unwrap_err();
        assert_eq!(err.code(), "THROTTLE", "{err}");
        assert!(err.to_string().contains("exhausted"), "{err}");
        assert!(t0.elapsed() < Duration::from_secs(2), "no hang: {:?}", t0.elapsed());
    }

    #[test]
    fn drain_requeues_on_failure_and_recovers() {
        use redsim_faultkit::{fp, ErrClass, FaultSpec};
        use std::time::Duration;
        let (s3, store) = setup(2);
        store.set_retry_policy(
            redsim_common::RetryPolicy::default()
                .with_max_attempts(2)
                .with_delays(Duration::from_micros(100), Duration::from_millis(1)),
        );
        let ns = store.node_store(NodeId(0));
        for i in 0..6u8 {
            ns.put(block(vec![i; 8])).unwrap();
        }
        assert_eq!(store.backup_backlog(), 6);
        // Persistent put failures: the drain surfaces a typed error and
        // keeps everything queued (no lost durability work).
        s3.faults().configure(fp::S3_PUT, FaultSpec::err(ErrClass::Throttle));
        let err = store.drain_backup_queue().unwrap_err();
        assert_eq!(err.code(), "THROTTLE");
        assert_eq!(store.backup_backlog(), 6, "failed drain must requeue");
        // S3 recovers: the next drain finishes the job.
        s3.faults().clear(fp::S3_PUT);
        assert_eq!(store.drain_backup_queue().unwrap(), 6);
        assert_eq!(store.backup_backlog(), 0);
    }

    #[test]
    fn delete_removes_all_replicas() {
        let (_s3, store) = setup(4);
        let ns = store.node_store(NodeId(2));
        let b = block(vec![1]);
        let id = b.id;
        ns.put(b).unwrap();
        ns.delete(id);
        assert!(!ns.contains(id));
        for n in &store.nodes {
            assert!(!n.contains(id));
        }
    }
}
