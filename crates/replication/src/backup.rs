//! Snapshots: continuous, incremental, automatic.
//!
//! §3.2: "the time required to backup an entire cluster is proportional
//! to the data changed on a single node. System backups are taken
//! automatically and are automatically aged out. User backups leverage
//! the blocks already backed up in system backups and are kept until
//! explicitly deleted." Second-region copies are a checkbox (here: a
//! constructor argument).

use crate::mirror::ReplicatedStore;
use crate::s3sim::S3Sim;
use redsim_testkit::sync::Mutex;
use redsim_common::codec::{Reader, Writer};
use redsim_common::{Result, RetryPolicy, RsError};
use redsim_storage::BlockId;
use std::sync::Arc;

/// System snapshots age out; user snapshots persist until deleted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotKind {
    System,
    User,
}

/// A completed snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotInfo {
    pub id: String,
    pub kind: SnapshotKind,
    /// Logical sequence number (acts as the snapshot clock).
    pub seq: u64,
    pub blocks: Vec<BlockId>,
    /// Blocks newly uploaded by this snapshot (incrementality metric).
    pub new_blocks_uploaded: usize,
    /// Catalog/metadata payload captured with the snapshot.
    pub metadata_len: usize,
}

/// Coordinates snapshots over a [`ReplicatedStore`] and the S3 sim.
pub struct BackupManager {
    s3: Arc<S3Sim>,
    region: String,
    /// Optional disaster-recovery region (the §3.2 checkbox).
    dr_region: Option<String>,
    bucket: String,
    seq: Mutex<u64>,
    snapshots: Mutex<Vec<SnapshotInfo>>,
    /// Keep at most this many system snapshots (aging).
    system_retention: usize,
    /// Retry policy for S3 uploads / DR copies during snapshots.
    retry: RetryPolicy,
}

impl BackupManager {
    pub fn new(
        s3: Arc<S3Sim>,
        region: impl Into<String>,
        bucket: impl Into<String>,
        dr_region: Option<String>,
        system_retention: usize,
    ) -> Self {
        BackupManager {
            s3,
            region: region.into(),
            dr_region,
            bucket: bucket.into(),
            seq: Mutex::new(0),
            snapshots: Mutex::new(Vec::new()),
            system_retention: system_retention.max(1),
            retry: RetryPolicy::default(),
        }
    }

    /// Replace the snapshot retry policy (builder).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    fn manifest_key(&self, id: &str) -> String {
        format!("{}/snapshots/{id}", self.bucket)
    }

    fn block_key(&self, id: BlockId) -> String {
        format!("{}/blocks/{:016x}", self.bucket, id.0)
    }

    /// Take a snapshot of the given block set + metadata. Blocks already
    /// in S3 are not re-uploaded.
    pub fn take_snapshot(
        &self,
        id: &str,
        kind: SnapshotKind,
        store: &ReplicatedStore,
        blocks: Vec<BlockId>,
        metadata: &[u8],
    ) -> Result<SnapshotInfo> {
        // Flush the continuous-backup queue first, then ensure coverage.
        store.drain_backup_queue()?;
        let mut uploaded = 0usize;
        for &b in &blocks {
            let key = self.block_key(b);
            if !self.s3.exists(&self.region, &key) {
                let blk = store.get_any(b)?;
                self.retry
                    .run("s3.put", || self.s3.put_checked(&self.region, &key, blk.serialize()))?;
                uploaded += 1;
            }
        }
        // Manifest: seq, kind, metadata, block list.
        let mut seq = self.seq.lock();
        *seq += 1;
        let seq_now = *seq;
        drop(seq);
        let mut w = Writer::new();
        w.put_u32(0x534E_4150); // "SNAP"
        w.put_u64(seq_now);
        w.put_u8(match kind {
            SnapshotKind::System => 0,
            SnapshotKind::User => 1,
        });
        w.put_bytes(metadata);
        w.put_u32(blocks.len() as u32);
        for b in &blocks {
            w.put_u64(b.0);
        }
        let manifest = w.into_bytes();
        self.retry.run("s3.put", || {
            self.s3.put_checked(&self.region, &self.manifest_key(id), manifest.clone())
        })?;
        if let Some(dr) = &self.dr_region {
            // DR copies: manifest + any block not yet in the second region.
            self.retry
                .run("s3.put", || self.s3.put_checked(dr, &self.manifest_key(id), manifest.clone()))?;
            for &b in &blocks {
                let key = self.block_key(b);
                if !self.s3.exists(dr, &key) {
                    self.retry
                        .run("s3.copy_object", || self.s3.copy_object(&self.region, dr, &key))?;
                }
            }
        }
        let info = SnapshotInfo {
            id: id.to_string(),
            kind,
            seq: seq_now,
            blocks,
            new_blocks_uploaded: uploaded,
            metadata_len: metadata.len(),
        };
        let mut snaps = self.snapshots.lock();
        snaps.push(info.clone());
        // Age out old system snapshots (manifests only; their blocks stay
        // while referenced by newer snapshots — garbage collection of
        // unreferenced blocks happens in `gc_blocks`).
        let system_ids: Vec<String> = snaps
            .iter()
            .filter(|s| s.kind == SnapshotKind::System)
            .map(|s| s.id.clone())
            .collect();
        if system_ids.len() > self.system_retention {
            let drop_n = system_ids.len() - self.system_retention;
            for old in &system_ids[..drop_n] {
                self.s3.delete(&self.region, &self.manifest_key(old));
                if let Some(dr) = &self.dr_region {
                    self.s3.delete(dr, &self.manifest_key(old));
                }
                snaps.retain(|s| &s.id != old);
            }
        }
        Ok(info)
    }

    /// Delete a user snapshot.
    pub fn delete_snapshot(&self, id: &str) -> Result<()> {
        let mut snaps = self.snapshots.lock();
        let before = snaps.len();
        snaps.retain(|s| s.id != id);
        if snaps.len() == before {
            return Err(RsError::NotFound(format!("snapshot {id:?}")));
        }
        self.s3.delete(&self.region, &self.manifest_key(id));
        if let Some(dr) = &self.dr_region {
            self.s3.delete(dr, &self.manifest_key(id));
        }
        Ok(())
    }

    /// Garbage-collect S3 blocks referenced by no retained snapshot.
    pub fn gc_blocks(&self) -> usize {
        let snaps = self.snapshots.lock();
        let live: std::collections::HashSet<u64> =
            snaps.iter().flat_map(|s| s.blocks.iter().map(|b| b.0)).collect();
        drop(snaps);
        let prefix = format!("{}/blocks/", self.bucket);
        let mut removed = 0;
        for key in self.s3.list(&self.region, &prefix) {
            let hex = &key[prefix.len()..];
            if let Ok(id) = u64::from_str_radix(hex, 16) {
                if !live.contains(&id) {
                    self.s3.delete(&self.region, &key);
                    removed += 1;
                }
            }
        }
        removed
    }

    pub fn snapshots(&self) -> Vec<SnapshotInfo> {
        self.snapshots.lock().clone()
    }

    /// Load a snapshot manifest (from the given region — DR drills read
    /// the second region).
    pub fn load_manifest(
        &self,
        region: &str,
        id: &str,
    ) -> Result<(SnapshotKind, Vec<u8>, Vec<BlockId>)> {
        let bytes = self.s3.get(region, &self.manifest_key(id))?;
        let mut r = Reader::new(&bytes);
        if r.get_u32()? != 0x534E_4150 {
            return Err(RsError::Codec("bad snapshot magic".into()));
        }
        let _seq = r.get_u64()?;
        let kind = match r.get_u8()? {
            0 => SnapshotKind::System,
            1 => SnapshotKind::User,
            t => return Err(RsError::Codec(format!("bad snapshot kind {t}"))),
        };
        let metadata = r.get_bytes()?.to_vec();
        let n = r.get_u32()? as usize;
        let mut blocks = Vec::with_capacity(n);
        for _ in 0..n {
            blocks.push(BlockId(r.get_u64()?));
        }
        Ok((kind, metadata, blocks))
    }

    pub fn region(&self) -> &str {
        &self.region
    }

    pub fn dr_region(&self) -> Option<&str> {
        self.dr_region.as_deref()
    }

    pub fn bucket(&self) -> &str {
        &self.bucket
    }

    pub fn s3(&self) -> &Arc<S3Sim> {
        &self.s3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_distribution::NodeId;
    use redsim_storage::{BlockStore, EncodedBlock};

    fn setup() -> (Arc<S3Sim>, Arc<ReplicatedStore>, BackupManager) {
        let s3 = Arc::new(S3Sim::new());
        let store = ReplicatedStore::new(2, 2, Arc::clone(&s3), "us-east-1", "clu").unwrap();
        let mgr = BackupManager::new(
            Arc::clone(&s3),
            "us-east-1",
            "clu",
            Some("eu-west-1".into()),
            2,
        );
        (s3, store, mgr)
    }

    fn put_blocks(store: &Arc<ReplicatedStore>, n: u8) -> Vec<BlockId> {
        let ns = store.node_store(NodeId(0));
        (0..n)
            .map(|i| {
                let b = EncodedBlock::new(1, vec![i; 16]);
                let id = b.id;
                ns.put(b).unwrap();
                id
            })
            .collect()
    }

    #[test]
    fn incremental_snapshots() {
        let (_s3, store, mgr) = setup();
        let ids = put_blocks(&store, 10);
        let s1 = mgr
            .take_snapshot("snap-1", SnapshotKind::System, &store, ids.clone(), b"cat-v1")
            .unwrap();
        // drain_backup_queue already uploaded them; snapshot uploads 0 new.
        assert_eq!(s1.new_blocks_uploaded, 0);
        let more = put_blocks(&store, 3);
        // Cut the continuous queue out of the picture to prove the
        // snapshot path itself uploads missing blocks.
        let all: Vec<BlockId> = ids.iter().chain(&more).copied().collect();
        let s2 = mgr
            .take_snapshot("snap-2", SnapshotKind::User, &store, all, b"cat-v2")
            .unwrap();
        assert!(s2.new_blocks_uploaded <= 3);
        assert_eq!(s2.seq, 2);
    }

    #[test]
    fn system_snapshots_age_out_user_persist() {
        let (_s3, store, mgr) = setup();
        let ids = put_blocks(&store, 2);
        for i in 0..4 {
            mgr.take_snapshot(
                &format!("sys-{i}"),
                SnapshotKind::System,
                &store,
                ids.clone(),
                b"",
            )
            .unwrap();
        }
        mgr.take_snapshot("user-1", SnapshotKind::User, &store, ids.clone(), b"").unwrap();
        let snaps = mgr.snapshots();
        let sys: Vec<_> = snaps.iter().filter(|s| s.kind == SnapshotKind::System).collect();
        assert_eq!(sys.len(), 2, "retention=2");
        assert!(snaps.iter().any(|s| s.id == "user-1"));
        assert!(mgr.load_manifest("us-east-1", "sys-0").is_err(), "aged out");
        assert!(mgr.load_manifest("us-east-1", "user-1").is_ok());
    }

    #[test]
    fn dr_region_receives_copies() {
        let (s3, store, mgr) = setup();
        let ids = put_blocks(&store, 5);
        mgr.take_snapshot("snap", SnapshotKind::User, &store, ids, b"meta").unwrap();
        let (kind, meta, blocks) = mgr.load_manifest("eu-west-1", "snap").unwrap();
        assert_eq!(kind, SnapshotKind::User);
        assert_eq!(meta, b"meta");
        assert_eq!(blocks.len(), 5);
        for b in blocks {
            assert!(s3.exists("eu-west-1", &format!("clu/blocks/{:016x}", b.0)));
        }
    }

    #[test]
    fn gc_removes_unreferenced_blocks() {
        let (s3, store, mgr) = setup();
        let ids = put_blocks(&store, 4);
        mgr.take_snapshot("s1", SnapshotKind::User, &store, ids[..2].to_vec(), b"").unwrap();
        // Blocks 2,3 reached S3 via the continuous queue but belong to no
        // snapshot.
        store.drain_backup_queue().unwrap();
        let removed = mgr.gc_blocks();
        assert_eq!(removed, 2);
        assert!(s3.exists("us-east-1", &format!("clu/blocks/{:016x}", ids[0].0)));
        assert!(!s3.exists("us-east-1", &format!("clu/blocks/{:016x}", ids[3].0)));
    }

    #[test]
    fn delete_snapshot() {
        let (_s3, store, mgr) = setup();
        let ids = put_blocks(&store, 1);
        mgr.take_snapshot("u", SnapshotKind::User, &store, ids, b"").unwrap();
        mgr.delete_snapshot("u").unwrap();
        assert!(mgr.delete_snapshot("u").is_err());
        assert!(mgr.load_manifest("us-east-1", "u").is_err());
    }
}
