//! Glue between `faultkit` outcomes, `RsError` classes, and `obs`.
//!
//! Failpoints are *named seams*; this module decides what firing one
//! means in workspace terms: which `RsError` variant each
//! [`ErrClass`] maps to (and therefore whether a retry loop may absorb
//! it), how drops are represented, and which counters/spans get bumped.
//! Keeping the mapping in one place means `stl_fault_event`, the
//! `fault.injected` counter and the retry classification can never
//! disagree about what an injected fault *is*.

use redsim_common::{Result, RetryEvent, RsError};
use redsim_faultkit::{ErrClass, FaultRegistry, Outcome};
use redsim_obs::{AttrValue, TraceSink, LVL_DETAIL};
use std::sync::Arc;

/// What a call site should do after consulting a failpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[must_use = "a Skip flow must actually skip the operation"]
pub enum Flow {
    /// Run the operation normally.
    Continue,
    /// Silently skip the operation (drop-action semantics; only valid
    /// at sites where skipping is meaningful, e.g. a lost write).
    Skip,
}

/// Map an injected error class to the workspace error type. The variant
/// choice *is* the retry classification: `Throttle`/`Fault`/`Repl` are
/// transient ([`RsError::is_retryable`] == true), `NotFound` is
/// permanent and fails fast without burning the attempt budget.
pub fn fault_error(fp: &str, class: ErrClass) -> RsError {
    let msg = format!("injected {} at failpoint {fp}", class.as_str());
    match class {
        ErrClass::Throttle => RsError::Throttled(msg),
        ErrClass::Fault => RsError::FaultInjected(msg),
        ErrClass::NotFound => RsError::NotFound(msg),
        ErrClass::Repl => RsError::Replication(msg),
    }
}

/// Evaluate failpoint `fp`, bumping the `fault.injected` counter on
/// `sink` when it fires. Disarmed registries cost one relaxed load.
#[inline]
pub fn fire(reg: &FaultRegistry, sink: Option<&Arc<TraceSink>>, fp: &'static str) -> Result<Flow> {
    match reg.fire(fp) {
        Outcome::Proceed => Ok(Flow::Continue),
        Outcome::Err(class) => {
            if let Some(s) = sink {
                s.counter("fault.injected").incr();
            }
            Err(fault_error(fp, class))
        }
        Outcome::Drop => {
            if let Some(s) = sink {
                s.counter("fault.injected").incr();
            }
            Ok(Flow::Skip)
        }
    }
}

/// Like [`fire`], for read-like sites where skipping is meaningless: a
/// `drop` action surfaces as a transient replication error instead
/// (a dropped read *is* a lost response).
#[inline]
pub fn fire_no_skip(
    reg: &FaultRegistry,
    sink: Option<&Arc<TraceSink>>,
    fp: &'static str,
) -> Result<()> {
    match fire(reg, sink, fp)? {
        Flow::Continue => Ok(()),
        Flow::Skip => Err(RsError::Replication(format!("response dropped at failpoint {fp}"))),
    }
}

/// A [`RetryPolicy::run_observed`](redsim_common::RetryPolicy::run_observed)
/// hook that publishes the standard retry telemetry to `sink`:
/// `retry.attempts` / `retry.exhausted` counters, and a retroactive
/// `retry.wait` span (LVL_DETAIL) per backoff sleep.
pub fn retry_observer(sink: Option<Arc<TraceSink>>) -> impl FnMut(&RetryEvent) {
    move |ev| {
        let Some(s) = &sink else { return };
        match ev {
            RetryEvent::Backoff { op, attempt, wait, .. } => {
                s.counter("retry.attempts").incr();
                s.span_completed(
                    LVL_DETAIL,
                    "retry.wait",
                    wait.as_nanos() as u64,
                    &[
                        ("op", AttrValue::Str((*op).to_string())),
                        ("attempt", AttrValue::U64(*attempt as u64)),
                    ],
                );
            }
            RetryEvent::GaveUp { retryable, .. } => {
                if *retryable {
                    s.counter("retry.exhausted").incr();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_common::RetryPolicy;
    use redsim_faultkit::{fp, FaultSpec};
    use std::time::Duration;

    #[test]
    fn classes_map_to_typed_errors_with_correct_retryability() {
        let cases = [
            (ErrClass::Throttle, "THROTTLE", true),
            (ErrClass::Fault, "FAULT", true),
            (ErrClass::Repl, "REPL", true),
            (ErrClass::NotFound, "NOT_FOUND", false),
        ];
        for (class, code, retryable) in cases {
            let e = fault_error("s3.get", class);
            assert_eq!(e.code(), code);
            assert_eq!(e.is_retryable(), retryable, "{e}");
            assert!(e.to_string().contains("s3.get"), "{e}");
        }
    }

    #[test]
    fn fire_bumps_fault_injected_counter() {
        let sink = Arc::new(TraceSink::with_level(redsim_obs::LVL_DETAIL));
        let reg = FaultRegistry::new(1);
        reg.configure(fp::S3_GET, FaultSpec::err(ErrClass::Throttle).times(2));
        reg.configure(fp::S3_PUT, FaultSpec::drop_op().once());
        assert!(fire(&reg, Some(&sink), fp::S3_GET).is_err());
        assert_eq!(fire(&reg, Some(&sink), fp::S3_PUT).unwrap(), Flow::Skip);
        assert_eq!(fire(&reg, Some(&sink), fp::S3_PUT).unwrap(), Flow::Continue);
        assert_eq!(sink.counter_value("fault.injected"), 2);
        // Read-like sites turn drops into transient errors.
        reg.configure(fp::RESTORE_PAGE_FAULT, FaultSpec::drop_op().once());
        let err = fire_no_skip(&reg, Some(&sink), fp::RESTORE_PAGE_FAULT).unwrap_err();
        assert_eq!(err.code(), "REPL");
        assert!(err.is_retryable());
    }

    #[test]
    fn retry_observer_publishes_counters_and_wait_spans() {
        let sink = Arc::new(TraceSink::with_level(redsim_obs::LVL_DETAIL));
        let policy = RetryPolicy::default()
            .with_max_attempts(3)
            .with_delays(Duration::from_micros(50), Duration::from_micros(200));
        let out: Result<()> = policy.run_observed(
            "s3.get",
            || Err(RsError::Throttled("injected".into())),
            retry_observer(Some(Arc::clone(&sink))),
        );
        assert_eq!(out.unwrap_err().code(), "THROTTLE");
        assert_eq!(sink.counter_value("retry.attempts"), 2);
        assert_eq!(sink.counter_value("retry.exhausted"), 1);
        let waits = sink.records_named("retry.wait");
        assert_eq!(waits.len(), 2);
        for w in &waits {
            assert_eq!(w.parent, 0, "retry.wait records are standalone roots");
            assert_eq!(w.trace, w.id);
            assert!(w.attr_str("op").unwrap() == "s3.get");
        }
        // Success path publishes nothing extra.
        let before = sink.counter_value("retry.attempts");
        let ok: Result<u8> =
            policy.run_observed("s3.get", || Ok(1), retry_observer(Some(Arc::clone(&sink))));
        assert_eq!(ok.unwrap(), 1);
        assert_eq!(sink.counter_value("retry.attempts"), before);
    }
}
