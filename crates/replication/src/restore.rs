//! Streaming restore with block page-faulting.
//!
//! §2.2: "we are able to include Amazon S3 backups as part of our data
//! availability and durability design, by doing block-level backups and
//! 'page-faulting' in blocks when unavailable on local storage. This
//! also allowed us to implement a streaming restore capability, allowing
//! the database to be opened for SQL operations after metadata and
//! catalog restoration, but while blocks were still being brought down
//! in background."

use crate::inject;
use crate::s3sim::S3Sim;
use redsim_faultkit::fp;
use redsim_obs::{AttrValue, TraceSink, LVL_PHASE};
use redsim_testkit::sync::Mutex;
use redsim_common::{Result, RetryPolicy, RsError};
use redsim_storage::{BlockId, BlockStore, EncodedBlock, MemBlockStore};
use std::collections::VecDeque;
use std::sync::Arc;

/// A [`BlockStore`] restored from a snapshot: reads are served locally
/// when hydrated, otherwise page-faulted from S3 on demand while
/// [`StreamingRestoreStore::hydrate_step`] fills in the rest.
pub struct StreamingRestoreStore {
    local: MemBlockStore,
    s3: Arc<S3Sim>,
    region: String,
    bucket: String,
    /// Blocks awaiting background hydration.
    pending: Mutex<VecDeque<BlockId>>,
    total_blocks: usize,
    page_faults: Mutex<u64>,
    /// Optional telemetry sink (the owning cluster's).
    trace: Option<Arc<TraceSink>>,
    /// Retry policy for page-faulting fetches from S3.
    retry: RetryPolicy,
}

impl StreamingRestoreStore {
    /// Open a restore over a snapshot's block list. Returns immediately —
    /// that's the point: time-to-first-query is metadata-only.
    pub fn open(
        s3: Arc<S3Sim>,
        region: impl Into<String>,
        bucket: impl Into<String>,
        blocks: Vec<BlockId>,
    ) -> Self {
        let total_blocks = blocks.len();
        StreamingRestoreStore {
            local: MemBlockStore::new(),
            s3,
            region: region.into(),
            bucket: bucket.into(),
            pending: Mutex::new(blocks.into()),
            total_blocks,
            page_faults: Mutex::new(0),
            trace: None,
            retry: RetryPolicy::default(),
        }
    }

    /// Attach a telemetry sink: page faults, hydration steps and S3
    /// round-trips are recorded as `restore.*` spans/counters on it.
    pub fn with_trace(mut self, sink: Arc<TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Replace the fetch retry policy (builder).
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    fn key(&self, id: BlockId) -> String {
        format!("{}/blocks/{:016x}", self.bucket, id.0)
    }

    fn fetch(&self, id: BlockId) -> Result<Arc<EncodedBlock>> {
        if let Some(t) = &self.trace {
            t.counter("restore.s3_gets").incr();
        }
        // The `restore.page_fault` failpoint + the retry loop sit around
        // the S3 round-trip: transient flakiness during a streaming
        // restore is absorbed, a genuinely missing object keeps the
        // legacy "missing from snapshot bucket" replication error, and
        // an exhausted budget surfaces its own class (e.g. THROTTLE).
        let key = self.key(id);
        let faults = self.s3.faults();
        let bytes = self
            .retry
            .run_observed(
                "restore.page_fault",
                || {
                    inject::fire_no_skip(faults, self.trace.as_ref(), fp::RESTORE_PAGE_FAULT)?;
                    self.s3.get(&self.region, &key)
                },
                inject::retry_observer(self.trace.clone()),
            )
            .map_err(|e| match e {
                RsError::NotFound(_) => {
                    RsError::Replication(format!("{id} missing from snapshot bucket"))
                }
                other => other,
            })?;
        let block = EncodedBlock::deserialize(&bytes)?;
        self.local.put(block)?;
        self.local.get(id)
    }

    /// Hydrate up to `k` pending blocks. Returns how many were fetched;
    /// 0 means restore is complete.
    pub fn hydrate_step(&self, k: usize) -> Result<usize> {
        let mut span = match &self.trace {
            Some(t) => t.span(LVL_PHASE, "restore.hydrate_step"),
            None => redsim_obs::Span::disabled(),
        };
        let mut fetched = 0;
        for _ in 0..k {
            let next = {
                let mut q = self.pending.lock();
                loop {
                    match q.pop_front() {
                        Some(id) if self.local.contains(id) => continue, // already faulted in
                        other => break other,
                    }
                }
            };
            match next {
                Some(id) => {
                    self.fetch(id)?;
                    fetched += 1;
                }
                None => break,
            }
        }
        if span.is_recording() {
            span.attr("requested", k);
            span.attr("fetched", fetched);
            span.attr("remaining", self.pending.lock().len());
        }
        if fetched > 0 {
            if let Some(t) = &self.trace {
                t.counter("restore.blocks_hydrated").add(fetched as u64);
            }
        }
        Ok(fetched)
    }

    /// Run hydration to completion; returns blocks fetched.
    pub fn hydrate_all(&self) -> Result<usize> {
        let mut total = 0;
        loop {
            let n = self.hydrate_step(64)?;
            if n == 0 {
                return Ok(total);
            }
            total += n;
        }
    }

    /// Fraction of the snapshot locally present.
    pub fn hydration_progress(&self) -> f64 {
        if self.total_blocks == 0 {
            return 1.0;
        }
        self.local.block_count() as f64 / self.total_blocks as f64
    }

    pub fn is_fully_hydrated(&self) -> bool {
        self.local.block_count() >= self.total_blocks
    }

    /// Demand reads served from S3 (vs local).
    pub fn page_fault_count(&self) -> u64 {
        *self.page_faults.lock()
    }
}

impl BlockStore for StreamingRestoreStore {
    fn put(&self, block: EncodedBlock) -> Result<()> {
        // New writes after restore land locally (a restored cluster is
        // writable immediately).
        self.local.put(block)
    }

    fn get(&self, id: BlockId) -> Result<Arc<EncodedBlock>> {
        if let Ok(b) = self.local.get(id) {
            return Ok(b);
        }
        *self.page_faults.lock() += 1;
        if let Some(t) = &self.trace {
            t.counter("restore.page_faults").incr();
            let mut span = t.span(LVL_PHASE, "restore.page_fault");
            if span.is_recording() {
                span.attr("block", AttrValue::Str(format!("{id}")));
            }
            let out = self.fetch(id);
            span.finish();
            return out;
        }
        self.fetch(id)
    }

    fn delete(&self, id: BlockId) {
        self.local.delete(id);
        self.pending.lock().retain(|&b| b != id);
    }

    fn contains(&self, id: BlockId) -> bool {
        self.local.contains(id)
    }

    fn block_count(&self) -> usize {
        self.local.block_count()
    }

    fn total_bytes(&self) -> u64 {
        self.local.total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upload(s3: &S3Sim, n: u8) -> Vec<BlockId> {
        (0..n)
            .map(|i| {
                let b = EncodedBlock::new(1, vec![i; 8]);
                s3.put("r", &format!("b/blocks/{:016x}", b.id.0), b.serialize());
                b.id
            })
            .collect()
    }

    #[test]
    fn queries_work_before_hydration_completes() {
        let s3 = Arc::new(S3Sim::new());
        let ids = upload(&s3, 10);
        let store = StreamingRestoreStore::open(Arc::clone(&s3), "r", "b", ids.clone());
        assert_eq!(store.hydration_progress(), 0.0);
        // Demand read page-faults.
        let b = store.get(ids[7]).unwrap();
        assert_eq!(b.payload, vec![7; 8]);
        assert_eq!(store.page_fault_count(), 1);
        // Second read is local.
        store.get(ids[7]).unwrap();
        assert_eq!(store.page_fault_count(), 1);
    }

    #[test]
    fn background_hydration_completes() {
        let s3 = Arc::new(S3Sim::new());
        let ids = upload(&s3, 20);
        let store = StreamingRestoreStore::open(Arc::clone(&s3), "r", "b", ids.clone());
        let mut steps = 0;
        while !store.is_fully_hydrated() {
            store.hydrate_step(3).unwrap();
            steps += 1;
            assert!(steps < 100);
        }
        assert_eq!(store.block_count(), 20);
        assert!((store.hydration_progress() - 1.0).abs() < 1e-9);
        // All reads now local — no new faults.
        let before = store.page_fault_count();
        for id in ids {
            store.get(id).unwrap();
        }
        assert_eq!(store.page_fault_count(), before);
    }

    #[test]
    fn faulted_blocks_skipped_by_hydration() {
        let s3 = Arc::new(S3Sim::new());
        let ids = upload(&s3, 5);
        let store = StreamingRestoreStore::open(Arc::clone(&s3), "r", "b", ids.clone());
        for id in &ids {
            store.get(*id).unwrap(); // fault everything in
        }
        assert_eq!(store.hydrate_all().unwrap(), 0, "nothing left to hydrate");
    }

    #[test]
    fn missing_s3_object_is_an_error() {
        let s3 = Arc::new(S3Sim::new());
        let ids = upload(&s3, 2);
        s3.inject_object_loss("r", &format!("b/blocks/{:016x}", ids[0].0));
        let store = StreamingRestoreStore::open(Arc::clone(&s3), "r", "b", ids.clone());
        assert!(store.get(ids[0]).is_err());
        assert!(store.get(ids[1]).is_ok());
    }

    #[test]
    fn trace_records_faults_and_hydration() {
        let sink = Arc::new(TraceSink::with_level(redsim_obs::LVL_DETAIL));
        let s3 = Arc::new(S3Sim::new());
        let ids = upload(&s3, 6);
        let store = StreamingRestoreStore::open(Arc::clone(&s3), "r", "b", ids.clone())
            .with_trace(Arc::clone(&sink));
        store.get(ids[0]).unwrap(); // demand fault
        store.hydrate_all().unwrap();
        assert_eq!(sink.counter_value("restore.page_faults"), 1);
        assert_eq!(sink.counter_value("restore.blocks_hydrated"), 5);
        assert_eq!(sink.counter_value("restore.s3_gets"), 6);
        let faults = sink.records_named("restore.page_fault");
        assert_eq!(faults.len(), 1);
        assert!(!sink.records_named("restore.hydrate_step").is_empty());
        assert_eq!(sink.open_spans(), 0, "all spans closed");
    }

    #[test]
    fn streaming_restore_rides_through_s3_flakiness() {
        use redsim_faultkit::{fp, ErrClass, FaultSpec};
        let s3 = Arc::new(S3Sim::new());
        let ids = upload(&s3, 12);
        // 30% of S3 GETs throttle (seeded, replayable): hydration and
        // demand reads must complete via retries.
        s3.faults().reseed(7);
        s3.faults().configure(fp::S3_GET, FaultSpec::err(ErrClass::Throttle).prob(0.3));
        let store = StreamingRestoreStore::open(Arc::clone(&s3), "r", "b", ids.clone());
        assert_eq!(store.hydrate_all().unwrap(), 12);
        for id in ids {
            assert_eq!(store.get(id).unwrap().id, id);
        }
        assert!(s3.faults().injected_total() > 0, "the schedule must actually inject");
    }

    #[test]
    fn page_fault_failpoint_injects_typed_and_recovers() {
        use redsim_faultkit::{fp, ErrClass, FaultSpec};
        use redsim_common::RetryPolicy;
        use std::time::Duration;
        let s3 = Arc::new(S3Sim::new());
        let ids = upload(&s3, 2);
        let store = StreamingRestoreStore::open(Arc::clone(&s3), "r", "b", ids.clone())
            .with_retry(
                RetryPolicy::default()
                    .with_max_attempts(3)
                    .with_delays(Duration::from_micros(100), Duration::from_millis(1)),
            );
        // Two transient faults then recovery: absorbed.
        s3.faults().configure(fp::RESTORE_PAGE_FAULT, FaultSpec::err(ErrClass::Fault).times(2));
        assert!(store.get(ids[0]).is_ok());
        // Persistent fault: typed FAULT after the budget, never a hang.
        s3.faults().configure(fp::RESTORE_PAGE_FAULT, FaultSpec::err(ErrClass::Fault));
        let err = store.get(ids[1]).unwrap_err();
        assert_eq!(err.code(), "FAULT", "{err}");
        s3.faults().clear(fp::RESTORE_PAGE_FAULT);
        assert!(store.get(ids[1]).is_ok(), "recovers once the failpoint clears");
    }

    #[test]
    fn writes_after_restore_land_locally() {
        let s3 = Arc::new(S3Sim::new());
        let store = StreamingRestoreStore::open(Arc::clone(&s3), "r", "b", vec![]);
        let b = EncodedBlock::new(1, vec![42]);
        let id = b.id;
        store.put(b).unwrap();
        assert_eq!(store.get(id).unwrap().payload, vec![42]);
        assert_eq!(store.page_fault_count(), 0);
    }
}
