//! A durable, multi-region object store standing in for Amazon S3.
//!
//! Functional semantics only — latency/throughput for the paper-scale
//! experiments are modeled separately with `redsim-simkit`. Durability is
//! modeled as absolute ("designed to provide 99.9999999% durability")
//! unless a test explicitly injects object loss.

use redsim_testkit::sync::RwLock;
use redsim_common::{Result, RsError};
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Default)]
struct Region {
    /// key → object bytes. BTreeMap gives ordered prefix listing.
    objects: BTreeMap<String, Arc<Vec<u8>>>,
    puts: u64,
    gets: u64,
    bytes_in: u64,
    bytes_out: u64,
}

/// The simulated S3 service.
#[derive(Default)]
pub struct S3Sim {
    regions: RwLock<BTreeMap<String, Region>>,
}

/// Traffic counters for one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionStats {
    pub objects: usize,
    pub puts: u64,
    pub gets: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
}

impl S3Sim {
    pub fn new() -> Self {
        Self::default()
    }

    /// Store an object (overwrites).
    pub fn put(&self, region: &str, key: &str, data: Vec<u8>) {
        let mut regions = self.regions.write();
        let r = regions.entry(region.to_string()).or_default();
        r.puts += 1;
        r.bytes_in += data.len() as u64;
        r.objects.insert(key.to_string(), Arc::new(data));
    }

    /// Fetch an object.
    pub fn get(&self, region: &str, key: &str) -> Result<Arc<Vec<u8>>> {
        let mut regions = self.regions.write();
        let r = regions
            .get_mut(region)
            .ok_or_else(|| RsError::NotFound(format!("s3 region {region:?}")))?;
        let obj = r
            .objects
            .get(key)
            .cloned()
            .ok_or_else(|| RsError::NotFound(format!("s3://{region}/{key}")))?;
        r.gets += 1;
        r.bytes_out += obj.len() as u64;
        Ok(obj)
    }

    pub fn exists(&self, region: &str, key: &str) -> bool {
        self.regions
            .read()
            .get(region)
            .is_some_and(|r| r.objects.contains_key(key))
    }

    /// List keys with a prefix, in lexicographic order.
    pub fn list(&self, region: &str, prefix: &str) -> Vec<String> {
        self.regions.read().get(region).map_or_else(Vec::new, |r| {
            r.objects
                .range(prefix.to_string()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, _)| k.clone())
                .collect()
        })
    }

    pub fn delete(&self, region: &str, key: &str) {
        if let Some(r) = self.regions.write().get_mut(region) {
            r.objects.remove(key);
        }
    }

    /// Copy one object across regions (disaster-recovery replication).
    pub fn copy_object(&self, from_region: &str, to_region: &str, key: &str) -> Result<()> {
        let data = self.get(from_region, key)?;
        let mut regions = self.regions.write();
        let dst = regions.entry(to_region.to_string()).or_default();
        dst.puts += 1;
        dst.bytes_in += data.len() as u64;
        dst.objects.insert(key.to_string(), data);
        Ok(())
    }

    /// Test hook: lose an object (multi-fault durability scenarios).
    pub fn inject_object_loss(&self, region: &str, key: &str) {
        self.delete(region, key);
    }

    pub fn stats(&self, region: &str) -> RegionStats {
        self.regions.read().get(region).map_or_else(RegionStats::default, |r| RegionStats {
            objects: r.objects.len(),
            puts: r.puts,
            gets: r.gets,
            bytes_in: r.bytes_in,
            bytes_out: r.bytes_out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let s3 = S3Sim::new();
        s3.put("us-east-1", "bucket/a", vec![1, 2, 3]);
        assert_eq!(*s3.get("us-east-1", "bucket/a").unwrap(), vec![1, 2, 3]);
        assert!(s3.get("us-east-1", "bucket/missing").is_err());
        assert!(s3.get("eu-west-1", "bucket/a").is_err());
    }

    #[test]
    fn list_by_prefix_sorted() {
        let s3 = S3Sim::new();
        s3.put("r", "snap/1/b", vec![]);
        s3.put("r", "snap/1/a", vec![]);
        s3.put("r", "snap/2/x", vec![]);
        s3.put("r", "other", vec![]);
        assert_eq!(s3.list("r", "snap/1/"), vec!["snap/1/a", "snap/1/b"]);
        assert_eq!(s3.list("r", "snap/").len(), 3);
    }

    #[test]
    fn cross_region_copy() {
        let s3 = S3Sim::new();
        s3.put("us-east-1", "k", vec![7]);
        s3.copy_object("us-east-1", "eu-west-1", "k").unwrap();
        assert_eq!(*s3.get("eu-west-1", "k").unwrap(), vec![7]);
    }

    #[test]
    fn stats_track_traffic() {
        let s3 = S3Sim::new();
        s3.put("r", "k", vec![0; 100]);
        s3.get("r", "k").unwrap();
        s3.get("r", "k").unwrap();
        let st = s3.stats("r");
        assert_eq!(st.objects, 1);
        assert_eq!(st.puts, 1);
        assert_eq!(st.gets, 2);
        assert_eq!(st.bytes_in, 100);
        assert_eq!(st.bytes_out, 200);
    }

    #[test]
    fn injected_loss_is_observable() {
        let s3 = S3Sim::new();
        s3.put("r", "k", vec![1]);
        s3.inject_object_loss("r", "k");
        assert!(s3.get("r", "k").is_err());
    }
}
