//! A durable, multi-region object store standing in for Amazon S3.
//!
//! Functional semantics only — latency/throughput for the paper-scale
//! experiments are modeled separately with `redsim-simkit`. Durability is
//! modeled as absolute ("designed to provide 99.9999999% durability")
//! unless a test explicitly injects object loss.

use crate::inject::{self, Flow};
use redsim_faultkit::{fp, FaultRegistry};
use redsim_obs::TraceSink;
use redsim_testkit::sync::RwLock;
use redsim_common::{Result, RsError};
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Default)]
struct Region {
    /// key → object bytes. BTreeMap gives ordered prefix listing.
    objects: BTreeMap<String, Arc<Vec<u8>>>,
    puts: u64,
    gets: u64,
    bytes_in: u64,
    bytes_out: u64,
}

/// The simulated S3 service.
///
/// Owns the cluster's [`FaultRegistry`]: every layer riding on this S3
/// handle (mirroring, backup, streaming restore, the COPY loader)
/// shares the same failpoint configuration and seeded trigger stream,
/// so one `RSIM_FAILPOINTS`/`RSIM_SEED` pair configures — and replays —
/// a whole chaos schedule.
pub struct S3Sim {
    regions: RwLock<BTreeMap<String, Region>>,
    faults: Arc<FaultRegistry>,
    /// Optional telemetry sink for `fault.injected` at the s3.* seams
    /// (attached by the owning cluster; last writer wins when clusters
    /// share an S3, which only happens in DR drills).
    trace: RwLock<Option<Arc<TraceSink>>>,
}

impl Default for S3Sim {
    fn default() -> Self {
        S3Sim {
            regions: RwLock::new(BTreeMap::new()),
            faults: Arc::new(FaultRegistry::from_env()),
            trace: RwLock::new(None),
        }
    }
}

/// Traffic counters for one region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RegionStats {
    pub objects: usize,
    pub puts: u64,
    pub gets: u64,
    pub bytes_in: u64,
    pub bytes_out: u64,
}

impl S3Sim {
    pub fn new() -> Self {
        Self::default()
    }

    /// Construct with an explicit fault registry (tests that want a
    /// fixed seed regardless of the environment).
    pub fn with_faults(faults: Arc<FaultRegistry>) -> Self {
        S3Sim { regions: RwLock::new(BTreeMap::new()), faults, trace: RwLock::new(None) }
    }

    /// The shared failpoint registry for everything riding on this S3.
    pub fn faults(&self) -> &Arc<FaultRegistry> {
        &self.faults
    }

    /// Attach a telemetry sink so s3.* failpoint firings bump
    /// `fault.injected`.
    pub fn set_trace(&self, sink: Arc<TraceSink>) {
        *self.trace.write() = Some(sink);
    }

    fn sink(&self) -> Option<Arc<TraceSink>> {
        self.trace.read().clone()
    }

    /// Store an object (overwrites). Infallible by design: this is the
    /// raw staging primitive used by tests (`put_s3_object`) and
    /// fixtures. Production write paths go through [`Self::put_checked`],
    /// which honors the `s3.put` failpoint.
    pub fn put(&self, region: &str, key: &str, data: Vec<u8>) {
        let mut regions = self.regions.write();
        let r = regions.entry(region.to_string()).or_default();
        r.puts += 1;
        r.bytes_in += data.len() as u64;
        r.objects.insert(key.to_string(), Arc::new(data));
    }

    /// Store an object through the `s3.put` failpoint. A `drop` action
    /// silently loses the write (the object never lands) — the
    /// durability seam multi-fault tests exercise.
    pub fn put_checked(&self, region: &str, key: &str, data: Vec<u8>) -> Result<()> {
        match inject::fire(&self.faults, self.sink().as_ref(), fp::S3_PUT)? {
            Flow::Skip => Ok(()), // lost write
            Flow::Continue => {
                self.put(region, key, data);
                Ok(())
            }
        }
    }

    /// Fetch an object (subject to the `s3.get` failpoint; a `drop`
    /// action surfaces as a transient lost-response error).
    pub fn get(&self, region: &str, key: &str) -> Result<Arc<Vec<u8>>> {
        inject::fire_no_skip(&self.faults, self.sink().as_ref(), fp::S3_GET)?;
        let mut regions = self.regions.write();
        let r = regions
            .get_mut(region)
            .ok_or_else(|| RsError::NotFound(format!("s3 region {region:?}")))?;
        let obj = r
            .objects
            .get(key)
            .cloned()
            .ok_or_else(|| RsError::NotFound(format!("s3://{region}/{key}")))?;
        r.gets += 1;
        r.bytes_out += obj.len() as u64;
        Ok(obj)
    }

    pub fn exists(&self, region: &str, key: &str) -> bool {
        self.regions
            .read()
            .get(region)
            .is_some_and(|r| r.objects.contains_key(key))
    }

    /// List keys with a prefix, in lexicographic order.
    pub fn list(&self, region: &str, prefix: &str) -> Vec<String> {
        self.regions.read().get(region).map_or_else(Vec::new, |r| {
            r.objects
                .range(prefix.to_string()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .map(|(k, _)| k.clone())
                .collect()
        })
    }

    pub fn delete(&self, region: &str, key: &str) {
        if let Some(r) = self.regions.write().get_mut(region) {
            r.objects.remove(key);
        }
    }

    /// Copy one object across regions (disaster-recovery replication).
    /// Subject to `s3.copy_object`; a `drop` action silently skips the
    /// copy (the DR region misses the object until the next snapshot).
    pub fn copy_object(&self, from_region: &str, to_region: &str, key: &str) -> Result<()> {
        match inject::fire(&self.faults, self.sink().as_ref(), fp::S3_COPY_OBJECT)? {
            Flow::Skip => return Ok(()),
            Flow::Continue => {}
        }
        let data = self.get(from_region, key)?;
        let mut regions = self.regions.write();
        let dst = regions.entry(to_region.to_string()).or_default();
        dst.puts += 1;
        dst.bytes_in += data.len() as u64;
        dst.objects.insert(key.to_string(), data);
        Ok(())
    }

    /// Test hook: lose an object (multi-fault durability scenarios).
    pub fn inject_object_loss(&self, region: &str, key: &str) {
        self.delete(region, key);
    }

    pub fn stats(&self, region: &str) -> RegionStats {
        self.regions.read().get(region).map_or_else(RegionStats::default, |r| RegionStats {
            objects: r.objects.len(),
            puts: r.puts,
            gets: r.gets,
            bytes_in: r.bytes_in,
            bytes_out: r.bytes_out,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let s3 = S3Sim::new();
        s3.put("us-east-1", "bucket/a", vec![1, 2, 3]);
        assert_eq!(*s3.get("us-east-1", "bucket/a").unwrap(), vec![1, 2, 3]);
        assert!(s3.get("us-east-1", "bucket/missing").is_err());
        assert!(s3.get("eu-west-1", "bucket/a").is_err());
    }

    #[test]
    fn list_by_prefix_sorted() {
        let s3 = S3Sim::new();
        s3.put("r", "snap/1/b", vec![]);
        s3.put("r", "snap/1/a", vec![]);
        s3.put("r", "snap/2/x", vec![]);
        s3.put("r", "other", vec![]);
        assert_eq!(s3.list("r", "snap/1/"), vec!["snap/1/a", "snap/1/b"]);
        assert_eq!(s3.list("r", "snap/").len(), 3);
    }

    #[test]
    fn cross_region_copy() {
        let s3 = S3Sim::new();
        s3.put("us-east-1", "k", vec![7]);
        s3.copy_object("us-east-1", "eu-west-1", "k").unwrap();
        assert_eq!(*s3.get("eu-west-1", "k").unwrap(), vec![7]);
    }

    #[test]
    fn stats_track_traffic() {
        let s3 = S3Sim::new();
        s3.put("r", "k", vec![0; 100]);
        s3.get("r", "k").unwrap();
        s3.get("r", "k").unwrap();
        let st = s3.stats("r");
        assert_eq!(st.objects, 1);
        assert_eq!(st.puts, 1);
        assert_eq!(st.gets, 2);
        assert_eq!(st.bytes_in, 100);
        assert_eq!(st.bytes_out, 200);
    }

    #[test]
    fn injected_loss_is_observable() {
        let s3 = S3Sim::new();
        s3.put("r", "k", vec![1]);
        s3.inject_object_loss("r", "k");
        assert!(s3.get("r", "k").is_err());
    }

    #[test]
    fn get_failpoint_injects_typed_errors() {
        use redsim_faultkit::{ErrClass, FaultSpec};
        let s3 = S3Sim::new();
        s3.put("r", "k", vec![1]);
        s3.faults().configure(fp::S3_GET, FaultSpec::err(ErrClass::Throttle).times(2));
        assert_eq!(s3.get("r", "k").unwrap_err().code(), "THROTTLE");
        assert_eq!(s3.get("r", "k").unwrap_err().code(), "THROTTLE");
        // Budget exhausted: the failpoint disarmed itself.
        assert_eq!(*s3.get("r", "k").unwrap(), vec![1]);
        assert_eq!(s3.faults().injected_total(), 2);
    }

    #[test]
    fn put_checked_drop_loses_the_write() {
        use redsim_faultkit::FaultSpec;
        let s3 = S3Sim::new();
        s3.faults().configure(fp::S3_PUT, FaultSpec::drop_op().once());
        s3.put_checked("r", "lost", vec![1]).unwrap();
        assert!(!s3.exists("r", "lost"), "dropped write must not land");
        s3.put_checked("r", "kept", vec![2]).unwrap();
        assert!(s3.exists("r", "kept"));
    }

    #[test]
    fn copy_object_failpoint() {
        use redsim_faultkit::{ErrClass, FaultSpec};
        let s3 = S3Sim::new();
        s3.put("a", "k", vec![7]);
        s3.faults().configure(fp::S3_COPY_OBJECT, FaultSpec::err(ErrClass::Repl).once());
        assert_eq!(s3.copy_object("a", "b", "k").unwrap_err().code(), "REPL");
        s3.copy_object("a", "b", "k").unwrap();
        assert_eq!(*s3.get("b", "k").unwrap(), vec![7]);
    }
}
