//! Executor integration tests against an in-memory TableProvider: every
//! join strategy produces identical results, exchange byte accounting is
//! consistent, and per-slice parallel execution matches a serial oracle.

use redsim_common::{ColumnData, DataType, Result, Value};
use redsim_distribution::style::dist_hash;
use redsim_distribution::JoinDistStrategy;
use redsim_engine::exec::{Executor, TableProvider};
use redsim_sql::ast::JoinType;
use redsim_sql::plan::{BoundExpr, LogicalPlan, OutCol};
use redsim_storage::table::{ScanOutput, ScanPredicate};
use std::collections::HashMap;

/// A fixture provider: table → per-slice column batches.
struct Fixture {
    slices: usize,
    tables: HashMap<String, Vec<Vec<ColumnData>>>,
}

impl Fixture {
    fn new(slices: usize) -> Self {
        Fixture { slices, tables: HashMap::new() }
    }

    /// Distribute (key, payload) rows by hash of the key column.
    fn add_keyed(&mut self, name: &str, rows: &[(i64, i64)]) {
        let mut per_slice: Vec<(ColumnData, ColumnData)> = (0..self.slices)
            .map(|_| (ColumnData::new(DataType::Int8), ColumnData::new(DataType::Int8)))
            .collect();
        for &(k, v) in rows {
            let s = (dist_hash(&Value::Int8(k)) % self.slices as u64) as usize;
            per_slice[s].0.push_value(&Value::Int8(k)).unwrap();
            per_slice[s].1.push_value(&Value::Int8(v)).unwrap();
        }
        self.tables.insert(
            name.to_string(),
            per_slice.into_iter().map(|(a, b)| vec![a, b]).collect(),
        );
    }

    /// Round-robin rows (EVEN distribution; joins must redistribute).
    fn add_even(&mut self, name: &str, rows: &[(i64, i64)]) {
        let mut per_slice: Vec<(ColumnData, ColumnData)> = (0..self.slices)
            .map(|_| (ColumnData::new(DataType::Int8), ColumnData::new(DataType::Int8)))
            .collect();
        for (i, &(k, v)) in rows.iter().enumerate() {
            let s = i % self.slices;
            per_slice[s].0.push_value(&Value::Int8(k)).unwrap();
            per_slice[s].1.push_value(&Value::Int8(v)).unwrap();
        }
        self.tables.insert(
            name.to_string(),
            per_slice.into_iter().map(|(a, b)| vec![a, b]).collect(),
        );
    }
}

impl TableProvider for Fixture {
    fn num_slices(&self) -> usize {
        self.slices
    }

    fn scan_slice(
        &self,
        table: &str,
        slice: usize,
        projection: &[usize],
        _pred: &ScanPredicate,
    ) -> Result<ScanOutput> {
        let slices = self.tables.get(table).expect("fixture table");
        let batch = &slices[slice];
        let projected: Vec<ColumnData> = projection.iter().map(|&i| batch[i].clone()).collect();
        let rows = projected.first().map_or(0, |c| c.len());
        Ok(ScanOutput {
            batches: if rows > 0 { vec![projected] } else { vec![] },
            groups_total: 1,
            groups_skipped: 0,
            blocks_read: projection.len(),
            bytes_read: 0,
        })
    }
}

fn scan(table: &str) -> LogicalPlan {
    LogicalPlan::Scan {
        table: table.into(),
        projection: vec![0, 1],
        output: vec![
            OutCol { name: "k".into(), ty: DataType::Int8 },
            OutCol { name: "v".into(), ty: DataType::Int8 },
        ],
        filter: None,
        pruning: ScanPredicate::default(),
    }
}

fn join_plan(strategy: JoinDistStrategy, join_type: JoinType) -> LogicalPlan {
    LogicalPlan::Join {
        left: Box::new(scan("l")),
        right: Box::new(scan("r")),
        join_type,
        left_key: 0,
        right_key: 0,
        residual: None,
        strategy,
    }
}

/// Reference join computed serially over all rows.
fn oracle_join(l: &[(i64, i64)], r: &[(i64, i64)], left: bool) -> Vec<Vec<Option<i64>>> {
    let mut out = Vec::new();
    for &(lk, lv) in l {
        let matches: Vec<&(i64, i64)> = r.iter().filter(|(rk, _)| *rk == lk).collect();
        if matches.is_empty() {
            if left {
                out.push(vec![Some(lk), Some(lv), None, None]);
            }
        } else {
            for &&(rk, rv) in &matches {
                out.push(vec![Some(lk), Some(lv), Some(rk), Some(rv)]);
            }
        }
    }
    out.sort();
    out
}

fn run_join(
    fixture: &Fixture,
    strategy: JoinDistStrategy,
    join_type: JoinType,
) -> (Vec<Vec<Option<i64>>>, redsim_engine::ExecMetrics) {
    let exec = Executor::new(fixture);
    let out = exec.run(&join_plan(strategy, join_type)).unwrap();
    let mut rows: Vec<Vec<Option<i64>>> = out
        .rows
        .iter()
        .map(|r| r.values().iter().map(|v| v.as_i64()).collect())
        .collect();
    rows.sort();
    (rows, out.metrics)
}

fn test_rows() -> (Vec<(i64, i64)>, Vec<(i64, i64)>) {
    let l: Vec<(i64, i64)> = (0..200).map(|i| (i % 40, i)).collect();
    let r: Vec<(i64, i64)> = (0..60).map(|i| (i % 50, i * 10)).collect();
    (l, r)
}

#[test]
fn all_strategies_agree_inner() {
    let (l, r) = test_rows();
    let want = oracle_join(&l, &r, false);
    // Co-located layout for DistNone; EVEN layout for the moving ones.
    let mut keyed = Fixture::new(4);
    keyed.add_keyed("l", &l);
    keyed.add_keyed("r", &r);
    let mut even = Fixture::new(4);
    even.add_even("l", &l);
    even.add_even("r", &r);

    let (got, m) = run_join(&keyed, JoinDistStrategy::DistNone, JoinType::Inner);
    assert_eq!(got, want, "DistNone");
    assert_eq!(m.bytes_broadcast + m.bytes_redistributed, 0);

    let (got, m) = run_join(&even, JoinDistStrategy::BcastInner, JoinType::Inner);
    assert_eq!(got, want, "BcastInner");
    assert!(m.bytes_broadcast > 0);

    let (got, m) = run_join(&even, JoinDistStrategy::DistBoth, JoinType::Inner);
    assert_eq!(got, want, "DistBoth");
    assert!(m.bytes_redistributed > 0);
}

#[test]
fn all_strategies_agree_left() {
    // Left keys 40..50 have no matches; left join must keep them.
    let l: Vec<(i64, i64)> = (0..100).map(|i| (i % 50, i)).collect();
    let r: Vec<(i64, i64)> = (0..40).map(|i| (i, i * 10)).collect();
    let want = oracle_join(&l, &r, true);

    let mut keyed = Fixture::new(4);
    keyed.add_keyed("l", &l);
    keyed.add_keyed("r", &r);
    let mut even = Fixture::new(4);
    even.add_even("l", &l);
    even.add_even("r", &r);

    for (fixture, strategy, label) in [
        (&keyed, JoinDistStrategy::DistNone, "DistNone"),
        (&even, JoinDistStrategy::BcastInner, "BcastInner"),
        (&even, JoinDistStrategy::DistBoth, "DistBoth"),
    ] {
        let (got, _) = run_join(fixture, strategy, JoinType::Left);
        assert_eq!(got, want, "{label}");
    }
}

#[test]
fn dist_none_on_wrongly_distributed_data_is_wrong_by_design() {
    // Negative control: the strategy matters. Forcing DistNone on EVEN
    // data silently drops cross-slice matches — which is exactly why the
    // optimizer must pick strategies from distribution styles.
    let (l, r) = test_rows();
    let want = oracle_join(&l, &r, false);
    let mut even = Fixture::new(4);
    even.add_even("l", &l);
    even.add_even("r", &r);
    let (got, _) = run_join(&even, JoinDistStrategy::DistNone, JoinType::Inner);
    assert!(got.len() < want.len(), "forced co-location must lose matches");
}

#[test]
fn aggregate_matches_oracle_across_slices() {
    let (l, _) = test_rows();
    let mut fixture = Fixture::new(8);
    fixture.add_even("l", &l);
    let plan = LogicalPlan::Aggregate {
        input: Box::new(scan("l")),
        group_by: vec![BoundExpr::Column { index: 0, ty: DataType::Int8 }],
        aggs: vec![redsim_sql::plan::AggExpr {
            func: redsim_sql::plan::AggFunc::Sum,
            arg: Some(BoundExpr::Column { index: 1, ty: DataType::Int8 }),
            distinct: false,
            output_name: "s".into(),
        }],
        output: vec![
            OutCol { name: "k".into(), ty: DataType::Int8 },
            OutCol { name: "s".into(), ty: DataType::Int8 },
        ],
    };
    let exec = Executor::new(&fixture);
    let out = exec.run(&plan).unwrap();
    let mut got: Vec<(i64, i64)> = out
        .rows
        .iter()
        .map(|r| (r.get(0).as_i64().unwrap(), r.get(1).as_i64().unwrap()))
        .collect();
    got.sort();
    let mut oracle: HashMap<i64, i64> = HashMap::new();
    for &(k, v) in &l {
        *oracle.entry(k).or_default() += v;
    }
    let mut want: Vec<(i64, i64)> = oracle.into_iter().collect();
    want.sort();
    assert_eq!(got, want);
}

#[test]
fn limit_and_sort_at_leader() {
    let rows: Vec<(i64, i64)> = (0..64).map(|i| (i, 1000 - i)).collect();
    let mut fixture = Fixture::new(4);
    fixture.add_even("l", &rows);
    let plan = LogicalPlan::Limit {
        input: Box::new(LogicalPlan::Sort {
            input: Box::new(scan("l")),
            keys: vec![(BoundExpr::Column { index: 1, ty: DataType::Int8 }, false)],
        }),
        n: 5,
    };
    let exec = Executor::new(&fixture);
    let out = exec.run(&plan).unwrap();
    assert_eq!(out.rows.len(), 5);
    // Smallest five v values = 1000-63 .. 1000-59, ascending.
    let vs: Vec<i64> = out.rows.iter().map(|r| r.get(1).as_i64().unwrap()).collect();
    assert_eq!(vs, vec![937, 938, 939, 940, 941]);
}

#[test]
fn broadcast_bytes_scale_with_slices() {
    // E11's cost intuition measured directly: the same inner broadcast to
    // 2 vs 8 slices moves ~4x the bytes.
    let rows_l: Vec<(i64, i64)> = (0..400).map(|i| (i % 50, i)).collect();
    let rows_r: Vec<(i64, i64)> = (0..50).map(|i| (i, i)).collect();
    let mut small = Fixture::new(2);
    small.add_even("l", &rows_l);
    small.add_even("r", &rows_r);
    let mut big = Fixture::new(8);
    big.add_even("l", &rows_l);
    big.add_even("r", &rows_r);
    let (_, m2) = run_join(&small, JoinDistStrategy::BcastInner, JoinType::Inner);
    let (_, m8) = run_join(&big, JoinDistStrategy::BcastInner, JoinType::Inner);
    assert!(m2.bytes_broadcast > 0);
    let ratio = m8.bytes_broadcast as f64 / m2.bytes_broadcast as f64;
    assert!(
        (4.0..=12.0).contains(&ratio),
        "2→8 slices should ~4-7x broadcast bytes (n-1 factor): {ratio:.1} ({} vs {})",
        m2.bytes_broadcast,
        m8.bytes_broadcast
    );
}

#[test]
fn failed_scan_slice_leaves_metrics_untouched() {
    use redsim_faultkit::{fp, ErrClass, FaultRegistry, FaultSpec};
    use std::sync::Arc;

    let (l, _) = test_rows();
    let mut fixture = Fixture::new(4);
    fixture.add_even("l", &l);

    // Arm the per-slice scan seam once: exactly one of the four slice
    // fragments errors, the other three scan successfully.
    let faults = Arc::new(FaultRegistry::new(7));
    faults.configure(fp::EXEC_SCAN_SLICE, FaultSpec::err(ErrClass::Fault).once());
    let exec = Executor::new(&fixture).with_faults(Arc::clone(&faults));
    let err = exec.run(&scan("l")).unwrap_err();
    assert!(
        matches!(err, redsim_common::RsError::FaultInjected(_)),
        "expected injected fault, got {err:?}"
    );
    // The three healthy slices returned rows and block counts — none of
    // that partial work may be absorbed into the shared counters once
    // any slice fails (it would pollute svl_query_metrics / stl_query).
    assert_eq!(
        exec.metrics_snapshot(),
        redsim_engine::ExecMetrics::default(),
        "failed scan must leave executor metrics untouched"
    );

    // Control: the seam is now disarmed (`once`), so the same executor
    // reruns cleanly and counts exactly this run's rows — nothing held
    // over from the failed attempt.
    let out = exec.run(&scan("l")).unwrap();
    assert_eq!(out.metrics.rows_scanned, l.len() as u64);
    assert!(out.metrics.blocks_read > 0);
}

#[test]
fn redistribution_only_counts_moved_rows() {
    // Rows already on their hash-destination slice are not charged.
    let rows: Vec<(i64, i64)> = (0..200).map(|i| (i, i)).collect();
    let mut keyed = Fixture::new(4);
    keyed.add_keyed("l", &rows); // already hash-placed on the key
    keyed.add_keyed("r", &rows);
    let (_, m) = run_join(&keyed, JoinDistStrategy::DistBoth, JoinType::Inner);
    assert_eq!(
        m.bytes_redistributed, 0,
        "hash-placed data redistributes to itself: {m:?}"
    );
}
