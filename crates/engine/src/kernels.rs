//! Columnar predicate kernels.
//!
//! [`try_eval_predicate`] evaluates a WHERE/filter tree directly over
//! typed `ColumnData` slices, producing the selection vector
//! (`Vec<bool>`, one slot per row) without materializing a `Value` — or
//! an intermediate boolean column — per row. Expressions the kernels
//! don't cover return `None` and the caller falls back to the
//! interpreter path ([`crate::expr::eval_predicate_interp`]); the
//! `vector_*` property suite fuzzes both paths for bit-identical
//! results.
//!
//! ## Dispatch rules
//!
//! A comparison leaf is kernelized when both operands are plain column
//! references or literals and their types land in one of three lanes,
//! mirroring `Value::cmp_sql`'s arms exactly:
//!
//! * **i64 lane** — both sides integer-family (INT2/4/8, DATE,
//!   TIMESTAMP, BOOL): compare widened `i64`s, like the interpreter's
//!   integer fast path.
//! * **f64 lane** — at least one side FLOAT8 or DECIMAL and the other
//!   numeric/bool: compare via [`cmp_f64`] (NaN equals itself and sorts
//!   greatest), matching `cmp_sql`'s mixed-numeric arm — including its
//!   deliberate use of `f64` for DECIMAL-vs-DECIMAL.
//! * **str lane** — both sides VARCHAR: byte-wise `str` ordering over
//!   the `StrVec` arena, no per-row allocation.
//!
//! Everything else (arithmetic operands, CASE, casts, mixed
//! string/number comparisons) falls back.
//!
//! ## NULL handling: the negation flag
//!
//! SQL WHERE keeps a row iff the predicate's *ternary* value is TRUE.
//! Kernels never build the ternary column; instead every node is
//! evaluated against a target via a negation flag:
//! `K(e, neg) = (ternary(e) == if neg { FALSE } else { TRUE })`.
//! `NOT e` recurses with the flag flipped; under Kleene logic
//! `AND` is FALSE iff either side is FALSE, so
//! `K(a AND b, true) = K(a, true) OR K(b, true)` (and dually for OR) —
//! plain `bool` combination stays exact. At a comparison leaf a flipped
//! flag inverts the operator (`<` ↔ `>=` …), because a non-NULL
//! comparison is FALSE exactly when the inverse operator holds, and a
//! NULL comparison matches neither target.

use crate::expr::{cmp_holds, LikeMatcher};
use redsim_common::types::cmp_f64;
use redsim_common::{ColumnData, DataType, Value};
use redsim_sql::ast::{BinaryOp, UnaryOp};
use redsim_sql::plan::BoundExpr;

/// Evaluate a predicate into a selection vector, or `None` when the
/// expression (or its operand types) isn't covered by a kernel.
pub fn try_eval_predicate(
    expr: &BoundExpr,
    batch: &[ColumnData],
    rows: usize,
) -> Option<Vec<bool>> {
    eval_pred(expr, batch, rows, false)
}

fn eval_pred(expr: &BoundExpr, batch: &[ColumnData], rows: usize, neg: bool) -> Option<Vec<bool>> {
    match expr {
        // A bare boolean column used as a predicate (`WHERE active`).
        BoundExpr::Column { .. } => {
            let Operand::Col(ColumnData::Bool { data, nulls }) = operand(expr, batch, rows)?
            else {
                return None;
            };
            Some((0..rows).map(|i| nulls.get(i) && (data[i] != neg)).collect())
        }
        BoundExpr::Literal(v) => match v {
            // ternary(b) == target ⇔ b != neg; NULL matches no target.
            Value::Bool(b) => Some(vec![*b != neg; rows]),
            Value::Null => Some(vec![false; rows]),
            _ => None,
        },
        BoundExpr::Unary { op: UnaryOp::Not, expr } => eval_pred(expr, batch, rows, !neg),
        BoundExpr::Binary { left, op: BinaryOp::And, right } => {
            let a = eval_pred(left, batch, rows, neg)?;
            let b = eval_pred(right, batch, rows, neg)?;
            Some(combine(a, &b, /* any = */ neg))
        }
        BoundExpr::Binary { left, op: BinaryOp::Or, right } => {
            let a = eval_pred(left, batch, rows, neg)?;
            let b = eval_pred(right, batch, rows, neg)?;
            Some(combine(a, &b, /* any = */ !neg))
        }
        BoundExpr::Binary { left, op, right } if is_comparison(*op) => {
            cmp_kernel(left, *op, right, batch, rows, neg)
        }
        BoundExpr::IsNull { expr, negated } => {
            let sel = match operand(expr, batch, rows)? {
                Operand::Col(c) => {
                    (0..rows).map(|i| (c.is_null(i) != *negated) != neg).collect()
                }
                Operand::Lit(v) => vec![(v.is_null() != *negated) != neg; rows],
            };
            Some(sel)
        }
        BoundExpr::InList { expr, list, negated } => {
            in_list_kernel(expr, list, *negated, batch, rows, neg)
        }
        BoundExpr::Like { expr, pattern, negated } => {
            let Operand::Col(c) = operand(expr, batch, rows)? else { return None };
            let ColumnData::Str { data, nulls } = c else { return None };
            let matcher = LikeMatcher::new(pattern);
            Some(
                (0..rows)
                    .map(|i| {
                        nulls.get(i) && ((matcher.matches(data.get(i)) != *negated) != neg)
                    })
                    .collect(),
            )
        }
        _ => None,
    }
}

/// Fold `b` into `a`: `any = false` keeps rows where both are set
/// (AND-lane), `any = true` where either is (OR-lane).
fn combine(mut a: Vec<bool>, b: &[bool], any: bool) -> Vec<bool> {
    if any {
        for (x, &y) in a.iter_mut().zip(b) {
            *x |= y;
        }
    } else {
        for (x, &y) in a.iter_mut().zip(b) {
            *x &= y;
        }
    }
    a
}

fn is_comparison(op: BinaryOp) -> bool {
    matches!(
        op,
        BinaryOp::Eq | BinaryOp::NotEq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq
    )
}

/// `!cmp_holds(ord, op) == cmp_holds(ord, invert(op))` for non-NULL
/// comparisons, so a negated leaf just runs the inverse operator.
fn invert(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Eq => BinaryOp::NotEq,
        BinaryOp::NotEq => BinaryOp::Eq,
        BinaryOp::Lt => BinaryOp::GtEq,
        BinaryOp::GtEq => BinaryOp::Lt,
        BinaryOp::Gt => BinaryOp::LtEq,
        BinaryOp::LtEq => BinaryOp::Gt,
        other => other,
    }
}

enum Operand<'a> {
    Col(&'a ColumnData),
    Lit(&'a Value),
}

fn operand<'a>(e: &'a BoundExpr, batch: &'a [ColumnData], rows: usize) -> Option<Operand<'a>> {
    match e {
        BoundExpr::Column { index, .. } => {
            let c = batch.get(*index)?;
            // A ragged batch means something upstream is wrong; let the
            // interpreter produce its error instead of miscomputing.
            (c.len() == rows).then_some(Operand::Col(c))
        }
        BoundExpr::Literal(v) => Some(Operand::Lit(v)),
        _ => None,
    }
}

/// Type lane of an operand, `None` when it has no kernel lane.
#[derive(Clone, Copy, PartialEq)]
enum Lane {
    Int,
    Float,
    Dec,
    Str,
}

fn lane(o: &Operand) -> Option<Lane> {
    let ty = match o {
        Operand::Col(c) => c.data_type(),
        Operand::Lit(v) => v.data_type()?,
    };
    Some(match ty {
        DataType::Bool
        | DataType::Int2
        | DataType::Int4
        | DataType::Int8
        | DataType::Date
        | DataType::Timestamp => Lane::Int,
        DataType::Float8 => Lane::Float,
        DataType::Decimal(_, _) => Lane::Dec,
        DataType::Varchar => Lane::Str,
    })
}

fn cmp_kernel(
    l: &BoundExpr,
    op: BinaryOp,
    r: &BoundExpr,
    batch: &[ColumnData],
    rows: usize,
    neg: bool,
) -> Option<Vec<bool>> {
    let lo = operand(l, batch, rows)?;
    let ro = operand(r, batch, rows)?;
    // A NULL literal on either side makes every row's comparison NULL,
    // which matches neither the TRUE nor the FALSE target.
    if matches!(lo, Operand::Lit(Value::Null)) || matches!(ro, Operand::Lit(Value::Null)) {
        return Some(vec![false; rows]);
    }
    let op = if neg { invert(op) } else { op };
    match (lane(&lo)?, lane(&ro)?) {
        (Lane::Int, Lane::Int) => Some(cmp_i64(&lo, &ro, op, rows)),
        (Lane::Str, Lane::Str) => cmp_str(&lo, &ro, op, rows),
        // Any float/decimal side drags the comparison onto cmp_sql's
        // mixed-numeric f64 arm (decimal-vs-decimal included).
        (a, b)
            if (a == Lane::Float || a == Lane::Dec || b == Lane::Float || b == Lane::Dec)
                && a != Lane::Str
                && b != Lane::Str =>
        {
            Some(cmp_f64_lane(&lo, &ro, op, rows))
        }
        _ => None,
    }
}

/// Monomorphized compare loop: `acc` closures yield `None` for NULL.
#[inline]
fn cmp_loop<T, L, R, C>(rows: usize, l: L, r: R, cmp: C, op: BinaryOp) -> Vec<bool>
where
    L: Fn(usize) -> Option<T>,
    R: Fn(usize) -> Option<T>,
    C: Fn(&T, &T) -> std::cmp::Ordering,
{
    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        out.push(match (l(i), r(i)) {
            (Some(a), Some(b)) => cmp_holds(cmp(&a, &b), op),
            _ => false,
        });
    }
    out
}

fn cmp_i64(lo: &Operand, ro: &Operand, op: BinaryOp, rows: usize) -> Vec<bool> {
    let ord = |a: &i64, b: &i64| a.cmp(b);
    match (lo, ro) {
        (Operand::Col(lc), Operand::Col(rc)) => {
            cmp_loop(rows, |i| lc.get_i64(i), |i| rc.get_i64(i), ord, op)
        }
        (Operand::Col(lc), Operand::Lit(v)) => {
            let b = v.as_i64();
            // Direct-slice arms for the hottest shapes (col ⋈ constant).
            match lc {
                ColumnData::Int8 { data, nulls } | ColumnData::Timestamp { data, nulls } => {
                    let b = b.expect("int lane literal");
                    return data
                        .iter()
                        .enumerate()
                        .map(|(i, &x)| nulls.get(i) && cmp_holds(x.cmp(&b), op))
                        .collect();
                }
                ColumnData::Int4 { data, nulls } | ColumnData::Date { data, nulls } => {
                    let b = b.expect("int lane literal");
                    return data
                        .iter()
                        .enumerate()
                        .map(|(i, &x)| nulls.get(i) && cmp_holds((x as i64).cmp(&b), op))
                        .collect();
                }
                _ => {}
            }
            cmp_loop(rows, |i| lc.get_i64(i), |_| b, ord, op)
        }
        (Operand::Lit(v), Operand::Col(rc)) => {
            let a = v.as_i64();
            cmp_loop(rows, |_| a, |i| rc.get_i64(i), ord, op)
        }
        (Operand::Lit(a), Operand::Lit(b)) => {
            let hold = match (a.as_i64(), b.as_i64()) {
                (Some(x), Some(y)) => cmp_holds(x.cmp(&y), op),
                _ => false,
            };
            vec![hold; rows]
        }
    }
}

fn cmp_f64_lane(lo: &Operand, ro: &Operand, op: BinaryOp, rows: usize) -> Vec<bool> {
    let ord = |a: &f64, b: &f64| cmp_f64(*a, *b);
    match (lo, ro) {
        (Operand::Col(lc), Operand::Col(rc)) => {
            cmp_loop(rows, |i| lc.get_f64(i), |i| rc.get_f64(i), ord, op)
        }
        (Operand::Col(lc), Operand::Lit(v)) => {
            let b = v.as_f64();
            if let ColumnData::Float8 { data, nulls } = lc {
                let b = b.expect("f64 lane literal");
                return data
                    .iter()
                    .enumerate()
                    .map(|(i, &x)| nulls.get(i) && cmp_holds(cmp_f64(x, b), op))
                    .collect();
            }
            cmp_loop(rows, |i| lc.get_f64(i), |_| b, ord, op)
        }
        (Operand::Lit(v), Operand::Col(rc)) => {
            let a = v.as_f64();
            cmp_loop(rows, |_| a, |i| rc.get_f64(i), ord, op)
        }
        (Operand::Lit(a), Operand::Lit(b)) => {
            let hold = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => cmp_holds(cmp_f64(x, y), op),
                _ => false,
            };
            vec![hold; rows]
        }
    }
}

fn cmp_str(lo: &Operand, ro: &Operand, op: BinaryOp, rows: usize) -> Option<Vec<bool>> {
    Some(match (lo, ro) {
        (Operand::Col(ColumnData::Str { data: ld, nulls: ln }), Operand::Col(ColumnData::Str { data: rd, nulls: rn })) => (0..rows)
            .map(|i| ln.get(i) && rn.get(i) && cmp_holds(ld.get(i).cmp(rd.get(i)), op))
            .collect(),
        (Operand::Col(ColumnData::Str { data, nulls }), Operand::Lit(Value::Str(s))) => (0..rows)
            .map(|i| nulls.get(i) && cmp_holds(data.get(i).cmp(s.as_str()), op))
            .collect(),
        (Operand::Lit(Value::Str(s)), Operand::Col(ColumnData::Str { data, nulls })) => (0..rows)
            .map(|i| nulls.get(i) && cmp_holds(s.as_str().cmp(data.get(i)), op))
            .collect(),
        (Operand::Lit(Value::Str(a)), Operand::Lit(Value::Str(b))) => {
            vec![cmp_holds(a.cmp(b), op); rows]
        }
        _ => return None,
    })
}

fn in_list_kernel(
    expr: &BoundExpr,
    list: &[Value],
    negated: bool,
    batch: &[ColumnData],
    rows: usize,
    neg: bool,
) -> Option<Vec<bool>> {
    let Operand::Col(c) = operand(expr, batch, rows)? else { return None };
    // Non-NULL rows always produce a definite bool; found != negated,
    // then compared against the negation target.
    let keep = |found: bool| (found != negated) != neg;
    match lane(&Operand::Col(c))? {
        Lane::Int => {
            // eq_sql(int, int) is i64 equality; any non-integer item
            // (float/decimal/str) drops to cmp_sql's mixed arms, so bail.
            let mut items: Vec<i64> = Vec::with_capacity(list.len());
            for v in list {
                if v.is_null() {
                    continue; // NULL items never equal anything
                }
                if !matches!(
                    v,
                    Value::Bool(_)
                        | Value::Int2(_)
                        | Value::Int4(_)
                        | Value::Int8(_)
                        | Value::Date(_)
                        | Value::Timestamp(_)
                ) {
                    return None;
                }
                items.push(v.as_i64().expect("integer family"));
            }
            Some(
                (0..rows)
                    .map(|i| match c.get_i64(i) {
                        Some(a) => keep(items.contains(&a)),
                        None => false,
                    })
                    .collect(),
            )
        }
        Lane::Float | Lane::Dec => {
            // eq_sql drops to the mixed-numeric arm: cmp_f64 equality
            // (NaN IN (NaN) is true, matching HKey::Float semantics).
            let mut items: Vec<f64> = Vec::with_capacity(list.len());
            for v in list {
                if v.is_null() {
                    continue;
                }
                items.push(v.as_f64()?); // non-numeric item: bail
            }
            Some(
                (0..rows)
                    .map(|i| match c.get_f64(i) {
                        Some(a) => keep(items.iter().any(|&b| {
                            cmp_f64(a, b) == std::cmp::Ordering::Equal
                        })),
                        None => false,
                    })
                    .collect(),
            )
        }
        Lane::Str => {
            let ColumnData::Str { data, nulls } = c else { return None };
            let mut items: Vec<&str> = Vec::with_capacity(list.len());
            for v in list {
                if v.is_null() {
                    continue;
                }
                let Value::Str(s) = v else { return None };
                items.push(s);
            }
            Some(
                (0..rows)
                    .map(|i| {
                        if nulls.get(i) {
                            keep(items.contains(&data.get(i)))
                        } else {
                            false
                        }
                    })
                    .collect(),
            )
        }
    }
}

/// Compare column slot `i` (non-NULL) against a non-NULL scalar with
/// `cmp_sql` semantics, without materializing the slot as a `Value`.
/// Used by the MIN/MAX fast path: the slot is only boxed when it
/// actually improves the running best.
pub(crate) fn cmp_slot_value(c: &ColumnData, i: usize, v: &Value) -> std::cmp::Ordering {
    debug_assert!(!c.is_null(i) && !v.is_null());
    match (c, v) {
        (ColumnData::Str { data, .. }, Value::Str(s)) => data.get(i).cmp(s),
        (ColumnData::Float8 { data, .. }, Value::Float8(b)) => cmp_f64(data[i], *b),
        _ => {
            // Integer-family fast path when both sides widen to i64 and
            // neither is float/decimal (cmp_sql's final arm).
            let col_int = c.get_i64(i);
            let val_int = v.as_i64();
            let col_is_num = matches!(c, ColumnData::Float8 { .. } | ColumnData::Decimal { .. });
            let val_is_num = matches!(v, Value::Float8(_) | Value::Decimal { .. });
            match (col_int, val_int) {
                (Some(a), Some(b)) if !col_is_num && !val_is_num => a.cmp(&b),
                _ => c.get(i).cmp_sql(v),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::eval_predicate_interp;

    fn int8(vals: &[Option<i64>]) -> ColumnData {
        let mut c = ColumnData::new(DataType::Int8);
        for v in vals {
            match v {
                Some(x) => c.push_value(&Value::Int8(*x)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    }

    fn f64col(vals: &[Option<f64>]) -> ColumnData {
        let mut c = ColumnData::new(DataType::Float8);
        for v in vals {
            match v {
                Some(x) => c.push_value(&Value::Float8(*x)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    }

    fn strcol(vals: &[Option<&str>]) -> ColumnData {
        let mut c = ColumnData::new(DataType::Varchar);
        for v in vals {
            match v {
                Some(s) => c.push_value(&Value::Str(s.to_string())).unwrap(),
                None => c.push_null(),
            }
        }
        c
    }

    fn col(i: usize, ty: DataType) -> Box<BoundExpr> {
        Box::new(BoundExpr::Column { index: i, ty })
    }

    fn lit(v: Value) -> Box<BoundExpr> {
        Box::new(BoundExpr::Literal(v))
    }

    fn agree(expr: &BoundExpr, batch: &[ColumnData], rows: usize) -> Vec<bool> {
        let kernel = try_eval_predicate(expr, batch, rows).expect("kernel covers");
        let interp = eval_predicate_interp(expr, batch, rows).expect("interp evals");
        assert_eq!(kernel, interp, "kernel vs interpreter mismatch: {expr:?}");
        kernel
    }

    #[test]
    fn int_compare_with_nulls() {
        let batch = vec![int8(&[Some(1), Some(5), None, Some(-3)])];
        let e = BoundExpr::Binary { left: col(0, DataType::Int8), op: BinaryOp::Lt, right: lit(Value::Int8(2)) };
        assert_eq!(agree(&e, &batch, 4), vec![true, false, false, true]);
        let e = BoundExpr::Unary { op: UnaryOp::Not, expr: col(0, DataType::Int8).into() };
        // NOT over a non-bool is an interpreter error, kernel must bail too.
        assert!(try_eval_predicate(&e, &batch, 4).is_none());
    }

    #[test]
    fn not_flips_without_resurrecting_nulls() {
        let batch = vec![int8(&[Some(1), Some(5), None])];
        let cmp = BoundExpr::Binary { left: col(0, DataType::Int8), op: BinaryOp::Lt, right: lit(Value::Int8(3)) };
        let e = BoundExpr::Unary { op: UnaryOp::Not, expr: Box::new(cmp) };
        // NOT(NULL < 3) is NULL → excluded, same as the positive form.
        assert_eq!(agree(&e, &batch, 3), vec![false, true, false]);
    }

    #[test]
    fn and_or_de_morgan_under_not() {
        let batch = vec![int8(&[Some(1), Some(5), None, Some(9)])];
        let a = BoundExpr::Binary { left: col(0, DataType::Int8), op: BinaryOp::Gt, right: lit(Value::Int8(2)) };
        let b = BoundExpr::Binary { left: col(0, DataType::Int8), op: BinaryOp::Lt, right: lit(Value::Int8(7)) };
        let and = BoundExpr::Binary { left: Box::new(a), op: BinaryOp::And, right: Box::new(b) };
        let not_and = BoundExpr::Unary { op: UnaryOp::Not, expr: Box::new(and.clone()) };
        agree(&and, &batch, 4);
        agree(&not_and, &batch, 4);
    }

    #[test]
    fn float_nan_compares_like_interpreter() {
        let batch = vec![f64col(&[Some(1.5), Some(f64::NAN), None, Some(-0.0)])];
        for op in [BinaryOp::Eq, BinaryOp::Lt, BinaryOp::GtEq, BinaryOp::NotEq] {
            let e = BoundExpr::Binary {
                left: col(0, DataType::Float8),
                op,
                right: lit(Value::Float8(f64::NAN)),
            };
            agree(&e, &batch, 4);
            let e = BoundExpr::Binary {
                left: col(0, DataType::Float8),
                op,
                right: lit(Value::Float8(0.0)),
            };
            agree(&e, &batch, 4);
        }
    }

    #[test]
    fn str_compare_and_like() {
        let batch = vec![strcol(&[Some("apple"), Some("pear"), None, Some("")])];
        let e = BoundExpr::Binary {
            left: col(0, DataType::Varchar),
            op: BinaryOp::GtEq,
            right: lit(Value::Str("b".into())),
        };
        assert_eq!(agree(&e, &batch, 4), vec![false, true, false, false]);
        let e = BoundExpr::Like {
            expr: col(0, DataType::Varchar),
            pattern: "%p%".into(),
            negated: true,
        };
        agree(&e, &batch, 4);
    }

    #[test]
    fn in_list_lanes() {
        let ints = vec![int8(&[Some(1), Some(5), None])];
        let e = BoundExpr::InList {
            expr: col(0, DataType::Int8),
            list: vec![Value::Int8(1), Value::Null, Value::Int8(9)],
            negated: false,
        };
        assert_eq!(agree(&e, &ints, 3), vec![true, false, false]);
        let e = BoundExpr::InList {
            expr: col(0, DataType::Int8),
            list: vec![Value::Int8(1)],
            negated: true,
        };
        assert_eq!(agree(&e, &ints, 3), vec![false, true, false]);
        let strs = vec![strcol(&[Some("eu"), Some("ap"), None])];
        let e = BoundExpr::InList {
            expr: col(0, DataType::Varchar),
            list: vec![Value::Str("eu".into()), Value::Str("us".into())],
            negated: false,
        };
        assert_eq!(agree(&e, &strs, 3), vec![true, false, false]);
        // Mixed-type list bails to the interpreter.
        let e = BoundExpr::InList {
            expr: col(0, DataType::Int8),
            list: vec![Value::Str("1".into())],
            negated: false,
        };
        assert!(try_eval_predicate(&e, &ints, 3).is_none());
    }

    #[test]
    fn is_null_against_target() {
        let batch = vec![int8(&[Some(1), None])];
        let e = BoundExpr::IsNull { expr: col(0, DataType::Int8), negated: false };
        assert_eq!(agree(&e, &batch, 2), vec![false, true]);
        let e = BoundExpr::Unary {
            op: UnaryOp::Not,
            expr: Box::new(BoundExpr::IsNull { expr: col(0, DataType::Int8), negated: true }),
        };
        assert_eq!(agree(&e, &batch, 2), vec![false, true]);
    }

    #[test]
    fn uncovered_expressions_bail() {
        let batch = vec![int8(&[Some(1)])];
        // Arithmetic operand → fallback.
        let sum = BoundExpr::Binary {
            left: col(0, DataType::Int8),
            op: BinaryOp::Add,
            right: lit(Value::Int8(1)),
        };
        let e = BoundExpr::Binary { left: Box::new(sum), op: BinaryOp::Lt, right: lit(Value::Int8(5)) };
        assert!(try_eval_predicate(&e, &batch, 1).is_none());
        // Missing column index → fallback (interpreter reports the error).
        let e = BoundExpr::Binary { left: col(7, DataType::Int8), op: BinaryOp::Lt, right: lit(Value::Int8(5)) };
        assert!(try_eval_predicate(&e, &batch, 1).is_none());
    }

    #[test]
    fn decimal_compares_via_f64_like_cmp_sql() {
        let mut d = ColumnData::new(DataType::Decimal(10, 2));
        for units in [Some(150i128), Some(-25), None] {
            match units {
                Some(u) => d.push_value(&Value::Decimal { units: u, scale: 2 }).unwrap(),
                None => d.push_null(),
            }
        }
        let batch = vec![d];
        let e = BoundExpr::Binary {
            left: col(0, DataType::Decimal(10, 2)),
            op: BinaryOp::Gt,
            right: lit(Value::Decimal { units: 0, scale: 2 }),
        };
        assert_eq!(agree(&e, &batch, 3), vec![true, false, false]);
        let e = BoundExpr::Binary {
            left: col(0, DataType::Decimal(10, 2)),
            op: BinaryOp::Lt,
            right: lit(Value::Int8(1)),
        };
        agree(&e, &batch, 3);
    }

    #[test]
    fn null_literal_comparison_selects_nothing() {
        let batch = vec![int8(&[Some(1), None])];
        for negated in [false, true] {
            let mut e = BoundExpr::Binary {
                left: col(0, DataType::Int8),
                op: BinaryOp::Eq,
                right: lit(Value::Null),
            };
            if negated {
                e = BoundExpr::Unary { op: UnaryOp::Not, expr: Box::new(e) };
            }
            assert_eq!(agree(&e, &batch, 2), vec![false, false]);
        }
    }

    #[test]
    fn cmp_slot_value_matches_cmp_sql() {
        let cols = [
            int8(&[Some(5), Some(-1)]),
            f64col(&[Some(f64::NAN), Some(2.5)]),
            strcol(&[Some("abc"), Some("")]),
        ];
        let probes = [
            Value::Int8(3),
            Value::Float8(f64::NAN),
            Value::Float8(1.0),
            Value::Str("abc".into()),
        ];
        for c in &cols {
            for i in 0..c.len() {
                for v in &probes {
                    assert_eq!(
                        cmp_slot_value(c, i, v),
                        c.get(i).cmp_sql(v),
                        "col {:?} slot {i} vs {v:?}",
                        c.data_type()
                    );
                }
            }
        }
    }
}
