//! The distributed executor.
//!
//! A logical plan runs as per-slice fragments joined by exchanges:
//! scans/filters/joins execute on every slice in parallel (std scoped
//! threads via `testkit::par` — one slice per core, as in §2.1),
//! aggregation runs
//! partial-per-slice then final-at-leader, and sorts/limits finish at the
//! leader, which "performs final aggregation of results when required".
//! Exchange operators count the bytes they move so experiment E11 can
//! report broadcast vs redistribution traffic.

use crate::expr::{eval, eval_predicate};
use crate::hashkey::HKey;
use redsim_testkit::sync::Mutex;
use redsim_common::{
    ColumnData, DataType, FxHashMap, FxHashSet, Result, Row, RsError, Value,
};
use redsim_distribution::{style::dist_hash, JoinDistStrategy};
use redsim_sql::ast::JoinType;
use redsim_sql::plan::{AggExpr, AggFunc, BoundExpr, LogicalPlan, OutCol};
use redsim_storage::stats::KmvSketch;
use redsim_storage::table::{ScanOutput, ScanPredicate};

/// One column batch (all columns share a length).
pub type Batch = Vec<ColumnData>;

/// Storage access the executor needs; implemented by the compute layer.
pub trait TableProvider: Sync {
    fn num_slices(&self) -> usize;

    /// Scan one slice of a table with projection + pruning predicate.
    fn scan_slice(
        &self,
        table: &str,
        slice: usize,
        projection: &[usize],
        pred: &ScanPredicate,
    ) -> Result<ScanOutput>;
}

/// Execution telemetry (surfaced through EXPLAIN-style reports and the
/// E10/E11 benches).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ExecMetrics {
    /// Bytes shipped by broadcast exchanges.
    pub bytes_broadcast: u64,
    /// Bytes shipped by hash-redistribution exchanges.
    pub bytes_redistributed: u64,
    pub blocks_read: usize,
    pub bytes_read: u64,
    pub groups_total: usize,
    pub groups_skipped: usize,
    pub rows_scanned: u64,
    /// Time the query waited for a WLM concurrency slot before running
    /// (leader-side admission control; 0 when a slot was free).
    pub queue_wait_ns: u64,
    /// Wall-clock execution time (the `query.exec` span's extent;
    /// backfilled leader-side, 0 inside the executor itself).
    pub exec_ns: u64,
    /// Plan-compilation time, 0 on a plan-cache hit (the `query.compile`
    /// span's extent; backfilled leader-side).
    pub compile_ns: u64,
}

impl ExecMetrics {
    /// Fold another metrics bag into this one (field-wise sum). Public
    /// so callers merging per-slice or per-query metrics don't re-sum
    /// the fields by hand.
    pub fn absorb(&mut self, other: &ExecMetrics) {
        self.bytes_broadcast += other.bytes_broadcast;
        self.bytes_redistributed += other.bytes_redistributed;
        self.blocks_read += other.blocks_read;
        self.bytes_read += other.bytes_read;
        self.groups_total += other.groups_total;
        self.groups_skipped += other.groups_skipped;
        self.rows_scanned += other.rows_scanned;
        self.queue_wait_ns += other.queue_wait_ns;
        self.exec_ns += other.exec_ns;
        self.compile_ns += other.compile_ns;
    }

    /// Total interconnect traffic (broadcast + redistribution) — the
    /// quantity E11 and the colocation tests actually assert on.
    pub fn exchange_bytes(&self) -> u64 {
        self.bytes_broadcast + self.bytes_redistributed
    }
}

/// One operator's execution footprint on one slice: the unit row of
/// `svl_query_report`. `step` is the plan node's pre-order index
/// (1-based, matching `LogicalPlan::explain` line order), so step N
/// annotates EXPLAIN line N.
#[derive(Debug, Clone)]
pub struct StepProfile {
    pub step: usize,
    /// Operator label (`LogicalPlan::node_label`).
    pub label: String,
    pub slice: usize,
    /// Rows this operator emitted on this slice. Leader-materialized
    /// operators (Sort/Limit/final Aggregate) report on slice 0 only.
    pub rows: u64,
    /// Bytes of those output rows (in-memory column footprint).
    pub bytes: u64,
    /// Inclusive wall-clock time of the operator subtree. Slices run
    /// the fragment in lockstep, so every slice row of a step carries
    /// the same elapsed time.
    pub elapsed_ns: u64,
}

/// A completed query.
#[derive(Debug)]
pub struct QueryOutput {
    pub columns: Vec<OutCol>,
    pub rows: Vec<Row>,
    pub metrics: ExecMetrics,
    /// Per-step, per-slice profile; empty unless
    /// [`Executor::with_profiling`] enabled it.
    pub profile: Vec<StepProfile>,
}

/// Data placement during execution.
enum DataSet {
    /// One batch list per slice.
    Slices(Vec<Vec<Batch>>),
    /// Materialized at the leader.
    Leader(Vec<Batch>),
}

/// Executes optimized logical plans against a [`TableProvider`].
pub struct Executor<'a> {
    provider: &'a dyn TableProvider,
    metrics: Mutex<ExecMetrics>,
    /// Per-step profile rows; `None` when profiling is off (the check
    /// per plan node is one branch, so default-on is affordable — the
    /// profiler-overhead bench keeps this honest).
    profile: Option<Mutex<Vec<StepProfile>>>,
    /// Parent span for per-slice detail spans (`RSIM_TRACE=2`).
    trace: Option<&'a redsim_obs::Span>,
    /// Failpoint registry consulted at the per-slice scan seam
    /// (`exec.scan_slice`); `None` skips the check entirely.
    faults: Option<std::sync::Arc<redsim_faultkit::FaultRegistry>>,
}

impl<'a> Executor<'a> {
    pub fn new(provider: &'a dyn TableProvider) -> Self {
        Executor {
            provider,
            metrics: Mutex::new(ExecMetrics::default()),
            profile: None,
            trace: None,
            faults: None,
        }
    }

    /// Attach a parent span; slice-level scan spans become its children.
    pub fn with_trace(mut self, span: &'a redsim_obs::Span) -> Self {
        self.trace = Some(span);
        self
    }

    /// Enable (or disable) per-step, per-slice profiling. Off by
    /// default; the cluster turns it on per `profile_queries` config and
    /// always for `EXPLAIN ANALYZE`.
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profile = if on { Some(Mutex::new(Vec::new())) } else { None };
        self
    }

    /// Consult `registry` at the `exec.scan_slice` seam. The cluster
    /// passes its shared registry so chaos configs reach the executor.
    pub fn with_faults(mut self, registry: std::sync::Arc<redsim_faultkit::FaultRegistry>) -> Self {
        self.faults = Some(registry);
        self
    }

    /// Snapshot of the executor-wide metrics accumulated so far. Lets
    /// tests assert what a *failed* run left behind (a successful run
    /// reports through [`QueryOutput::metrics`] instead).
    pub fn metrics_snapshot(&self) -> ExecMetrics {
        self.metrics.lock().clone()
    }

    /// Run a plan to completion, materializing rows at the leader.
    pub fn run(&self, plan: &LogicalPlan) -> Result<QueryOutput> {
        let columns = plan.output();
        let ds = self.exec(plan, 1)?;
        let batches = self.gather(ds);
        let width = columns.len();
        let mut rows = Vec::new();
        for b in &batches {
            debug_assert_eq!(b.len(), width);
            let n = b.first().map_or(0, |c| c.len());
            for i in 0..n {
                rows.push(Row::new(b.iter().map(|c| c.get(i)).collect()));
            }
        }
        let mut profile =
            self.profile.as_ref().map_or_else(Vec::new, |p| std::mem::take(&mut p.lock()));
        profile.sort_by_key(|s| (s.step, s.slice));
        Ok(QueryOutput { columns, rows, metrics: self.metrics.lock().clone(), profile })
    }

    fn gather(&self, ds: DataSet) -> Vec<Batch> {
        match ds {
            DataSet::Leader(b) => b,
            DataSet::Slices(per_slice) => per_slice.into_iter().flatten().collect(),
        }
    }

    /// Execute one plan node (pre-order step id `step`), recording a
    /// [`StepProfile`] row per slice when profiling is on. Timing is
    /// inclusive of the subtree, like `EXPLAIN ANALYZE` actual-time.
    fn exec(&self, plan: &LogicalPlan, step: usize) -> Result<DataSet> {
        let Some(profile) = &self.profile else {
            return self.exec_node(plan, step);
        };
        let t0 = std::time::Instant::now();
        let ds = self.exec_node(plan, step)?;
        let elapsed_ns = t0.elapsed().as_nanos() as u64;
        let n = self.provider.num_slices();
        let label = plan.node_label();
        // Output footprint per slice; leader-materialized results count
        // on slice 0, other slices report the step with zero rows.
        let totals: Vec<(u64, u64)> = match &ds {
            DataSet::Slices(per_slice) => per_slice.iter().map(|b| batch_totals(b)).collect(),
            DataSet::Leader(batches) => {
                let mut v = vec![(0u64, 0u64); n.max(1)];
                v[0] = batch_totals(batches);
                v
            }
        };
        let mut rows = profile.lock();
        for (slice, (r, bytes)) in totals.into_iter().enumerate() {
            rows.push(StepProfile {
                step,
                label: label.clone(),
                slice,
                rows: r,
                bytes,
                elapsed_ns,
            });
        }
        drop(rows);
        Ok(ds)
    }

    fn exec_node(&self, plan: &LogicalPlan, step: usize) -> Result<DataSet> {
        match plan {
            LogicalPlan::Scan { table, projection, filter, pruning, .. } => {
                self.exec_scan(table, projection, filter.as_ref(), pruning)
            }
            LogicalPlan::Filter { input, predicate } => {
                let ds = self.exec(input, step + 1)?;
                self.map_batches(ds, |batch| {
                    let rows = batch.first().map_or(0, |c| c.len());
                    let sel = eval_predicate(predicate, &batch, rows)?;
                    Ok(batch.iter().map(|c| c.filter(&sel)).collect())
                })
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let ds = self.exec(input, step + 1)?;
                self.map_batches(ds, |batch| {
                    let rows = batch.first().map_or(0, |c| c.len());
                    exprs.iter().map(|e| eval(e, &batch, rows)).collect()
                })
            }
            LogicalPlan::Join { left, right, join_type, left_key, right_key, residual, strategy } => {
                self.exec_join(left, right, *join_type, *left_key, *right_key, residual.as_ref(), *strategy, step)
            }
            LogicalPlan::Aggregate { input, group_by, aggs, output } => {
                self.exec_aggregate(input, group_by, aggs, output, step)
            }
            LogicalPlan::Sort { input, keys } => {
                let ds = self.exec(input, step + 1)?;
                let batches = self.gather(ds);
                let width = input.output().len();
                let all = concat_batches(width, batches);
                let rows = all.first().map_or(0, |c| c.len());
                let key_cols: Vec<ColumnData> =
                    keys.iter().map(|(k, _)| eval(k, &all, rows)).collect::<Result<_>>()?;
                let mut idx: Vec<u32> = (0..rows as u32).collect();
                idx.sort_by(|&a, &b| {
                    for ((_, desc), kc) in keys.iter().zip(&key_cols) {
                        let o = kc.get(a as usize).cmp_sql(&kc.get(b as usize));
                        let o = if *desc { o.reverse() } else { o };
                        if o != std::cmp::Ordering::Equal {
                            return o;
                        }
                    }
                    std::cmp::Ordering::Equal
                });
                let sorted: Batch = all.iter().map(|c| c.gather(&idx)).collect();
                Ok(DataSet::Leader(vec![sorted]))
            }
            LogicalPlan::Limit { input, n } => {
                let ds = self.exec(input, step + 1)?;
                let batches = self.gather(ds);
                let width = input.output().len();
                let all = concat_batches(width, batches);
                let rows = all.first().map_or(0, |c| c.len());
                let take = (*n as usize).min(rows);
                let truncated: Batch = all.iter().map(|c| c.slice(0, take)).collect();
                Ok(DataSet::Leader(vec![truncated]))
            }
        }
    }

    fn exec_scan(
        &self,
        table: &str,
        projection: &[usize],
        filter: Option<&BoundExpr>,
        pruning: &ScanPredicate,
    ) -> Result<DataSet> {
        let n = self.provider.num_slices();
        let results: Vec<Result<(Vec<Batch>, ExecMetrics)>> =
            parallel_map(n, |slice| {
                if let Some(faults) = &self.faults {
                    use redsim_faultkit::{fp, Outcome};
                    match faults.fire(fp::EXEC_SCAN_SLICE) {
                        Outcome::Proceed => {}
                        Outcome::Err(class) => {
                            return Err(RsError::FaultInjected(format!(
                                "injected {} at {} (slice {slice})",
                                class.as_str(),
                                fp::EXEC_SCAN_SLICE,
                            )))
                        }
                        // A dropped scan fragment yields an empty slice:
                        // lost-work semantics, not an error.
                        Outcome::Drop => return Ok((Vec::new(), ExecMetrics::default())),
                    }
                }
                let mut span = match self.trace {
                    Some(parent) => parent.child(redsim_obs::LVL_DETAIL, "exec.slice"),
                    None => redsim_obs::Span::disabled(),
                };
                let out = self.provider.scan_slice(table, slice, projection, pruning)?;
                let mut m = ExecMetrics {
                    blocks_read: out.blocks_read,
                    bytes_read: out.bytes_read,
                    groups_total: out.groups_total,
                    groups_skipped: out.groups_skipped,
                    ..Default::default()
                };
                let mut batches = Vec::with_capacity(out.batches.len());
                for batch in out.batches {
                    let rows = batch.first().map_or(0, |c| c.len());
                    m.rows_scanned += rows as u64;
                    match filter {
                        Some(f) => {
                            let sel = eval_predicate(f, &batch, rows)?;
                            if sel.iter().any(|&b| b) {
                                batches.push(batch.iter().map(|c| c.filter(&sel)).collect());
                            }
                        }
                        None => batches.push(batch),
                    }
                }
                if span.is_recording() {
                    span.attr("table", table);
                    span.attr("slice", slice);
                    span.attr("rows_scanned", m.rows_scanned);
                    span.attr("blocks_read", m.blocks_read);
                    span.attr("bytes_read", m.bytes_read);
                    span.attr("groups_skipped", m.groups_skipped);
                }
                Ok((batches, m))
            });
        // Unwrap every slice result BEFORE absorbing any metrics: a scan
        // that fails on slice k must not pollute svl_query_metrics /
        // stl_query with partial rows/bytes from slices 0..k. The `?`
        // below therefore runs to completion (or propagates the first
        // error with the shared counters untouched) before the absorb
        // loop starts.
        let mut per_slice = Vec::with_capacity(n);
        let mut slice_metrics = Vec::with_capacity(n);
        for r in results {
            let (batches, m) = r?;
            slice_metrics.push(m);
            per_slice.push(batches);
        }
        let mut metrics = self.metrics.lock();
        for m in &slice_metrics {
            metrics.absorb(m);
        }
        drop(metrics);
        Ok(DataSet::Slices(per_slice))
    }

    fn map_batches(
        &self,
        ds: DataSet,
        f: impl Fn(Batch) -> Result<Batch> + Sync,
    ) -> Result<DataSet> {
        match ds {
            DataSet::Leader(batches) => {
                let out: Result<Vec<Batch>> = batches.into_iter().map(&f).collect();
                Ok(DataSet::Leader(out?))
            }
            DataSet::Slices(per_slice) => {
                let results: Vec<Result<Vec<Batch>>> = parallel_map_owned(per_slice, |batches| {
                    batches.into_iter().map(&f).collect()
                });
                Ok(DataSet::Slices(results.into_iter().collect::<Result<_>>()?))
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_join(
        &self,
        left: &LogicalPlan,
        right: &LogicalPlan,
        join_type: JoinType,
        left_key: usize,
        right_key: usize,
        residual: Option<&BoundExpr>,
        strategy: JoinDistStrategy,
        step: usize,
    ) -> Result<DataSet> {
        let lw = left.output().len();
        let right_types: Vec<DataType> = right.output().iter().map(|c| c.ty).collect();
        let l_ds = self.exec(left, step + 1)?;
        let r_ds = self.exec(right, step + 1 + left.num_steps())?;
        let n = self.provider.num_slices();
        let l_slices = self.to_slices(l_ds, n);
        let mut r_slices = self.to_slices(r_ds, n);
        // (shadowed mutable below for strategies that re-expand a side)

        let mut l_slices = l_slices;
        match strategy {
            JoinDistStrategy::DistNone => {}
            JoinDistStrategy::AllNone { all_side_left } => {
                // The ALL side's copy exists on every node; its scan
                // reported it once (slice 0). Re-expand it locally —
                // no network bytes move.
                if all_side_left {
                    let all_left: Vec<Batch> = l_slices.into_iter().flatten().collect();
                    l_slices = (0..n).map(|_| all_left.clone()).collect();
                } else {
                    let all_right: Vec<Batch> = r_slices.into_iter().flatten().collect();
                    r_slices = (0..n).map(|_| all_right.clone()).collect();
                }
            }
            JoinDistStrategy::BcastInner => {
                // Ship every inner batch to every slice.
                let all_right: Vec<Batch> = r_slices.into_iter().flatten().collect();
                let bytes: u64 = all_right
                    .iter()
                    .map(|b| b.iter().map(|c| c.byte_size() as u64).sum::<u64>())
                    .sum();
                self.metrics.lock().bytes_broadcast += bytes * (n as u64).saturating_sub(1);
                r_slices = (0..n).map(|_| all_right.clone()).collect();
            }
            JoinDistStrategy::DistBoth => {
                let (l2, lb) = self.redistribute(l_slices, left_key, n)?;
                let (r2, rb) = self.redistribute(r_slices, right_key, n)?;
                self.metrics.lock().bytes_redistributed += lb + rb;
                return self.local_joins(
                    l2, r2, lw, &right_types, join_type, left_key, right_key, residual,
                );
            }
        }
        self.local_joins(l_slices, r_slices, lw, &right_types, join_type, left_key, right_key, residual)
    }

    fn to_slices(&self, ds: DataSet, n: usize) -> Vec<Vec<Batch>> {
        match ds {
            DataSet::Slices(s) => s,
            DataSet::Leader(batches) => {
                // Leader data participates as slice 0 (rare; e.g. joins over
                // leader-materialized inputs).
                let mut out = vec![Vec::new(); n];
                out[0] = batches;
                out
            }
        }
    }

    /// Hash-partition every row by its key column; returns the new
    /// placement and the bytes that crossed slices.
    fn redistribute(
        &self,
        per_slice: Vec<Vec<Batch>>,
        key: usize,
        n: usize,
    ) -> Result<(Vec<Vec<Batch>>, u64)> {
        let mut out: Vec<Vec<Batch>> = vec![Vec::new(); n];
        let mut moved = 0u64;
        for (src, batches) in per_slice.into_iter().enumerate() {
            for batch in batches {
                let rows = batch.first().map_or(0, |c| c.len());
                if rows == 0 {
                    continue;
                }
                let mut dest_idx: Vec<Vec<u32>> = vec![Vec::new(); n];
                for i in 0..rows {
                    let d = (dist_hash_column(&batch[key], i) % n as u64) as usize;
                    dest_idx[d].push(i as u32);
                }
                let row_bytes =
                    batch.iter().map(|c| c.byte_size()).sum::<usize>() as u64 / rows.max(1) as u64;
                for (d, idx) in dest_idx.into_iter().enumerate() {
                    if idx.is_empty() {
                        continue;
                    }
                    if d != src {
                        moved += row_bytes * idx.len() as u64;
                    }
                    out[d].push(batch.iter().map(|c| c.gather(&idx)).collect());
                }
            }
        }
        Ok((out, moved))
    }

    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn local_joins(
        &self,
        l_slices: Vec<Vec<Batch>>,
        r_slices: Vec<Vec<Batch>>,
        lw: usize,
        right_types: &[DataType],
        join_type: JoinType,
        left_key: usize,
        right_key: usize,
        residual: Option<&BoundExpr>,
    ) -> Result<DataSet> {
        let pairs: Vec<(Vec<Batch>, Vec<Batch>)> =
            l_slices.into_iter().zip(r_slices).collect();
        let results: Vec<Result<Vec<Batch>>> = parallel_map_owned(pairs, |(lb, rb)| {
            hash_join_local(lb, rb, lw, right_types, join_type, left_key, right_key, residual)
        });
        Ok(DataSet::Slices(results.into_iter().collect::<Result<_>>()?))
    }

    fn exec_aggregate(
        &self,
        input: &LogicalPlan,
        group_by: &[BoundExpr],
        aggs: &[AggExpr],
        output: &[OutCol],
        step: usize,
    ) -> Result<DataSet> {
        let ds = self.exec(input, step + 1)?;
        // Partial aggregation per slice, in parallel.
        let partials: Vec<Result<GroupTable>> = match ds {
            DataSet::Slices(per_slice) => parallel_map_owned(per_slice, |batches| {
                let mut table = GroupTable::default();
                for batch in batches {
                    update_groups(&mut table, &batch, group_by, aggs)?;
                }
                Ok(table)
            }),
            DataSet::Leader(batches) => {
                let mut table = GroupTable::default();
                for batch in batches {
                    update_groups(&mut table, &batch, group_by, aggs)?;
                }
                vec![Ok(table)]
            }
        };
        // Final merge at the leader.
        let mut merged = GroupTable::default();
        for p in partials {
            let p = p?;
            for (k, states) in p.0 {
                match merged.0.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        for (a, b) in e.get_mut().iter_mut().zip(states) {
                            a.merge(b);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(states);
                    }
                }
            }
        }
        // Global aggregate over zero rows still yields one group.
        if group_by.is_empty() && merged.0.is_empty() {
            merged
                .0
                .insert(GroupKey::Empty, aggs.iter().map(AggState::init).collect());
        }
        // Emit one leader batch.
        let mut cols: Vec<ColumnData> = output
            .iter()
            .map(|c| ColumnData::new(c.ty))
            .collect();
        for (key, states) in merged.0 {
            for (i, hk) in GroupTable::key_values(&key).into_iter().enumerate() {
                cols[i].push_value(&hkey_to_value(hk, output[i].ty))?;
            }
            for (j, st) in states.into_iter().enumerate() {
                let slot = group_by.len() + j;
                cols[slot].push_value(&st.finish().coerce_to(output[slot].ty)?)?;
            }
        }
        Ok(DataSet::Leader(vec![cols]))
    }
}

/// Composite group key without a heap allocation for the common 0/1/2
/// column cases.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum GroupKey {
    Empty,
    One(HKey),
    Two(HKey, HKey),
    Many(Vec<HKey>),
}

/// group key -> agg states.
#[derive(Default)]
struct GroupTable(FxHashMap<GroupKey, Vec<AggState>>);

impl GroupTable {
    fn key_values(key: &GroupKey) -> Vec<&HKey> {
        match key {
            GroupKey::Empty => Vec::new(),
            GroupKey::One(a) => vec![a],
            GroupKey::Two(a, b) => vec![a, b],
            GroupKey::Many(v) => v.iter().collect(),
        }
    }
}

/// Precompute one column's `HKey` per row, sharing `Arc<str>` allocations
/// across repeated string values within the batch.
fn hkeys_of_column(c: &ColumnData, rows: usize) -> Vec<HKey> {
    if let ColumnData::Str { data, .. } = c {
        let mut memo: FxHashMap<&str, HKey> = FxHashMap::default();
        return (0..rows)
            .map(|i| {
                if c.is_null(i) {
                    HKey::Null
                } else {
                    memo.entry(data.get(i))
                        .or_insert_with(|| HKey::from_column(c, i))
                        .clone()
                }
            })
            .collect();
    }
    (0..rows).map(|i| HKey::from_column(c, i)).collect()
}

fn update_groups(
    table: &mut GroupTable,
    batch: &Batch,
    group_by: &[BoundExpr],
    aggs: &[AggExpr],
) -> Result<()> {
    let rows = batch.first().map_or(0, |c| c.len());
    if rows == 0 {
        return Ok(());
    }
    let key_cols: Vec<ColumnData> =
        group_by.iter().map(|g| eval(g, batch, rows)).collect::<Result<_>>()?;
    let key_hkeys: Vec<Vec<HKey>> =
        key_cols.iter().map(|c| hkeys_of_column(c, rows)).collect();
    let arg_cols: Vec<Option<ColumnData>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| eval(e, batch, rows)).transpose())
        .collect::<Result<_>>()?;
    for i in 0..rows {
        let key = match key_hkeys.len() {
            0 => GroupKey::Empty,
            1 => GroupKey::One(key_hkeys[0][i].clone()),
            2 => GroupKey::Two(key_hkeys[0][i].clone(), key_hkeys[1][i].clone()),
            _ => GroupKey::Many(key_hkeys.iter().map(|col| col[i].clone()).collect()),
        };
        let states = table
            .0
            .entry(key)
            .or_insert_with(|| aggs.iter().map(AggState::init).collect());
        for ((st, a), arg_col) in states.iter_mut().zip(aggs).zip(&arg_cols) {
            st.update_from_column(a, arg_col.as_ref(), i)?;
        }
    }
    Ok(())
}

fn hkey_to_value(k: &HKey, ty: DataType) -> Value {
    match k {
        HKey::Null => Value::Null,
        HKey::Bool(b) => Value::Bool(*b),
        HKey::Int(i) => match ty {
            DataType::Date => Value::Date(*i as i32),
            DataType::Timestamp => Value::Timestamp(*i),
            DataType::Int2 => Value::Int2(*i as i16),
            DataType::Int4 => Value::Int4(*i as i32),
            _ => Value::Int8(*i),
        },
        HKey::Float(bits) => Value::Float8(f64::from_bits(*bits)),
        HKey::Str(s) => Value::Str(s.to_string()),
        HKey::Decimal(u, s) => Value::Decimal { units: *u, scale: *s },
    }
}

/// One aggregate's running state.
pub(crate) enum AggState {
    Count(i64),
    SumInt { sum: i128, seen: bool },
    SumFloat { sum: f64, seen: bool },
    SumDec { sum: i128, scale: u8, seen: bool },
    Avg { sum: f64, n: i64 },
    MinMax { best: Option<Value>, is_min: bool },
    Distinct(FxHashSet<HKey>),
    Approx(KmvSketch),
}

impl AggState {
    pub(crate) fn init(a: &AggExpr) -> AggState {
        match a.func {
            AggFunc::CountStar => AggState::Count(0),
            AggFunc::Count => {
                if a.distinct {
                    AggState::Distinct(FxHashSet::default())
                } else {
                    AggState::Count(0)
                }
            }
            AggFunc::Sum => match a.arg.as_ref().map(|e| e.ty()) {
                Some(DataType::Float8) => AggState::SumFloat { sum: 0.0, seen: false },
                Some(DataType::Decimal(_, s)) => {
                    AggState::SumDec { sum: 0, scale: s, seen: false }
                }
                _ => AggState::SumInt { sum: 0, seen: false },
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => AggState::MinMax { best: None, is_min: true },
            AggFunc::Max => AggState::MinMax { best: None, is_min: false },
            AggFunc::ApproxCountDistinct => AggState::Approx(KmvSketch::new(256)),
        }
    }

    /// Typed fast path used by the vectorized engine: reads the argument
    /// straight from the column, avoiding a `Value` per row for the
    /// numeric aggregates.
    pub(crate) fn update_from_column(
        &mut self,
        spec: &AggExpr,
        col: Option<&ColumnData>,
        i: usize,
    ) -> Result<()> {
        match (&mut *self, col) {
            (AggState::Count(n), col) => {
                if spec.func == AggFunc::CountStar || col.is_some_and(|c| !c.is_null(i)) {
                    *n += 1;
                }
                Ok(())
            }
            (AggState::SumInt { sum, seen }, Some(c)) => {
                if let Some(x) = c.get_i64(i) {
                    *sum += x as i128;
                    *seen = true;
                }
                Ok(())
            }
            (AggState::SumFloat { sum, seen }, Some(c)) => {
                if let Some(x) = c.get_f64(i) {
                    *sum += x;
                    *seen = true;
                }
                Ok(())
            }
            (AggState::Avg { sum, n }, Some(c)) => {
                if let Some(x) = c.get_f64(i) {
                    *sum += x;
                    *n += 1;
                }
                Ok(())
            }
            (AggState::Distinct(set), Some(c)) => {
                if !c.is_null(i) {
                    set.insert(HKey::from_column(c, i));
                }
                Ok(())
            }
            (AggState::MinMax { best, is_min }, Some(c)) => {
                // Compare the slot against the running best in place;
                // materialize a `Value` only when it improves (strings
                // stop allocating once the extremum stabilizes).
                if !c.is_null(i) {
                    let better = match best {
                        None => true,
                        Some(b) => {
                            let o = crate::kernels::cmp_slot_value(c, i, b);
                            if *is_min {
                                o == std::cmp::Ordering::Less
                            } else {
                                o == std::cmp::Ordering::Greater
                            }
                        }
                    };
                    if better {
                        *best = Some(c.get(i));
                    }
                }
                Ok(())
            }
            // Decimal sums and sketches keep the general path.
            (_, col) => {
                let v = col.map(|c| c.get(i));
                self.update(spec, v.as_ref())
            }
        }
    }

    pub(crate) fn update(&mut self, spec: &AggExpr, v: Option<&Value>) -> Result<()> {
        match self {
            AggState::Count(n) => {
                if spec.func == AggFunc::CountStar || v.is_some_and(|x| !x.is_null()) {
                    *n += 1;
                }
            }
            AggState::SumInt { sum, seen } => {
                if let Some(v) = v {
                    if let Some(x) = v.as_i64() {
                        *sum += x as i128;
                        *seen = true;
                    }
                }
            }
            AggState::SumFloat { sum, seen } => {
                if let Some(v) = v {
                    if let Some(x) = v.as_f64() {
                        *sum += x;
                        *seen = true;
                    }
                }
            }
            AggState::SumDec { sum, scale, seen } => {
                if let Some(Value::Decimal { units, scale: s }) = v {
                    *sum += redsim_common::types::rescale(*units, *s, *scale)?;
                    *seen = true;
                }
            }
            AggState::Avg { sum, n } => {
                if let Some(v) = v {
                    if let Some(x) = v.as_f64() {
                        *sum += x;
                        *n += 1;
                    }
                }
            }
            AggState::MinMax { best, is_min } => {
                if let Some(v) = v {
                    if !v.is_null() {
                        let better = match best {
                            None => true,
                            Some(b) => {
                                let o = v.cmp_sql(b);
                                if *is_min {
                                    o == std::cmp::Ordering::Less
                                } else {
                                    o == std::cmp::Ordering::Greater
                                }
                            }
                        };
                        if better {
                            *best = Some(v.clone());
                        }
                    }
                }
            }
            AggState::Distinct(set) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        set.insert(HKey::from_value(v));
                    }
                }
            }
            AggState::Approx(sketch) => {
                if let Some(v) = v {
                    if !v.is_null() {
                        sketch.insert_value(v);
                    }
                }
            }
        }
        Ok(())
    }

    fn merge(&mut self, other: AggState) {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::SumInt { sum: a, seen: sa }, AggState::SumInt { sum: b, seen: sb }) => {
                *a += b;
                *sa |= sb;
            }
            (AggState::SumFloat { sum: a, seen: sa }, AggState::SumFloat { sum: b, seen: sb }) => {
                *a += b;
                *sa |= sb;
            }
            (
                AggState::SumDec { sum: a, seen: sa, .. },
                AggState::SumDec { sum: b, seen: sb, .. },
            ) => {
                *a += b;
                *sa |= sb;
            }
            (AggState::Avg { sum: a, n: na }, AggState::Avg { sum: b, n: nb }) => {
                *a += b;
                *na += nb;
            }
            (AggState::MinMax { best: a, is_min }, AggState::MinMax { best: b, .. }) => {
                if let Some(bv) = b {
                    let better = match a {
                        None => true,
                        Some(av) => {
                            let o = bv.cmp_sql(av);
                            if *is_min {
                                o == std::cmp::Ordering::Less
                            } else {
                                o == std::cmp::Ordering::Greater
                            }
                        }
                    };
                    if better {
                        *a = Some(bv);
                    }
                }
            }
            (AggState::Distinct(a), AggState::Distinct(b)) => a.extend(b),
            (AggState::Approx(a), AggState::Approx(b)) => a.merge(&b),
            _ => unreachable!("mismatched aggregate states"),
        }
    }

    pub(crate) fn finish(self) -> Value {
        match self {
            AggState::Count(n) => Value::Int8(n),
            AggState::SumInt { sum, seen } => {
                if seen {
                    Value::Int8(sum as i64)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat { sum, seen } => {
                if seen {
                    Value::Float8(sum)
                } else {
                    Value::Null
                }
            }
            AggState::SumDec { sum, scale, seen } => {
                if seen {
                    Value::Decimal { units: sum, scale }
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, n } => {
                if n > 0 {
                    Value::Float8(sum / n as f64)
                } else {
                    Value::Null
                }
            }
            AggState::MinMax { best, .. } => best.unwrap_or(Value::Null),
            AggState::Distinct(set) => Value::Int8(set.len() as i64),
            AggState::Approx(sketch) => Value::Int8(sketch.estimate().round() as i64),
        }
    }
}

/// Per-slice hash join over local batches.
#[allow(clippy::too_many_arguments)]
fn hash_join_local(
    left_batches: Vec<Batch>,
    right_batches: Vec<Batch>,
    lw: usize,
    right_types: &[DataType],
    join_type: JoinType,
    left_key: usize,
    right_key: usize,
    residual: Option<&BoundExpr>,
) -> Result<Vec<Batch>> {
    // Build on the right side.
    let right_all = concat_batches_opt(right_batches);
    let mut table: FxHashMap<HKey, Vec<u32>> = FxHashMap::default();
    if let Some(r) = &right_all {
        let n = r.first().map_or(0, |c| c.len());
        for i in 0..n {
            let k = HKey::from_column(&r[right_key], i);
            if k.is_null() {
                continue; // NULL never matches
            }
            table.entry(k).or_default().push(i as u32);
        }
    }
    let mut out = Vec::new();
    for lb in left_batches {
        let n = lb.first().map_or(0, |c| c.len());
        if n == 0 {
            continue;
        }
        let mut l_idx: Vec<u32> = Vec::new();
        let mut r_idx: Vec<u32> = Vec::new();
        let mut unmatched: Vec<u32> = Vec::new();
        for i in 0..n {
            let k = HKey::from_column(&lb[left_key], i);
            let matches = if k.is_null() { None } else { table.get(&k) };
            match matches {
                Some(list) => {
                    for &j in list {
                        l_idx.push(i as u32);
                        r_idx.push(j);
                    }
                }
                None => {
                    if join_type == JoinType::Left {
                        unmatched.push(i as u32);
                    }
                }
            }
        }
        // Materialize matched rows (an absent build side still yields
        // typed, empty right columns so output width stays stable).
        let mut combined: Batch = Vec::with_capacity(lw + right_types.len());
        for c in &lb {
            combined.push(c.gather(&l_idx));
        }
        match &right_all {
            Some(r) => {
                for c in r {
                    combined.push(c.gather(&r_idx));
                }
            }
            None => {
                for &ty in right_types {
                    combined.push(ColumnData::new(ty));
                }
            }
        }
        // Residual filter on matched rows only.
        let mut kept = if let Some(res) = residual {
            let rows = combined.first().map_or(0, |c| c.len());
            let sel = eval_predicate(res, &combined, rows)?;
            let filtered: Batch = combined.iter().map(|c| c.filter(&sel)).collect();
            // LEFT JOIN: rows failing the residual revert to unmatched.
            if join_type == JoinType::Left {
                for (pos, &li) in l_idx.iter().enumerate() {
                    if !sel[pos] {
                        unmatched.push(li);
                    }
                }
                // A left row may have several candidate matches; only add
                // it to unmatched when *none* survived.
                let survivors: FxHashSet<u32> = l_idx
                    .iter()
                    .enumerate()
                    .filter(|(p, _)| sel[*p])
                    .map(|(_, &li)| li)
                    .collect();
                unmatched.retain(|li| !survivors.contains(li));
                unmatched.sort_unstable();
                unmatched.dedup();
            }
            filtered
        } else {
            combined
        };
        // NULL-extended unmatched left rows.
        if join_type == JoinType::Left && !unmatched.is_empty() {
            let mut pad: Batch = Vec::with_capacity(lw + right_types.len());
            for c in &lb {
                pad.push(c.gather(&unmatched));
            }
            for &ty in right_types {
                let mut nulls = ColumnData::new(ty);
                for _ in 0..unmatched.len() {
                    nulls.push_null();
                }
                pad.push(nulls);
            }
            // Append pad to kept.
            for (k, p) in kept.iter_mut().zip(&pad) {
                k.append(p);
            }
        }
        if kept.first().map_or(0, |c| c.len()) > 0 {
            out.push(kept);
        }
    }
    Ok(out)
}

/// Routing hash of one column slot without materializing a `Value`
/// (matches `redsim_distribution::style::dist_hash` semantics).
fn dist_hash_column(c: &ColumnData, i: usize) -> u64 {
    if c.is_null(i) {
        return 0;
    }
    match c {
        ColumnData::Str { data, .. } => redsim_common::fx_hash64(data.get(i)),
        other => dist_hash(&other.get(i)),
    }
}

/// Total (rows, bytes) across a batch list — a profiled step's output
/// footprint on one slice.
fn batch_totals(batches: &[Batch]) -> (u64, u64) {
    let mut rows = 0u64;
    let mut bytes = 0u64;
    for b in batches {
        rows += b.first().map_or(0, |c| c.len()) as u64;
        bytes += b.iter().map(|c| c.byte_size() as u64).sum::<u64>();
    }
    (rows, bytes)
}

/// Concatenate batches of a known width into one batch.
pub fn concat_batches(width: usize, batches: Vec<Batch>) -> Batch {
    match concat_batches_opt(batches) {
        Some(b) => b,
        None => (0..width).map(|_| ColumnData::new(DataType::Int8)).collect(),
    }
}

fn concat_batches_opt(batches: Vec<Batch>) -> Option<Batch> {
    let mut iter = batches.into_iter().filter(|b| b.first().map_or(0, |c| c.len()) > 0 || !b.is_empty());
    let mut acc = iter.next()?;
    for b in iter {
        for (a, c) in acc.iter_mut().zip(&b) {
            a.append(c);
        }
    }
    Some(acc)
}

/// Run `f(0..n)` on scoped threads, preserving order.
fn parallel_map<T: Send>(n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    redsim_testkit::par::map_indexed(n, f)
}

/// Like [`parallel_map`] but consuming owned inputs.
fn parallel_map_owned<I: Send, T: Send>(inputs: Vec<I>, f: impl Fn(I) -> T + Sync) -> Vec<T> {
    redsim_testkit::par::map(inputs, f)
}

#[cfg(test)]
mod metrics_tests {
    use super::ExecMetrics;

    /// `absorb` must cover *every* field. The struct literal below has
    /// no `..Default::default()` escape hatch on purpose: adding a field
    /// to [`ExecMetrics`] without updating this test (and, by checklist,
    /// `absorb`) is a compile error, and a field missing from `absorb`
    /// fails the doubling assertion. The remaining manual `+=` sites in
    /// this file (broadcast/redistribute accounting, per-slice row
    /// counts) are deliberate single-field increments, not merges.
    #[test]
    fn absorb_covers_every_field() {
        let all_nonzero = ExecMetrics {
            bytes_broadcast: 1,
            bytes_redistributed: 2,
            blocks_read: 3,
            bytes_read: 4,
            groups_total: 5,
            groups_skipped: 6,
            rows_scanned: 7,
            queue_wait_ns: 8,
            exec_ns: 9,
            compile_ns: 10,
        };
        let mut acc = ExecMetrics::default();
        acc.absorb(&all_nonzero);
        acc.absorb(&all_nonzero);
        assert_eq!(acc.bytes_broadcast, 2);
        assert_eq!(acc.bytes_redistributed, 4);
        assert_eq!(acc.blocks_read, 6);
        assert_eq!(acc.bytes_read, 8);
        assert_eq!(acc.groups_total, 10);
        assert_eq!(acc.groups_skipped, 12);
        assert_eq!(acc.rows_scanned, 14);
        assert_eq!(acc.queue_wait_ns, 16);
        assert_eq!(acc.exec_ns, 18);
        assert_eq!(acc.compile_ns, 20);
        assert_eq!(acc.exchange_bytes(), 6);
    }
}
