//! Query "compilation" and the plan cache.
//!
//! §2.1: "Query processing … begins with query plan generation and
//! compilation to C++ and machine code at the leader node. The use of
//! query compilation adds a fixed overhead per query that we feel is
//! generally amortized by the tighter execution at compute nodes."
//!
//! Rust has no in-process C++ toolchain to invoke, so the *mechanism* is
//! substituted (see DESIGN.md): "compilation" here specializes the plan
//! into the vectorized executor's form and pays a deterministic,
//! plan-size-proportional fixed cost standing in for codegen+compile
//! time. What the experiments measure — the fixed-overhead vs
//! faster-execution trade-off and its amortization by the plan cache —
//! is the paper's actual claim, and both sides of that trade-off are
//! real here: the compiled path runs the batch-at-a-time engine, the
//! uncompiled path runs the row-at-a-time interpreter.

use redsim_testkit::sync::Mutex;
use redsim_common::hash::mix64;
use redsim_sql::plan::LogicalPlan;
use std::collections::VecDeque;
use std::sync::Arc;

/// Work units (splitmix64 rounds) per plan node; calibrated so a typical
/// 5-node plan costs a few milliseconds, the same order as Redshift's
/// compiled-fragment cache hit path relative to scan times at our scale.
pub const DEFAULT_WORK_PER_NODE: u64 = 3_000_000;

/// A compiled (specialized) query ready for the vectorized executor.
#[derive(Debug)]
pub struct CompiledQuery {
    pub plan: LogicalPlan,
    /// Cache key: structural signature of the plan (includes literals).
    pub signature: String,
    /// Checksum emitted by the specialization pass (forces the work to
    /// actually happen — the optimizer cannot elide it).
    pub checksum: u64,
}

/// Structural signature of a plan.
pub fn plan_signature(plan: &LogicalPlan) -> String {
    format!("{plan:?}")
}

fn plan_nodes(plan: &LogicalPlan) -> u64 {
    match plan {
        LogicalPlan::Scan { .. } => 1,
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Aggregate { input, .. }
        | LogicalPlan::Project { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => 1 + plan_nodes(input),
        LogicalPlan::Join { left, right, .. } => 1 + plan_nodes(left) + plan_nodes(right),
    }
}

/// Compile a plan, paying the fixed specialization cost.
pub fn compile(plan: LogicalPlan, work_per_node: u64) -> CompiledQuery {
    let signature = plan_signature(&plan);
    let nodes = plan_nodes(&plan);
    // Deterministic busy work proportional to plan complexity.
    let mut acc = redsim_common::fx_hash64(&signature);
    for _ in 0..nodes.saturating_mul(work_per_node) {
        acc = mix64(acc);
    }
    CompiledQuery { plan, signature, checksum: acc }
}

/// Eviction policy for the compiled-plan cache.
///
/// LRU refreshes an entry's position on every hit (recency wins); FIFO
/// evicts strictly in insertion order (a hit does not protect an
/// entry). FIFO is cheaper per hit and the ablation bench measures what
/// that trade costs under eviction pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    #[default]
    Lru,
    Fifo,
}

/// Bounded cache of compiled queries, keyed by plan signature.
///
/// "At the compute nodes, the executable is run with the plan
/// parameters" — repeated query shapes skip compilation entirely.
pub struct PlanCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
    work_per_node: u64,
    policy: EvictionPolicy,
}

struct CacheInner {
    entries: Vec<(String, Arc<CompiledQuery>)>,
    order: VecDeque<String>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    pub fn new(capacity: usize) -> Self {
        Self::with_work(capacity, DEFAULT_WORK_PER_NODE)
    }

    pub fn with_work(capacity: usize, work_per_node: u64) -> Self {
        Self::with_policy(capacity, work_per_node, EvictionPolicy::Lru)
    }

    pub fn with_policy(capacity: usize, work_per_node: u64, policy: EvictionPolicy) -> Self {
        PlanCache {
            inner: Mutex::new(CacheInner {
                entries: Vec::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
            }),
            capacity: capacity.max(1),
            work_per_node,
            policy,
        }
    }

    /// The configured eviction policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetch a compiled form, compiling (and caching) on miss.
    pub fn get_or_compile(&self, plan: LogicalPlan) -> Arc<CompiledQuery> {
        let signature = plan_signature(&plan);
        {
            let mut inner = self.inner.lock();
            if let Some((_, c)) = inner.entries.iter().find(|(s, _)| *s == signature) {
                let c = Arc::clone(c);
                inner.hits += 1;
                if self.policy == EvictionPolicy::Lru {
                    // Refresh LRU position; FIFO leaves insertion order.
                    inner.order.retain(|s| *s != signature);
                    inner.order.push_back(signature);
                }
                return c;
            }
            inner.misses += 1;
        }
        // Compile outside the lock (concurrent sessions may race; the
        // duplicate work mirrors reality and the last write wins).
        let compiled = Arc::new(compile(plan, self.work_per_node));
        let mut inner = self.inner.lock();
        inner.entries.push((signature.clone(), Arc::clone(&compiled)));
        inner.order.push_back(signature);
        while inner.entries.len() > self.capacity {
            if let Some(evict) = inner.order.pop_front() {
                inner.entries.retain(|(s, _)| *s != evict);
            }
        }
        compiled
    }

    /// Drop every cached plan. Called by the leader after a
    /// schema-changing statement (CREATE/DROP/redistribution): a plan
    /// compiled against the old catalog must never execute against the
    /// new one, even when the Debug signature happens to collide.
    /// Hit/miss counters are preserved.
    pub fn invalidate_all(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.order.clear();
    }

    pub fn stats(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses)
    }

    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_sql::plan::OutCol;
    use redsim_common::DataType;
    use redsim_storage::table::ScanPredicate;

    fn scan(table: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: table.into(),
            projection: vec![0],
            output: vec![OutCol { name: "a".into(), ty: DataType::Int8 }],
            filter: None,
            pruning: ScanPredicate::default(),
        }
    }

    #[test]
    fn cache_hits_skip_compilation() {
        let cache = PlanCache::with_work(4, 10_000);
        let a1 = cache.get_or_compile(scan("t"));
        let a2 = cache.get_or_compile(scan("t"));
        assert_eq!(a1.checksum, a2.checksum);
        assert_eq!(cache.stats(), (1, 1));
    }

    #[test]
    fn different_plans_different_entries() {
        let cache = PlanCache::with_work(4, 1_000);
        cache.get_or_compile(scan("t1"));
        cache.get_or_compile(scan("t2"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn lru_evicts_oldest() {
        let cache = PlanCache::with_work(2, 1_000);
        cache.get_or_compile(scan("a"));
        cache.get_or_compile(scan("b"));
        cache.get_or_compile(scan("a")); // refresh a
        cache.get_or_compile(scan("c")); // evicts b
        assert_eq!(cache.len(), 2);
        cache.get_or_compile(scan("b"));
        assert_eq!(cache.stats().0, 1, "only the refreshed `a` hit");
    }

    #[test]
    fn fifo_ignores_recency() {
        let cache = PlanCache::with_policy(2, 1_000, EvictionPolicy::Fifo);
        cache.get_or_compile(scan("a"));
        cache.get_or_compile(scan("b"));
        cache.get_or_compile(scan("a")); // hit, but FIFO does not refresh
        cache.get_or_compile(scan("c")); // evicts a (oldest insertion)
        cache.get_or_compile(scan("a")); // must recompile
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 1, "only the pre-eviction `a` access hit");
        assert_eq!(misses, 4);
    }

    #[test]
    fn invalidate_all_forces_recompilation() {
        let cache = PlanCache::with_work(4, 1_000);
        cache.get_or_compile(scan("t"));
        cache.invalidate_all();
        assert!(cache.is_empty());
        cache.get_or_compile(scan("t"));
        assert_eq!(cache.stats(), (0, 2), "post-invalidation access is a miss");
    }

    #[test]
    fn compile_cost_scales_with_plan_size() {
        let small = scan("t");
        let big = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(scan("t")),
                keys: vec![],
            }),
            n: 1,
        };
        let t0 = std::time::Instant::now();
        compile(small, 400_000);
        let small_t = t0.elapsed();
        let t1 = std::time::Instant::now();
        compile(big, 400_000);
        let big_t = t1.elapsed();
        assert!(big_t > small_t, "3-node plan must cost more than 1-node");
    }
}
