//! Vectorized expression evaluation.
//!
//! Expressions are evaluated batch-at-a-time: one pass over the
//! expression tree per 4k-row batch, with typed inner loops on the hot
//! arithmetic/comparison paths and a scalar fallback elsewhere. This is
//! the "tight execution" half of the paper's compilation argument; the
//! per-row comparator lives in [`crate::interp`].

use redsim_common::{ColumnData, DataType, Result, RsError, Value};
use redsim_sql::ast::{BinaryOp, UnaryOp};
use redsim_sql::plan::{BoundExpr, ScalarFunc};

/// Evaluate an expression over a batch, producing one output column.
pub fn eval(expr: &BoundExpr, batch: &[ColumnData], rows: usize) -> Result<ColumnData> {
    match expr {
        BoundExpr::Column { index, .. } => {
            let col = batch
                .get(*index)
                .ok_or_else(|| RsError::Execution(format!("column {index} missing")))?;
            Ok(col.clone())
        }
        BoundExpr::Literal(v) => {
            let ty = v.data_type().unwrap_or(DataType::Bool);
            let mut out = ColumnData::new(ty);
            for _ in 0..rows {
                out.push_value(v)?;
            }
            Ok(out)
        }
        BoundExpr::Unary { op, expr } => {
            let inner = eval(expr, batch, rows)?;
            match op {
                UnaryOp::Not => {
                    let mut out = ColumnData::new(DataType::Bool);
                    for i in 0..inner.len() {
                        match inner.get(i) {
                            Value::Null => out.push_null(),
                            Value::Bool(b) => out.push_value(&Value::Bool(!b))?,
                            other => {
                                return Err(RsError::Execution(format!("NOT on {other:?}")))
                            }
                        }
                    }
                    Ok(out)
                }
                UnaryOp::Neg => {
                    let mut out = ColumnData::new(inner.data_type());
                    for i in 0..inner.len() {
                        match inner.get(i) {
                            Value::Null => out.push_null(),
                            v => out.push_value(&negate(v)?)?,
                        }
                    }
                    Ok(out)
                }
            }
        }
        BoundExpr::Binary { left, op, right } => {
            let l = eval(left, batch, rows)?;
            let r = eval(right, batch, rows)?;
            eval_binary(&l, *op, &r, expr.ty())
        }
        BoundExpr::IsNull { expr, negated } => {
            let inner = eval(expr, batch, rows)?;
            let mut out = ColumnData::new(DataType::Bool);
            for i in 0..inner.len() {
                let b = inner.is_null(i) != *negated;
                out.push_value(&Value::Bool(b))?;
            }
            Ok(out)
        }
        BoundExpr::InList { expr, list, negated } => {
            let inner = eval(expr, batch, rows)?;
            let mut out = ColumnData::new(DataType::Bool);
            for i in 0..inner.len() {
                let v = inner.get(i);
                if v.is_null() {
                    out.push_null();
                    continue;
                }
                let found = list.iter().any(|item| v.eq_sql(item));
                out.push_value(&Value::Bool(found != *negated))?;
            }
            Ok(out)
        }
        BoundExpr::Like { expr, pattern, negated } => {
            let inner = eval(expr, batch, rows)?;
            let matcher = LikeMatcher::new(pattern);
            let mut out = ColumnData::new(DataType::Bool);
            for i in 0..inner.len() {
                match inner.get_str(i) {
                    None => out.push_null(),
                    Some(s) => out.push_value(&Value::Bool(matcher.matches(s) != *negated))?,
                }
            }
            Ok(out)
        }
        BoundExpr::Cast { expr, to } => {
            let inner = eval(expr, batch, rows)?;
            let mut out = ColumnData::new(*to);
            for i in 0..inner.len() {
                let v = inner.get(i);
                if v.is_null() {
                    out.push_null();
                } else if *to == DataType::Date {
                    // String → date parses; numerics pass through as days.
                    match &v {
                        Value::Str(s) => out.push_value(&Value::Date(
                            redsim_common::types::parse_date(s)?,
                        ))?,
                        _ => out.push_value(&v.coerce_to(*to)?)?,
                    }
                } else if *to == DataType::Timestamp {
                    match &v {
                        Value::Str(s) => out.push_value(&Value::Timestamp(
                            redsim_common::types::parse_timestamp(s)?,
                        ))?,
                        _ => out.push_value(&v.coerce_to(*to)?)?,
                    }
                } else if matches!(to, DataType::Decimal(_, _)) {
                    match &v {
                        Value::Str(s) => {
                            let scale = match to {
                                DataType::Decimal(_, s2) => *s2,
                                _ => unreachable!(),
                            };
                            out.push_value(&Value::Decimal {
                                units: redsim_common::types::parse_decimal(s, scale)?,
                                scale,
                            })?
                        }
                        _ => out.push_value(&v.coerce_to(*to)?)?,
                    }
                } else if *to == DataType::Int8 && matches!(v, Value::Str(_)) {
                    let s = v.as_str().unwrap().trim();
                    let n: i64 = s
                        .parse()
                        .map_err(|_| RsError::Execution(format!("cannot cast {s:?} to BIGINT")))?;
                    out.push_value(&Value::Int8(n))?;
                } else {
                    out.push_value(&v.coerce_to(*to)?)?;
                }
            }
            Ok(out)
        }
        BoundExpr::Case { branches, else_expr, ty } => {
            let conds: Vec<Vec<bool>> = branches
                .iter()
                .map(|(c, _)| eval_predicate(c, batch, rows))
                .collect::<Result<_>>()?;
            let vals: Vec<ColumnData> = branches
                .iter()
                .map(|(_, v)| eval(v, batch, rows))
                .collect::<Result<_>>()?;
            let else_col = match else_expr {
                Some(e) => Some(eval(e, batch, rows)?),
                None => None,
            };
            let mut out = ColumnData::new(*ty);
            for i in 0..rows {
                let mut done = false;
                for (c, v) in conds.iter().zip(&vals) {
                    if c[i] {
                        out.push_value(&v.get(i).coerce_to(*ty)?)?;
                        done = true;
                        break;
                    }
                }
                if !done {
                    match &else_col {
                        Some(e) => out.push_value(&e.get(i).coerce_to(*ty)?)?,
                        None => out.push_null(),
                    }
                }
            }
            Ok(out)
        }
        BoundExpr::Func { func, args } => {
            let arg = eval(&args[0], batch, rows)?;
            let mut out = ColumnData::new(expr.ty());
            for i in 0..arg.len() {
                if arg.is_null(i) {
                    out.push_null();
                    continue;
                }
                let v = match func {
                    ScalarFunc::Lower => Value::Str(arg.get_str(i).unwrap_or("").to_lowercase()),
                    ScalarFunc::Upper => Value::Str(arg.get_str(i).unwrap_or("").to_uppercase()),
                    ScalarFunc::Length => {
                        Value::Int4(arg.get_str(i).map_or(0, |s| s.chars().count() as i32))
                    }
                    ScalarFunc::Abs => match arg.get(i) {
                        Value::Float8(f) => Value::Float8(f.abs()),
                        Value::Decimal { units, scale } => {
                            Value::Decimal { units: units.abs(), scale }
                        }
                        v => Value::Int8(v.as_i64().unwrap_or(0).abs()),
                    },
                    ScalarFunc::DatePartYear
                    | ScalarFunc::DatePartMonth
                    | ScalarFunc::DatePartDay => {
                        let days = match arg.get(i) {
                            Value::Date(d) => d,
                            Value::Timestamp(us) => us.div_euclid(86_400_000_000) as i32,
                            other => {
                                return Err(RsError::Execution(format!(
                                    "date_part on {other:?}"
                                )))
                            }
                        };
                        let (y, m, d) = redsim_common::types::date_from_epoch_days(days);
                        Value::Int4(match func {
                            ScalarFunc::DatePartYear => y,
                            ScalarFunc::DatePartMonth => m as i32,
                            _ => d as i32,
                        })
                    }
                };
                out.push_value(&v)?;
            }
            Ok(out)
        }
    }
}

/// Evaluate a boolean predicate, mapping NULL to `false` (SQL WHERE
/// semantics: only TRUE passes). Dispatches to the columnar kernels
/// ([`crate::kernels`]) when the expression is covered; otherwise falls
/// back to the `Value`-boxed interpreter below. The `vector_*` property
/// suite pins both paths to bit-identical selection vectors.
pub fn eval_predicate(expr: &BoundExpr, batch: &[ColumnData], rows: usize) -> Result<Vec<bool>> {
    if let Some(sel) = crate::kernels::try_eval_predicate(expr, batch, rows) {
        return Ok(sel);
    }
    eval_predicate_interp(expr, batch, rows)
}

/// The interpreter path of [`eval_predicate`]: materialize the ternary
/// boolean column, then collapse it to a selection vector. Public so
/// kernel coverage can be differentially fuzzed against it.
pub fn eval_predicate_interp(
    expr: &BoundExpr,
    batch: &[ColumnData],
    rows: usize,
) -> Result<Vec<bool>> {
    let col = eval(expr, batch, rows)?;
    let mut out = Vec::with_capacity(col.len());
    for i in 0..col.len() {
        out.push(matches!(col.get(i), Value::Bool(true)));
    }
    Ok(out)
}

pub(crate) fn negate(v: Value) -> Result<Value> {
    Ok(match v {
        Value::Int2(x) => Value::Int2(-x),
        Value::Int4(x) => Value::Int4(-x),
        Value::Int8(x) => Value::Int8(-x),
        Value::Float8(x) => Value::Float8(-x),
        Value::Decimal { units, scale } => Value::Decimal { units: -units, scale },
        other => return Err(RsError::Execution(format!("cannot negate {other:?}"))),
    })
}

fn eval_binary(l: &ColumnData, op: BinaryOp, r: &ColumnData, out_ty: DataType) -> Result<ColumnData> {
    use BinaryOp::*;
    let rows = l.len().max(r.len());
    debug_assert!(l.len() == r.len());
    match op {
        And | Or => {
            let mut out = ColumnData::new(DataType::Bool);
            for i in 0..rows {
                // SQL ternary logic.
                let a = l.get(i).as_bool();
                let b = r.get(i).as_bool();
                let v = match op {
                    And => match (a, b) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    },
                    Or => match (a, b) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    },
                    _ => unreachable!(),
                };
                match v {
                    Some(b) => out.push_value(&Value::Bool(b))?,
                    None => out.push_null(),
                }
            }
            Ok(out)
        }
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let mut out = ColumnData::new(DataType::Bool);
            // Fast path: both integer-family columns.
            if int_family(l.data_type()) && int_family(r.data_type()) {
                for i in 0..rows {
                    match (l.get_i64(i), r.get_i64(i)) {
                        (Some(a), Some(b)) => {
                            out.push_value(&Value::Bool(cmp_holds(a.cmp(&b), op)))?
                        }
                        _ => out.push_null(),
                    }
                }
                return Ok(out);
            }
            for i in 0..rows {
                let (a, b) = (l.get(i), r.get(i));
                if a.is_null() || b.is_null() {
                    out.push_null();
                    continue;
                }
                out.push_value(&Value::Bool(cmp_holds(a.cmp_sql(&b), op)))?;
            }
            Ok(out)
        }
        Concat => {
            let mut out = ColumnData::new(DataType::Varchar);
            for i in 0..rows {
                let (a, b) = (l.get(i), r.get(i));
                if a.is_null() || b.is_null() {
                    out.push_null();
                } else {
                    out.push_value(&Value::Str(format!("{a}{b}")))?;
                }
            }
            Ok(out)
        }
        Add | Sub | Mul | Div | Mod => {
            let mut out = ColumnData::new(out_ty);
            // Fast paths keep the hot loops typed.
            match (&out_ty, l, r) {
                (DataType::Int8, _, _) if int_family(l.data_type()) && int_family(r.data_type()) => {
                    for i in 0..rows {
                        match (l.get_i64(i), r.get_i64(i)) {
                            (Some(a), Some(b)) => {
                                out.push_value(&Value::Int8(int_arith(a, op, b)?))?
                            }
                            _ => out.push_null(),
                        }
                    }
                }
                (DataType::Float8, _, _) => {
                    for i in 0..rows {
                        match (l.get_f64(i), r.get_f64(i)) {
                            (Some(a), Some(b)) => {
                                out.push_value(&Value::Float8(float_arith(a, op, b)))?
                            }
                            _ => out.push_null(),
                        }
                    }
                }
                _ => {
                    for i in 0..rows {
                        let (a, b) = (l.get(i), r.get(i));
                        if a.is_null() || b.is_null() {
                            out.push_null();
                        } else {
                            out.push_value(&scalar_arith(&a, op, &b)?.coerce_to(out_ty)?)?;
                        }
                    }
                }
            }
            Ok(out)
        }
    }
}

fn int_family(t: DataType) -> bool {
    t.is_integer() || matches!(t, DataType::Date | DataType::Timestamp | DataType::Bool)
}

pub(crate) fn cmp_holds(ord: std::cmp::Ordering, op: BinaryOp) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinaryOp::Eq => ord == Equal,
        BinaryOp::NotEq => ord != Equal,
        BinaryOp::Lt => ord == Less,
        BinaryOp::LtEq => ord != Greater,
        BinaryOp::Gt => ord == Greater,
        BinaryOp::GtEq => ord != Less,
        _ => unreachable!(),
    }
}

fn int_arith(a: i64, op: BinaryOp, b: i64) -> Result<i64> {
    let overflow = || RsError::Execution("integer overflow".into());
    Ok(match op {
        BinaryOp::Add => a.checked_add(b).ok_or_else(overflow)?,
        BinaryOp::Sub => a.checked_sub(b).ok_or_else(overflow)?,
        BinaryOp::Mul => a.checked_mul(b).ok_or_else(overflow)?,
        BinaryOp::Div => {
            if b == 0 {
                return Err(RsError::Execution("division by zero".into()));
            }
            a / b
        }
        BinaryOp::Mod => {
            if b == 0 {
                return Err(RsError::Execution("division by zero".into()));
            }
            a % b
        }
        _ => unreachable!(),
    })
}

fn float_arith(a: f64, op: BinaryOp, b: f64) -> f64 {
    match op {
        BinaryOp::Add => a + b,
        BinaryOp::Sub => a - b,
        BinaryOp::Mul => a * b,
        BinaryOp::Div => a / b,
        BinaryOp::Mod => a % b,
        _ => unreachable!(),
    }
}

/// Scalar arithmetic used by the generic path and the interpreter.
pub fn scalar_arith(a: &Value, op: BinaryOp, b: &Value) -> Result<Value> {
    // Decimal-exact when both are decimals and the op is +,-,*.
    if let (Value::Decimal { units: ua, scale: sa }, Value::Decimal { units: ub, scale: sb }) =
        (a, b)
    {
        use redsim_common::types::rescale;
        match op {
            BinaryOp::Add | BinaryOp::Sub => {
                let s = (*sa).max(*sb);
                let x = rescale(*ua, *sa, s)?;
                let y = rescale(*ub, *sb, s)?;
                let units = if op == BinaryOp::Add { x + y } else { x - y };
                return Ok(Value::Decimal { units, scale: s });
            }
            BinaryOp::Mul => {
                let s = (*sa + *sb).min(38);
                let units = ua
                    .checked_mul(*ub)
                    .ok_or_else(|| RsError::Execution("decimal overflow".into()))?;
                // Product scale is sa+sb naturally.
                return Ok(Value::Decimal {
                    units: redsim_common::types::rescale(units, sa + sb, s)?,
                    scale: s,
                });
            }
            _ => {}
        }
    }
    // Integer-family exact.
    if let (Some(x), Some(y)) = (a.as_i64(), b.as_i64()) {
        if !matches!(a, Value::Float8(_) | Value::Decimal { .. })
            && !matches!(b, Value::Float8(_) | Value::Decimal { .. })
        {
            return Ok(Value::Int8(int_arith(x, op, y)?));
        }
    }
    // Fallback: f64.
    match (a.as_f64(), b.as_f64()) {
        (Some(x), Some(y)) => {
            if matches!(op, BinaryOp::Div | BinaryOp::Mod) && y == 0.0 {
                return Err(RsError::Execution("division by zero".into()));
            }
            Ok(Value::Float8(float_arith(x, op, y)))
        }
        _ => Err(RsError::Execution(format!("cannot apply {op:?} to {a:?} and {b:?}"))),
    }
}

/// SQL LIKE matcher: `%` = any run, `_` = any single char.
pub struct LikeMatcher {
    pattern: Vec<char>,
}

impl LikeMatcher {
    pub fn new(pattern: &str) -> Self {
        LikeMatcher { pattern: pattern.chars().collect() }
    }

    pub fn matches(&self, s: &str) -> bool {
        let text: Vec<char> = s.chars().collect();
        // Iterative two-pointer with backtracking on the last %.
        let (mut ti, mut pi) = (0usize, 0usize);
        let (mut star_p, mut star_t) = (usize::MAX, 0usize);
        while ti < text.len() {
            if pi < self.pattern.len()
                && (self.pattern[pi] == '_' || self.pattern[pi] == text[ti])
            {
                ti += 1;
                pi += 1;
            } else if pi < self.pattern.len() && self.pattern[pi] == '%' {
                star_p = pi;
                star_t = ti;
                pi += 1;
            } else if star_p != usize::MAX {
                pi = star_p + 1;
                star_t += 1;
                ti = star_t;
            } else {
                return false;
            }
        }
        while pi < self.pattern.len() && self.pattern[pi] == '%' {
            pi += 1;
        }
        pi == self.pattern.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int8_col(vals: &[Option<i64>]) -> ColumnData {
        let mut c = ColumnData::new(DataType::Int8);
        for v in vals {
            match v {
                Some(x) => c.push_value(&Value::Int8(*x)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    }

    fn col_expr(i: usize, ty: DataType) -> BoundExpr {
        BoundExpr::Column { index: i, ty }
    }

    #[test]
    fn arithmetic_and_comparison() {
        let batch = vec![int8_col(&[Some(1), Some(2), None]), int8_col(&[Some(10), Some(20), Some(30)])];
        let sum = BoundExpr::Binary {
            left: Box::new(col_expr(0, DataType::Int8)),
            op: BinaryOp::Add,
            right: Box::new(col_expr(1, DataType::Int8)),
        };
        let out = eval(&sum, &batch, 3).unwrap();
        assert_eq!(out.get_i64(0), Some(11));
        assert_eq!(out.get_i64(1), Some(22));
        assert!(out.is_null(2));

        let cmp = BoundExpr::Binary {
            left: Box::new(col_expr(0, DataType::Int8)),
            op: BinaryOp::Lt,
            right: Box::new(BoundExpr::Literal(Value::Int8(2))),
        };
        let sel = eval_predicate(&cmp, &batch, 3).unwrap();
        assert_eq!(sel, vec![true, false, false]); // NULL → false
    }

    #[test]
    fn ternary_logic_and_or() {
        let t = BoundExpr::Literal(Value::Bool(true));
        let n = BoundExpr::Literal(Value::Null);
        let or = BoundExpr::Binary { left: Box::new(n.clone()), op: BinaryOp::Or, right: Box::new(t.clone()) };
        let out = eval(&or, &[], 1).unwrap();
        assert_eq!(out.get(0), Value::Bool(true), "NULL OR TRUE = TRUE");
        let and = BoundExpr::Binary { left: Box::new(n), op: BinaryOp::And, right: Box::new(t) };
        let out = eval(&and, &[], 1).unwrap();
        assert!(out.is_null(0), "NULL AND TRUE = NULL");
    }

    #[test]
    fn division_by_zero_errors() {
        let e = BoundExpr::Binary {
            left: Box::new(BoundExpr::Literal(Value::Int8(1))),
            op: BinaryOp::Div,
            right: Box::new(BoundExpr::Literal(Value::Int8(0))),
        };
        assert!(eval(&e, &[], 1).is_err());
    }

    #[test]
    fn like_matching() {
        let m = LikeMatcher::new("http://%amazon%");
        assert!(m.matches("http://www.amazon.com"));
        assert!(!m.matches("https://www.amazon.com"));
        assert!(LikeMatcher::new("a_c").matches("abc"));
        assert!(!LikeMatcher::new("a_c").matches("abbc"));
        assert!(LikeMatcher::new("%").matches(""));
        assert!(LikeMatcher::new("%%x").matches("zzzx"));
        assert!(!LikeMatcher::new("x%").matches("yx"));
    }

    #[test]
    fn decimal_exact_arithmetic() {
        let a = Value::Decimal { units: 150, scale: 2 }; // 1.50
        let b = Value::Decimal { units: 25, scale: 1 }; // 2.5
        let sum = scalar_arith(&a, BinaryOp::Add, &b).unwrap();
        assert_eq!(sum.to_string(), "4.00");
        let prod = scalar_arith(&a, BinaryOp::Mul, &b).unwrap();
        assert_eq!(prod.to_string(), "3.750");
    }

    #[test]
    fn case_expression_eval() {
        let batch = vec![int8_col(&[Some(-5), Some(5), None])];
        let case = BoundExpr::Case {
            branches: vec![(
                BoundExpr::Binary {
                    left: Box::new(col_expr(0, DataType::Int8)),
                    op: BinaryOp::Lt,
                    right: Box::new(BoundExpr::Literal(Value::Int8(0))),
                },
                BoundExpr::Literal(Value::Str("neg".into())),
            )],
            else_expr: Some(Box::new(BoundExpr::Literal(Value::Str("pos".into())))),
            ty: DataType::Varchar,
        };
        let out = eval(&case, &batch, 3).unwrap();
        assert_eq!(out.get_str(0), Some("neg"));
        assert_eq!(out.get_str(1), Some("pos"));
        assert_eq!(out.get_str(2), Some("pos")); // NULL cond → ELSE
    }

    #[test]
    fn scalar_functions() {
        let mut s = ColumnData::new(DataType::Varchar);
        s.push_value(&Value::Str("HeLLo".into())).unwrap();
        let batch = vec![s];
        let lower = BoundExpr::Func {
            func: ScalarFunc::Lower,
            args: vec![col_expr(0, DataType::Varchar)],
        };
        assert_eq!(eval(&lower, &batch, 1).unwrap().get_str(0), Some("hello"));
        let len = BoundExpr::Func {
            func: ScalarFunc::Length,
            args: vec![col_expr(0, DataType::Varchar)],
        };
        assert_eq!(eval(&len, &batch, 1).unwrap().get_i64(0), Some(5));
    }

    #[test]
    fn date_part_eval() {
        let mut d = ColumnData::new(DataType::Date);
        d.push_value(&Value::Date(redsim_common::types::epoch_days_from_date(2015, 5, 31)))
            .unwrap();
        let batch = vec![d];
        for (f, want) in [
            (ScalarFunc::DatePartYear, 2015),
            (ScalarFunc::DatePartMonth, 5),
            (ScalarFunc::DatePartDay, 31),
        ] {
            let e = BoundExpr::Func { func: f, args: vec![col_expr(0, DataType::Date)] };
            assert_eq!(eval(&e, &batch, 1).unwrap().get_i64(0), Some(want));
        }
    }

    #[test]
    fn in_list_and_is_null() {
        let batch = vec![int8_col(&[Some(1), Some(5), None])];
        let inl = BoundExpr::InList {
            expr: Box::new(col_expr(0, DataType::Int8)),
            list: vec![Value::Int8(1), Value::Int8(2)],
            negated: false,
        };
        let sel = eval_predicate(&inl, &batch, 3).unwrap();
        assert_eq!(sel, vec![true, false, false]);
        let isn = BoundExpr::IsNull { expr: Box::new(col_expr(0, DataType::Int8)), negated: false };
        let sel = eval_predicate(&isn, &batch, 3).unwrap();
        assert_eq!(sel, vec![false, false, true]);
    }
}

#[cfg(test)]
mod like_properties {
    use super::LikeMatcher;
    use redsim_testkit::prop::{self, Config};

    /// Exponential-but-correct reference implementation.
    fn oracle(pattern: &[char], text: &[char]) -> bool {
        match pattern.split_first() {
            None => text.is_empty(),
            Some(('%', rest)) => {
                (0..=text.len()).any(|k| oracle(rest, &text[k..]))
            }
            Some(('_', rest)) => !text.is_empty() && oracle(rest, &text[1..]),
            Some((c, rest)) => text.first() == Some(c) && oracle(rest, &text[1..]),
        }
    }

    #[test]
    fn matcher_agrees_with_oracle() {
        let gen = prop::pair(prop::pattern("[ab%_]{0,10}"), prop::pattern("[ab]{0,12}"));
        prop::check(
            "matcher_agrees_with_oracle",
            &Config::with_cases(512),
            &gen,
            |(pattern, text)| {
                let fast = LikeMatcher::new(pattern).matches(text);
                let slow = oracle(
                    &pattern.chars().collect::<Vec<_>>(),
                    &text.chars().collect::<Vec<_>>(),
                );
                assert_eq!(fast, slow, "pattern={:?} text={:?}", pattern, text);
            },
        );
    }
}
