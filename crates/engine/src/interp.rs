//! Row-at-a-time interpreted expression evaluation.
//!
//! The non-compiled comparator (experiment E7): every row walks the whole
//! expression tree, boxing intermediate `Value`s — the "overhead of
//! execution in a general-purpose set of executor functions" the paper
//! says compilation avoids. Also the evaluator of the row-store baseline
//! engine.

use crate::expr::{scalar_arith, LikeMatcher};
use redsim_common::{Result, RsError, Value};
use redsim_sql::ast::{BinaryOp, UnaryOp};
use redsim_sql::plan::{BoundExpr, ScalarFunc};

/// Evaluate an expression against one row.
pub fn eval_row(expr: &BoundExpr, row: &[Value]) -> Result<Value> {
    Ok(match expr {
        BoundExpr::Column { index, .. } => row
            .get(*index)
            .cloned()
            .ok_or_else(|| RsError::Execution(format!("column {index} missing")))?,
        BoundExpr::Literal(v) => v.clone(),
        BoundExpr::Unary { op, expr } => {
            let v = eval_row(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            match op {
                UnaryOp::Not => Value::Bool(!v.as_bool().ok_or_else(|| {
                    RsError::Execution("NOT on non-boolean".into())
                })?),
                UnaryOp::Neg => crate::expr::negate(v)?,
            }
        }
        BoundExpr::Binary { left, op, right } => {
            let a = eval_row(left, row)?;
            match op {
                BinaryOp::And => {
                    // Short-circuit with ternary logic.
                    match a.as_bool() {
                        Some(false) => Value::Bool(false),
                        _ => {
                            let b = eval_row(right, row)?;
                            match (a.as_bool(), b.as_bool()) {
                                (_, Some(false)) => Value::Bool(false),
                                (Some(true), Some(true)) => Value::Bool(true),
                                _ => Value::Null,
                            }
                        }
                    }
                }
                BinaryOp::Or => match a.as_bool() {
                    Some(true) => Value::Bool(true),
                    _ => {
                        let b = eval_row(right, row)?;
                        match (a.as_bool(), b.as_bool()) {
                            (_, Some(true)) => Value::Bool(true),
                            (Some(false), Some(false)) => Value::Bool(false),
                            _ => Value::Null,
                        }
                    }
                },
                op if op.is_comparison() => {
                    let b = eval_row(right, row)?;
                    if a.is_null() || b.is_null() {
                        Value::Null
                    } else {
                        use std::cmp::Ordering::*;
                        let ord = a.cmp_sql(&b);
                        Value::Bool(match op {
                            BinaryOp::Eq => ord == Equal,
                            BinaryOp::NotEq => ord != Equal,
                            BinaryOp::Lt => ord == Less,
                            BinaryOp::LtEq => ord != Greater,
                            BinaryOp::Gt => ord == Greater,
                            BinaryOp::GtEq => ord != Less,
                            _ => unreachable!(),
                        })
                    }
                }
                BinaryOp::Concat => {
                    let b = eval_row(right, row)?;
                    if a.is_null() || b.is_null() {
                        Value::Null
                    } else {
                        Value::Str(format!("{a}{b}"))
                    }
                }
                op => {
                    let b = eval_row(right, row)?;
                    if a.is_null() || b.is_null() {
                        Value::Null
                    } else {
                        scalar_arith(&a, *op, &b)?
                    }
                }
            }
        }
        BoundExpr::IsNull { expr, negated } => {
            let v = eval_row(expr, row)?;
            Value::Bool(v.is_null() != *negated)
        }
        BoundExpr::InList { expr, list, negated } => {
            let v = eval_row(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            Value::Bool(list.iter().any(|x| v.eq_sql(x)) != *negated)
        }
        BoundExpr::Like { expr, pattern, negated } => {
            let v = eval_row(expr, row)?;
            match v.as_str() {
                None => Value::Null,
                // A fresh matcher per row: this path is *meant* to model
                // naive interpretation.
                Some(s) => Value::Bool(LikeMatcher::new(pattern).matches(s) != *negated),
            }
        }
        BoundExpr::Cast { expr, to } => {
            let v = eval_row(expr, row)?;
            if v.is_null() {
                Value::Null
            } else {
                v.coerce_to(*to)?
            }
        }
        BoundExpr::Case { branches, else_expr, ty } => {
            for (c, val) in branches {
                if matches!(eval_row(c, row)?, Value::Bool(true)) {
                    return eval_row(val, row)?.coerce_to(*ty);
                }
            }
            match else_expr {
                Some(e) => eval_row(e, row)?.coerce_to(*ty)?,
                None => Value::Null,
            }
        }
        BoundExpr::Func { func, args } => {
            let v = eval_row(&args[0], row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            match func {
                ScalarFunc::Lower => Value::Str(v.to_string().to_lowercase()),
                ScalarFunc::Upper => Value::Str(v.to_string().to_uppercase()),
                ScalarFunc::Length => Value::Int4(v.to_string().chars().count() as i32),
                ScalarFunc::Abs => match v {
                    Value::Float8(f) => Value::Float8(f.abs()),
                    Value::Decimal { units, scale } => Value::Decimal { units: units.abs(), scale },
                    other => Value::Int8(other.as_i64().unwrap_or(0).abs()),
                },
                ScalarFunc::DatePartYear | ScalarFunc::DatePartMonth | ScalarFunc::DatePartDay => {
                    let days = match v {
                        Value::Date(d) => d,
                        Value::Timestamp(us) => us.div_euclid(86_400_000_000) as i32,
                        other => {
                            return Err(RsError::Execution(format!("date_part on {other:?}")))
                        }
                    };
                    let (y, m, d) = redsim_common::types::date_from_epoch_days(days);
                    Value::Int4(match func {
                        ScalarFunc::DatePartYear => y,
                        ScalarFunc::DatePartMonth => m as i32,
                        _ => d as i32,
                    })
                }
            }
        }
    })
}

/// Predicate semantics: only TRUE passes.
pub fn row_passes(expr: &BoundExpr, row: &[Value]) -> Result<bool> {
    Ok(matches!(eval_row(expr, row)?, Value::Bool(true)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_common::DataType;

    #[test]
    fn matches_vectorized_semantics() {
        let row = vec![Value::Int8(5), Value::Null, Value::Str("abc".into())];
        let col = |i: usize, ty: DataType| BoundExpr::Column { index: i, ty };
        // 5 + NULL = NULL.
        let e = BoundExpr::Binary {
            left: Box::new(col(0, DataType::Int8)),
            op: BinaryOp::Add,
            right: Box::new(col(1, DataType::Int8)),
        };
        assert!(eval_row(&e, &row).unwrap().is_null());
        // LIKE.
        let e = BoundExpr::Like {
            expr: Box::new(col(2, DataType::Varchar)),
            pattern: "a%".into(),
            negated: false,
        };
        assert_eq!(eval_row(&e, &row).unwrap(), Value::Bool(true));
    }

    #[test]
    fn short_circuit_avoids_rhs_error() {
        // FALSE AND (1/0 = 1) must not error.
        let div0 = BoundExpr::Binary {
            left: Box::new(BoundExpr::Literal(Value::Int8(1))),
            op: BinaryOp::Div,
            right: Box::new(BoundExpr::Literal(Value::Int8(0))),
        };
        let cmp = BoundExpr::Binary {
            left: Box::new(div0),
            op: BinaryOp::Eq,
            right: Box::new(BoundExpr::Literal(Value::Int8(1))),
        };
        let e = BoundExpr::Binary {
            left: Box::new(BoundExpr::Literal(Value::Bool(false))),
            op: BinaryOp::And,
            right: Box::new(cmp),
        };
        assert_eq!(eval_row(&e, &[]).unwrap(), Value::Bool(false));
    }
}
