//! Row-oriented, single-threaded baseline engine.
//!
//! Plays two roles in the reproduction:
//!
//! 1. **The legacy comparator for experiment E1** — the intro's "existing
//!    scale-out commercial data warehouse" that took over a week on the
//!    2-trillion-row join the MPP columnar engine finished in 14 minutes.
//!    This engine stores rows on a heap, reads every column of every row,
//!    uses no compression, no zone maps, and a single thread.
//! 2. **The uncompiled executor for experiment E7** — the same logical
//!    plans run here through the per-row interpreter, standing in for
//!    "execution in a general-purpose set of executor functions".

use crate::exec::AggState;
use crate::hashkey::HKey;
use crate::interp::{eval_row, row_passes};
use redsim_common::{FxHashMap, Result, Row, RsError, Value};
use redsim_sql::ast::JoinType;
use redsim_sql::plan::LogicalPlan;

/// Supplies rows for a scan: (table, projection) → projected rows.
pub trait RowSource {
    fn scan_rows(&self, table: &str, projection: &[usize]) -> Result<Vec<Row>>;
}

/// A heap-of-rows table store.
#[derive(Debug, Default)]
pub struct RowStore {
    tables: std::collections::HashMap<String, Vec<Row>>,
}

impl RowStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn insert_table(&mut self, name: impl Into<String>, rows: Vec<Row>) {
        self.tables.insert(name.into(), rows);
    }

    pub fn table_rows(&self, name: &str) -> Option<&[Row]> {
        self.tables.get(name).map(|v| v.as_slice())
    }
}

impl RowSource for RowStore {
    fn scan_rows(&self, table: &str, projection: &[usize]) -> Result<Vec<Row>> {
        let rows = self
            .tables
            .get(table)
            .ok_or_else(|| RsError::NotFound(format!("table {table:?}")))?;
        // A row store reads whole rows regardless of projection — that is
        // the point of the comparison — but the output must still carry
        // only the projected columns so plans bind identically.
        Ok(rows
            .iter()
            .map(|r| Row::new(projection.iter().map(|&i| r.get(i).clone()).collect()))
            .collect())
    }
}

/// Execute a logical plan row-at-a-time against a [`RowSource`].
pub fn run_plan(plan: &LogicalPlan, source: &dyn RowSource) -> Result<Vec<Row>> {
    Ok(match plan {
        LogicalPlan::Scan { table, projection, filter, .. } => {
            let mut rows = source.scan_rows(table, projection)?;
            if let Some(f) = filter {
                let mut kept = Vec::new();
                for r in rows.drain(..) {
                    if row_passes(f, r.values())? {
                        kept.push(r);
                    }
                }
                kept
            } else {
                rows
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            let rows = run_plan(input, source)?;
            let mut kept = Vec::new();
            for r in rows {
                if row_passes(predicate, r.values())? {
                    kept.push(r);
                }
            }
            kept
        }
        LogicalPlan::Project { input, exprs, .. } => {
            let rows = run_plan(input, source)?;
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let vals: Result<Vec<Value>> =
                    exprs.iter().map(|e| eval_row(e, r.values())).collect();
                out.push(Row::new(vals?));
            }
            out
        }
        LogicalPlan::Join { left, right, join_type, left_key, right_key, residual, .. } => {
            let left_rows = run_plan(left, source)?;
            let right_rows = run_plan(right, source)?;
            let rw = right.output().len();
            let mut table: FxHashMap<HKey, Vec<usize>> = FxHashMap::default();
            for (i, r) in right_rows.iter().enumerate() {
                let k = HKey::from_value(r.get(*right_key));
                if !k.is_null() {
                    table.entry(k).or_default().push(i);
                }
            }
            let mut out = Vec::new();
            for l in &left_rows {
                let k = HKey::from_value(l.get(*left_key));
                let mut matched = false;
                if !k.is_null() {
                    if let Some(list) = table.get(&k) {
                        for &j in list {
                            let mut vals = l.values().to_vec();
                            vals.extend(right_rows[j].values().iter().cloned());
                            if let Some(res) = residual {
                                if !row_passes(res, &vals)? {
                                    continue;
                                }
                            }
                            matched = true;
                            out.push(Row::new(vals));
                        }
                    }
                }
                if !matched && *join_type == JoinType::Left {
                    let mut vals = l.values().to_vec();
                    vals.extend(std::iter::repeat_n(Value::Null, rw));
                    out.push(Row::new(vals));
                }
            }
            out
        }
        LogicalPlan::Aggregate { input, group_by, aggs, output } => {
            let rows = run_plan(input, source)?;
            let mut groups: FxHashMap<Vec<HKey>, (Vec<Value>, Vec<AggState>)> =
                FxHashMap::default();
            for r in rows {
                let key_vals: Result<Vec<Value>> =
                    group_by.iter().map(|g| eval_row(g, r.values())).collect();
                let key_vals = key_vals?;
                let key: Vec<HKey> = key_vals.iter().map(HKey::from_value).collect();
                let entry = groups.entry(key).or_insert_with(|| {
                    (key_vals.clone(), aggs.iter().map(AggState::init).collect())
                });
                for (st, a) in entry.1.iter_mut().zip(aggs) {
                    let v = match &a.arg {
                        Some(e) => Some(eval_row(e, r.values())?),
                        None => None,
                    };
                    st.update(a, v.as_ref())?;
                }
            }
            if group_by.is_empty() && groups.is_empty() {
                groups.insert(
                    Vec::new(),
                    (Vec::new(), aggs.iter().map(AggState::init).collect()),
                );
            }
            let mut out = Vec::with_capacity(groups.len());
            for (_, (key_vals, states)) in groups {
                let mut vals = key_vals;
                for (st, oc) in states.into_iter().zip(&output[group_by.len()..]) {
                    vals.push(st.finish().coerce_to(oc.ty)?);
                }
                out.push(Row::new(vals));
            }
            out
        }
        LogicalPlan::Sort { input, keys } => {
            let rows = run_plan(input, source)?;
            // Precompute sort keys per row.
            let mut keyed: Vec<(Vec<Value>, Row)> = Vec::with_capacity(rows.len());
            for r in rows {
                let kv: Result<Vec<Value>> =
                    keys.iter().map(|(k, _)| eval_row(k, r.values())).collect();
                keyed.push((kv?, r));
            }
            keyed.sort_by(|(ka, _), (kb, _)| {
                for ((_, desc), (a, b)) in keys.iter().zip(ka.iter().zip(kb)) {
                    let o = a.cmp_sql(b);
                    let o = if *desc { o.reverse() } else { o };
                    if o != std::cmp::Ordering::Equal {
                        return o;
                    }
                }
                std::cmp::Ordering::Equal
            });
            keyed.into_iter().map(|(_, r)| r).collect()
        }
        LogicalPlan::Limit { input, n } => {
            let mut rows = run_plan(input, source)?;
            rows.truncate(*n as usize);
            rows
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use redsim_sql::catalog::{StaticCatalog, TableMeta};
    use redsim_sql::{parse, Binder, Statement};
    use redsim_common::{ColumnDef, DataType, Schema};
    use redsim_distribution::DistStyle;
    use redsim_storage::table::SortKeySpec;

    fn setup() -> (StaticCatalog, RowStore) {
        let catalog = StaticCatalog {
            tables: vec![TableMeta {
                name: "t".into(),
                schema: Schema::new(vec![
                    ColumnDef::new("k", DataType::Int8),
                    ColumnDef::new("v", DataType::Varchar),
                ])
                .unwrap(),
                dist_style: DistStyle::Even,
                sort_key: SortKeySpec::None,
                rows: 6,
            }],
            slices: 1,
        };
        let mut store = RowStore::new();
        store.insert_table(
            "t",
            (0..6i64)
                .map(|i| Row::new(vec![Value::Int8(i % 3), Value::Str(format!("v{i}"))]))
                .collect(),
        );
        (catalog, store)
    }

    fn run(sql: &str, catalog: &StaticCatalog, store: &RowStore) -> Vec<Row> {
        let stmt = parse(sql).unwrap();
        let plan = match stmt {
            Statement::Select(s) => Binder::new(catalog).bind_select(&s).unwrap(),
            _ => panic!(),
        };
        run_plan(&plan, store).unwrap()
    }

    #[test]
    fn filter_project() {
        let (cat, store) = setup();
        let rows = run("SELECT v FROM t WHERE k = 1", &cat, &store);
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn group_and_order() {
        let (cat, store) = setup();
        let rows = run(
            "SELECT k, COUNT(*) AS n FROM t GROUP BY k ORDER BY k",
            &cat,
            &store,
        );
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].get(0).as_i64(), Some(0));
        assert_eq!(rows[0].get(1).as_i64(), Some(2));
    }

    #[test]
    fn empty_aggregate_yields_zero_count() {
        let (cat, store) = setup();
        let rows = run("SELECT COUNT(*) FROM t WHERE k = 99", &cat, &store);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(0).as_i64(), Some(0));
    }

    #[test]
    fn self_join() {
        let (cat, store) = setup();
        let rows = run(
            "SELECT a.v FROM t a JOIN t b ON a.k = b.k WHERE b.v = 'v0'",
            &cat,
            &store,
        );
        assert_eq!(rows.len(), 2); // k=0 appears twice on the left
    }
}
