//! Hashable key wrapper for join/aggregation hash tables.
//!
//! `Value` is not `Hash`/`Eq` (floats); `HKey` normalizes values into a
//! hashable form consistent with [`redsim_distribution::style::dist_hash`]
//! for the integer family, so hash-table joins agree with slice routing.

use redsim_common::Value;
use std::sync::Arc;

/// A hashable, equality-comparable key derived from a `Value`.
///
/// Strings are `Arc<str>` so cloning a key (the per-row hot path in
/// aggregation) is a refcount bump, not a heap copy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HKey {
    Null,
    Int(i64),
    Str(Arc<str>),
    /// Float by bit pattern (NaN keys collide with themselves).
    Float(u64),
    Decimal(i128, u8),
    Bool(bool),
}

impl HKey {
    pub fn from_value(v: &Value) -> HKey {
        match v {
            Value::Null => HKey::Null,
            Value::Bool(b) => HKey::Bool(*b),
            Value::Int2(_) | Value::Int4(_) | Value::Int8(_) | Value::Date(_)
            | Value::Timestamp(_) => HKey::Int(v.as_i64().expect("integer family")),
            Value::Float8(f) => HKey::Float(f.to_bits()),
            Value::Str(s) => HKey::Str(Arc::from(s.as_str())),
            Value::Decimal { units, scale } => HKey::Decimal(*units, *scale),
        }
    }

    /// Build directly from a column slot, avoiding the `Value`
    /// round-trip on the hot join/aggregation paths.
    pub fn from_column(c: &redsim_common::ColumnData, i: usize) -> HKey {
        use redsim_common::ColumnData as CD;
        if c.is_null(i) {
            return HKey::Null;
        }
        match c {
            CD::Bool { data, .. } => HKey::Bool(data[i]),
            CD::Int2 { data, .. } => HKey::Int(data[i] as i64),
            CD::Int4 { data, .. } => HKey::Int(data[i] as i64),
            CD::Int8 { data, .. } => HKey::Int(data[i]),
            CD::Date { data, .. } => HKey::Int(data[i] as i64),
            CD::Timestamp { data, .. } => HKey::Int(data[i]),
            CD::Float8 { data, .. } => HKey::Float(data[i].to_bits()),
            CD::Str { data, .. } => HKey::Str(Arc::from(data.get(i))),
            CD::Decimal { data, scale, .. } => HKey::Decimal(data[i], *scale),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, HKey::Null)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_family_collapses() {
        assert_eq!(HKey::from_value(&Value::Int4(7)), HKey::from_value(&Value::Int8(7)));
        assert_eq!(HKey::from_value(&Value::Int2(7)), HKey::from_value(&Value::Int8(7)));
    }

    #[test]
    fn nulls_are_distinguishable() {
        assert!(HKey::from_value(&Value::Null).is_null());
        assert_ne!(HKey::from_value(&Value::Null), HKey::from_value(&Value::Int8(0)));
    }

    #[test]
    fn usable_in_hash_maps() {
        let mut m = std::collections::HashMap::new();
        m.insert(HKey::from_value(&Value::Str("a".into())), 1);
        m.insert(HKey::from_value(&Value::Float8(1.5)), 2);
        assert_eq!(m[&HKey::from_value(&Value::Str("a".into()))], 1);
        assert_eq!(m[&HKey::from_value(&Value::Float8(1.5))], 2);
    }
}
