//! # redsim-engine
//!
//! Query execution (§2.1 of the paper):
//!
//! > "The executable and plan parameters are sent to each compute node
//! > participating in the query. … Each slice in the compute node may run
//! > multiple operations such as scanning, filtering, processing joins,
//! > etc., in parallel."
//!
//! * [`expr`] — vectorized (batch-at-a-time) expression evaluation.
//! * [`kernels`] — typed columnar predicate kernels (selection vectors
//!   straight off `ColumnData` slices, no `Value` boxing); `expr` is the
//!   fallback for uncovered expressions and the differential-fuzz
//!   reference.
//! * [`interp`] — a deliberately row-at-a-time, `Value`-boxed interpreter:
//!   the non-compiled comparator for the paper's claim that query
//!   compilation's "fixed overhead per query … is generally amortized by
//!   the tighter execution" (experiment E7).
//! * [`exec`] — the distributed executor: per-slice parallel fragments
//!   (std scoped threads via testkit::par), broadcast/redistribute exchanges with
//!   byte accounting (experiment E11), partial/final aggregation at the
//!   leader.
//! * [`compile`] — query "compilation": plan specialization with a
//!   deliberate fixed cost, plus the LRU plan cache that amortizes it.
//! * [`baseline`] — a single-threaded, row-oriented engine standing in
//!   for the intro's legacy scale-out warehouse (experiment E1).

pub mod baseline;
pub mod compile;
pub mod exec;
pub mod expr;
pub mod hashkey;
pub mod interp;
pub mod kernels;

pub use compile::{CompiledQuery, EvictionPolicy, PlanCache};
pub use exec::{ExecMetrics, Executor, QueryOutput, TableProvider};
