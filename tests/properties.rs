//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;
use redshift_sim::common::{ColumnData, ColumnDef, DataType, Schema, Value};
use redshift_sim::core::{Cluster, ClusterConfig};
use redshift_sim::storage::encoding::{decode_column, encode_column, Encoding};
use redshift_sim::zorder::ZSpace;
use std::sync::Arc;

// ---------------------------------------------------------------------
// Encoding round-trips for arbitrary data shapes.
// ---------------------------------------------------------------------

fn arb_int_col() -> impl Strategy<Value = ColumnData> {
    prop::collection::vec(prop::option::of(any::<i64>()), 0..300).prop_map(|vals| {
        let mut c = ColumnData::new(DataType::Int8);
        for v in vals {
            match v {
                Some(x) => c.push_value(&Value::Int8(x)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    })
}

fn arb_str_col() -> impl Strategy<Value = ColumnData> {
    prop::collection::vec(prop::option::of("[a-z0-9/:.]{0,24}"), 0..200).prop_map(|vals| {
        let mut c = ColumnData::new(DataType::Varchar);
        for v in vals {
            match v {
                Some(s) => c.push_value(&Value::Str(s)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn int_encodings_roundtrip(col in arb_int_col()) {
        for enc in [Encoding::Raw, Encoding::Rle, Encoding::Delta, Encoding::Mostly8,
                    Encoding::Mostly16, Encoding::Mostly32] {
            if let Ok(bytes) = encode_column(&col, enc) {
                let back = decode_column(&bytes, Some(DataType::Int8)).unwrap();
                prop_assert_eq!(back.len(), col.len());
                for i in 0..col.len() {
                    prop_assert_eq!(back.get(i), col.get(i));
                }
            }
        }
    }

    #[test]
    fn str_encodings_roundtrip(col in arb_str_col()) {
        for enc in [Encoding::Raw, Encoding::Rle, Encoding::Dict, Encoding::Lzss] {
            if let Ok(bytes) = encode_column(&col, enc) {
                let back = decode_column(&bytes, Some(DataType::Varchar)).unwrap();
                prop_assert_eq!(back.len(), col.len());
                for i in 0..col.len() {
                    prop_assert_eq!(back.get(i), col.get(i));
                }
            }
        }
    }

    // -------------------------------------------------------------
    // BIGMIN is exactly the brute-force "next code in rect".
    // -------------------------------------------------------------
    #[test]
    fn bigmin_matches_brute_force(
        lo0 in 0u32..16, hi0 in 0u32..16,
        lo1 in 0u32..16, hi1 in 0u32..16,
        z in 0u128..256,
    ) {
        let s = ZSpace::with_bits(2, 4);
        let lo = [lo0.min(hi0), lo1.min(hi1)];
        let hi = [lo0.max(hi0), lo1.max(hi1)];
        let expect = (z..256).find(|&c| s.in_rect(c, &lo, &hi));
        prop_assert_eq!(s.next_in_rect(z, &lo, &hi), expect);
    }

    // -------------------------------------------------------------
    // Distribution routing: every row lands on exactly one slice and
    // co-location holds per key.
    // -------------------------------------------------------------
    #[test]
    fn key_routing_partitions_rows(keys in prop::collection::vec(any::<i64>(), 1..200)) {
        use redshift_sim::distribution::{ClusterTopology, DistStyle, RowRouter};
        let topo = ClusterTopology::new(4, 2).unwrap();
        let mut router = RowRouter::new(DistStyle::Key(0), &topo);
        let mut col = ColumnData::new(DataType::Int8);
        for &k in &keys {
            col.push_value(&Value::Int8(k)).unwrap();
        }
        let parts = router.route(&[col]).unwrap();
        let total: usize = parts.iter().map(|p| p[0].len()).sum();
        prop_assert_eq!(total, keys.len());
        // Co-location: equal keys never appear on different slices.
        let mut home: std::collections::HashMap<i64, usize> = Default::default();
        for (slice, p) in parts.iter().enumerate() {
            for i in 0..p[0].len() {
                let k = p[0].get_i64(i).unwrap();
                if let Some(&prev) = home.get(&k) {
                    prop_assert_eq!(prev, slice);
                } else {
                    home.insert(k, slice);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Query equivalence: vectorized MPP engine == row-at-a-time interpreter
// on randomized data and a panel of query shapes.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn compiled_equals_interpreted(
        rows in prop::collection::vec((0i64..50, any::<bool>(), 0i64..1000), 1..120),
        threshold in 0i64..1000,
    ) {
        let c = Cluster::launch(
            ClusterConfig::new("prop").nodes(2).slices_per_node(2).rows_per_group(32),
        ).unwrap();
        c.execute("CREATE TABLE t (k BIGINT, b BOOLEAN, v BIGINT) DISTKEY(k)").unwrap();
        let mut csv = String::new();
        for (k, b, v) in &rows {
            csv.push_str(&format!("{k},{},{v}\n", if *b { "t" } else { "f" }));
        }
        c.put_s3_object("p/1", csv.into_bytes());
        c.execute("COPY t FROM 's3://p/'").unwrap();
        for sql in [
            format!("SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t WHERE v < {threshold} GROUP BY k ORDER BY k"),
            "SELECT COUNT(*) FROM t WHERE b".to_string(),
            "SELECT k, v FROM t ORDER BY v DESC, k LIMIT 7".to_string(),
            "SELECT a.k, COUNT(*) AS n FROM t a JOIN t b ON a.k = b.k GROUP BY a.k ORDER BY a.k".to_string(),
        ] {
            let vectorized = c.query(&sql).unwrap().rows;
            let interpreted = c.query_interpreted(&sql).unwrap();
            prop_assert_eq!(&vectorized, &interpreted, "query {}", sql);
        }
    }

    // -------------------------------------------------------------
    // Backup → restore is lossless for random tables.
    // -------------------------------------------------------------
    #[test]
    fn snapshot_restore_is_identity(
        rows in prop::collection::vec((any::<i64>(), "[a-z]{0,12}"), 1..150),
    ) {
        use redshift_sim::replication::SnapshotKind;
        let c = Cluster::launch(
            ClusterConfig::new("snapprop").nodes(2).slices_per_node(1).rows_per_group(16),
        ).unwrap();
        c.execute("CREATE TABLE t (a BIGINT, s VARCHAR(16))").unwrap();
        let mut csv = String::new();
        for (a, s) in &rows {
            csv.push_str(&format!("{a},{s}\n"));
        }
        c.put_s3_object("x/1", csv.into_bytes());
        c.execute("COPY t FROM 's3://x/'").unwrap();
        c.create_snapshot("p", SnapshotKind::User).unwrap();
        let restored = Cluster::restore_from_snapshot(
            ClusterConfig::new("snapprop2").nodes(2).slices_per_node(1),
            Arc::clone(c.s3()),
            "us-east-1",
            "snapprop",
            "p",
            None,
        ).unwrap();
        let q = "SELECT a, s FROM t ORDER BY a, s";
        prop_assert_eq!(c.query(q).unwrap().rows, restored.query(q).unwrap().rows);
    }
}

// ---------------------------------------------------------------------
// Sort-key scans return exactly the rows a full scan filters to.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pruned_scans_lose_nothing(
        keys in prop::collection::vec(0i64..10_000, 50..400),
        lo in 0i64..10_000,
        width in 1i64..2_000,
    ) {
        let c = Cluster::launch(
            ClusterConfig::new("prune").nodes(1).slices_per_node(1).rows_per_group(32),
        ).unwrap();
        c.execute("CREATE TABLE t (k BIGINT) COMPOUND SORTKEY(k)").unwrap();
        let mut csv = String::new();
        for k in &keys {
            csv.push_str(&format!("{k}\n"));
        }
        c.put_s3_object("k/1", csv.into_bytes());
        c.execute("COPY t FROM 's3://k/'").unwrap();
        c.execute("VACUUM").unwrap();
        let hi = lo + width;
        let got = c
            .query(&format!("SELECT COUNT(*) FROM t WHERE k BETWEEN {lo} AND {hi}"))
            .unwrap()
            .rows[0]
            .get(0)
            .as_i64()
            .unwrap();
        let expect = keys.iter().filter(|&&k| k >= lo && k <= hi).count() as i64;
        prop_assert_eq!(got, expect);
    }
}

// ---------------------------------------------------------------------
// Schema round-trip through the catalog codec.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schema_codec_roundtrip(names in prop::collection::hash_set("[a-z]{1,10}", 1..12)) {
        use redshift_sim::common::codec::{Reader, Writer};
        let types = [
            DataType::Bool, DataType::Int2, DataType::Int4, DataType::Int8,
            DataType::Float8, DataType::Varchar, DataType::Date,
            DataType::Timestamp, DataType::Decimal(12, 3),
        ];
        let cols: Vec<ColumnDef> = names
            .iter()
            .enumerate()
            .map(|(i, n)| ColumnDef::new(n.clone(), types[i % types.len()]))
            .collect();
        let schema = Schema::new(cols).unwrap();
        let mut w = Writer::new();
        schema.encode(&mut w);
        let bytes = w.into_bytes();
        let rt = Schema::decode(&mut Reader::new(&bytes)).unwrap();
        prop_assert_eq!(schema, rt);
    }
}

// ---------------------------------------------------------------------
// Robustness: arbitrary input never panics the SQL frontend; it returns
// typed errors (the cluster stays healthy afterwards).
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn garbage_sql_errors_cleanly(input in ".{0,120}") {
        // Any unicode soup: must not panic.
        let _ = redshift_sim::sql::parse(&input);
    }

    #[test]
    fn token_soup_errors_cleanly(words in prop::collection::vec(
        prop::sample::select(vec![
            "SELECT", "FROM", "WHERE", "GROUP", "BY", "JOIN", "ON", "(", ")", ",",
            "COUNT", "*", "+", "-", "t", "a", "b", "'x'", "1", "2.5", "AND", "OR",
            "ORDER", "LIMIT", "BETWEEN", "IN", "LIKE", "NULL", "CASE", "WHEN",
        ]), 0..25)
    ) {
        let sql = words.join(" ");
        let _ = redshift_sim::sql::parse(&sql);
    }
}

#[test]
fn cluster_survives_a_barrage_of_bad_statements() {
    let c = Cluster::launch(ClusterConfig::new("fuzz").nodes(1).slices_per_node(1)).unwrap();
    c.execute("CREATE TABLE t (a BIGINT)").unwrap();
    let bad = [
        "SELECT",
        "SELECT * FROM",
        "SELECT FROM t",
        "CREATE TABLE t (a BIGINT)", // duplicate
        "INSERT INTO t VALUES ('not a number')",
        "COPY t FROM 'not-an-s3-uri'",
        "SELECT a FROM t WHERE a LIKE 1",
        "SELECT SUM(a, a) FROM t",
        "SELECT x.y.z FROM t",
        "DROP TABLE nothere",
        "VACUUM nothere",
        "SELECT a FROM t GROUP BY",
        "SELECT CAST(a AS NOPE) FROM t",
        "SELECT DISTINCT a FROM t ORDER BY missing",
    ];
    for sql in bad {
        assert!(c.execute(sql).is_err(), "{sql:?} should fail");
    }
    // Division by zero on an *empty* table is fine (no row evaluates it,
    // matching PostgreSQL); with a row present it must error.
    c.query("SELECT 1/0 FROM t").unwrap();
    c.execute("INSERT INTO t VALUES (7)").unwrap();
    assert!(c.query("SELECT 1/0 FROM t").is_err());
    // Still healthy.
    assert_eq!(
        c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64(),
        Some(1)
    );
}
