//! Property-based tests over the core invariants (testkit::prop).
//!
//! These were originally written against `proptest`; they now run on the
//! in-tree `redsim_testkit::prop` harness with the same case counts. The
//! old `tests/properties.proptest-regressions` file is still honored:
//! the SQL-frontend fuzz test replays its persisted seeds before fresh
//! cases, and the fuzz-found lexer input is additionally pinned as the
//! named test [`regression_lexer_multibyte_start`].

// The suite builds warning-free off the deprecated `Cluster::query_as`
// shim: everything goes through explicit `Session`s. Keep it that way.
#![deny(deprecated)]

use redshift_sim::common::{ColumnData, ColumnDef, DataType, Schema, Value};
use redshift_sim::core::{Cluster, ClusterConfig, SessionOpts};
use redshift_sim::storage::encoding::{decode_column, encode_column, Encoding};
use redshift_sim::testkit::prop::{self, Config, Gen};
use redshift_sim::zorder::ZSpace;
use std::path::PathBuf;
use std::sync::Arc;

/// The proptest-era persisted regression seeds for this suite.
fn regressions() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/properties.proptest-regressions")
}

// ---------------------------------------------------------------------
// Encoding round-trips for arbitrary data shapes.
// ---------------------------------------------------------------------

fn arb_int_col() -> Gen<ColumnData> {
    prop::vec_of(prop::option_of(prop::any_i64()), 0..300).map(|vals| {
        let mut c = ColumnData::new(DataType::Int8);
        for v in vals {
            match v {
                Some(x) => c.push_value(&Value::Int8(*x)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    })
}

fn arb_str_col() -> Gen<ColumnData> {
    prop::vec_of(prop::option_of(prop::pattern("[a-z0-9/:.]{0,24}")), 0..200).map(|vals| {
        let mut c = ColumnData::new(DataType::Varchar);
        for v in vals {
            match v {
                Some(s) => c.push_value(&Value::Str(s.clone())).unwrap(),
                None => c.push_null(),
            }
        }
        c
    })
}

#[test]
fn int_encodings_roundtrip() {
    prop::check("int_encodings_roundtrip", &Config::with_cases(64), &arb_int_col(), |col| {
        for enc in [Encoding::Raw, Encoding::Rle, Encoding::Delta, Encoding::Mostly8,
                    Encoding::Mostly16, Encoding::Mostly32] {
            if let Ok(bytes) = encode_column(col, enc) {
                let back = decode_column(&bytes, Some(DataType::Int8)).unwrap();
                assert_eq!(back.len(), col.len());
                for i in 0..col.len() {
                    assert_eq!(back.get(i), col.get(i));
                }
            }
        }
    });
}

#[test]
fn str_encodings_roundtrip() {
    prop::check("str_encodings_roundtrip", &Config::with_cases(64), &arb_str_col(), |col| {
        for enc in [Encoding::Raw, Encoding::Rle, Encoding::Dict, Encoding::Lzss] {
            if let Ok(bytes) = encode_column(col, enc) {
                let back = decode_column(&bytes, Some(DataType::Varchar)).unwrap();
                assert_eq!(back.len(), col.len());
                for i in 0..col.len() {
                    assert_eq!(back.get(i), col.get(i));
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// BIGMIN is exactly the brute-force "next code in rect".
// ---------------------------------------------------------------------

#[test]
fn bigmin_matches_brute_force() {
    let gen = prop::tuple5(
        prop::range(0u32..16),
        prop::range(0u32..16),
        prop::range(0u32..16),
        prop::range(0u32..16),
        prop::range(0u64..256),
    );
    prop::check(
        "bigmin_matches_brute_force",
        &Config::with_cases(64),
        &gen,
        |&(lo0, hi0, lo1, hi1, z)| {
            let z = z as u128;
            let s = ZSpace::with_bits(2, 4);
            let lo = [lo0.min(hi0), lo1.min(hi1)];
            let hi = [lo0.max(hi0), lo1.max(hi1)];
            let expect = (z..256).find(|&c| s.in_rect(c, &lo, &hi));
            assert_eq!(s.next_in_rect(z, &lo, &hi), expect);
        },
    );
}

// ---------------------------------------------------------------------
// Distribution routing: every row lands on exactly one slice and
// co-location holds per key.
// ---------------------------------------------------------------------

#[test]
fn key_routing_partitions_rows() {
    let gen = prop::vec_of(prop::any_i64(), 1..200);
    prop::check("key_routing_partitions_rows", &Config::with_cases(64), &gen, |keys| {
        use redshift_sim::distribution::{ClusterTopology, DistStyle, RowRouter};
        let topo = ClusterTopology::new(4, 2).unwrap();
        let mut router = RowRouter::new(DistStyle::Key(0), &topo);
        let mut col = ColumnData::new(DataType::Int8);
        for &k in keys {
            col.push_value(&Value::Int8(k)).unwrap();
        }
        let parts = router.route(&[col]).unwrap();
        let total: usize = parts.iter().map(|p| p[0].len()).sum();
        assert_eq!(total, keys.len());
        // Co-location: equal keys never appear on different slices.
        let mut home: std::collections::HashMap<i64, usize> = Default::default();
        for (slice, p) in parts.iter().enumerate() {
            for i in 0..p[0].len() {
                let k = p[0].get_i64(i).unwrap();
                if let Some(&prev) = home.get(&k) {
                    assert_eq!(prev, slice);
                } else {
                    home.insert(k, slice);
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// Query equivalence: vectorized MPP engine == row-at-a-time interpreter
// on randomized data and a panel of query shapes.
// ---------------------------------------------------------------------

#[test]
fn compiled_equals_interpreted() {
    let gen = prop::pair(
        prop::vec_of(
            prop::triple(prop::range(0i64..50), prop::any_bool(), prop::range(0i64..1000)),
            1..120,
        ),
        prop::range(0i64..1000),
    );
    prop::check(
        "compiled_equals_interpreted",
        &Config::with_cases(12),
        &gen,
        |(rows, threshold)| {
            let c = Cluster::launch(
                ClusterConfig::new("prop").nodes(2).slices_per_node(2).rows_per_group(32),
            )
            .unwrap();
            c.execute("CREATE TABLE t (k BIGINT, b BOOLEAN, v BIGINT) DISTKEY(k)").unwrap();
            let mut csv = String::new();
            for (k, b, v) in rows {
                csv.push_str(&format!("{k},{},{v}\n", if *b { "t" } else { "f" }));
            }
            c.put_s3_object("p/1", csv.into_bytes());
            c.execute("COPY t FROM 's3://p/'").unwrap();
            for sql in [
                format!("SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t WHERE v < {threshold} GROUP BY k ORDER BY k"),
                "SELECT COUNT(*) FROM t WHERE b".to_string(),
                "SELECT k, v FROM t ORDER BY v DESC, k LIMIT 7".to_string(),
                "SELECT a.k, COUNT(*) AS n FROM t a JOIN t b ON a.k = b.k GROUP BY a.k ORDER BY a.k".to_string(),
            ] {
                let vectorized = c.query(&sql).unwrap().rows;
                let interpreted = c.query_interpreted(&sql).unwrap();
                assert_eq!(vectorized, interpreted, "query {}", sql);
            }
        },
    );
}

// ---------------------------------------------------------------------
// Backup → restore is lossless for random tables.
// ---------------------------------------------------------------------

#[test]
fn snapshot_restore_is_identity() {
    let gen = prop::vec_of(prop::pair(prop::any_i64(), prop::pattern("[a-z]{0,12}")), 1..150);
    prop::check(
        "snapshot_restore_is_identity",
        &Config::with_cases(12),
        &gen,
        |rows| {
            use redshift_sim::replication::SnapshotKind;
            let c = Cluster::launch(
                ClusterConfig::new("snapprop").nodes(2).slices_per_node(1).rows_per_group(16),
            )
            .unwrap();
            c.execute("CREATE TABLE t (a BIGINT, s VARCHAR(16))").unwrap();
            let mut csv = String::new();
            for (a, s) in rows {
                csv.push_str(&format!("{a},{s}\n"));
            }
            c.put_s3_object("x/1", csv.into_bytes());
            c.execute("COPY t FROM 's3://x/'").unwrap();
            c.create_snapshot("p", SnapshotKind::User).unwrap();
            let restored = Cluster::restore_from_snapshot(
                ClusterConfig::new("snapprop2").nodes(2).slices_per_node(1),
                Arc::clone(c.s3()),
                "us-east-1",
                "snapprop",
                "p",
                None,
            )
            .unwrap();
            let q = "SELECT a, s FROM t ORDER BY a, s";
            assert_eq!(c.query(q).unwrap().rows, restored.query(q).unwrap().rows);
        },
    );
}

// ---------------------------------------------------------------------
// Sort-key scans return exactly the rows a full scan filters to.
// ---------------------------------------------------------------------

#[test]
fn pruned_scans_lose_nothing() {
    let gen = prop::triple(
        prop::vec_of(prop::range(0i64..10_000), 50..400),
        prop::range(0i64..10_000),
        prop::range(1i64..2_000),
    );
    prop::check(
        "pruned_scans_lose_nothing",
        &Config::with_cases(12),
        &gen,
        |(keys, lo, width)| {
            let c = Cluster::launch(
                ClusterConfig::new("prune").nodes(1).slices_per_node(1).rows_per_group(32),
            )
            .unwrap();
            c.execute("CREATE TABLE t (k BIGINT) COMPOUND SORTKEY(k)").unwrap();
            let mut csv = String::new();
            for k in keys {
                csv.push_str(&format!("{k}\n"));
            }
            c.put_s3_object("k/1", csv.into_bytes());
            c.execute("COPY t FROM 's3://k/'").unwrap();
            c.execute("VACUUM").unwrap();
            let (lo, hi) = (*lo, *lo + *width);
            let got = c
                .query(&format!("SELECT COUNT(*) FROM t WHERE k BETWEEN {lo} AND {hi}"))
                .unwrap()
                .rows[0]
                .get(0)
                .as_i64()
                .unwrap();
            let expect = keys.iter().filter(|&&k| k >= lo && k <= hi).count() as i64;
            assert_eq!(got, expect);
        },
    );
}

// ---------------------------------------------------------------------
// Schema round-trip through the catalog codec.
// ---------------------------------------------------------------------

#[test]
fn schema_codec_roundtrip() {
    let gen = prop::hash_set_of(prop::pattern("[a-z]{1,10}"), 1..12);
    prop::check("schema_codec_roundtrip", &Config::with_cases(64), &gen, |names| {
        use redshift_sim::common::codec::{Reader, Writer};
        let types = [
            DataType::Bool, DataType::Int2, DataType::Int4, DataType::Int8,
            DataType::Float8, DataType::Varchar, DataType::Date,
            DataType::Timestamp, DataType::Decimal(12, 3),
        ];
        let cols: Vec<ColumnDef> = names
            .iter()
            .enumerate()
            .map(|(i, n)| ColumnDef::new(n.clone(), types[i % types.len()]))
            .collect();
        let schema = Schema::new(cols).unwrap();
        let mut w = Writer::new();
        schema.encode(&mut w);
        let bytes = w.into_bytes();
        let rt = Schema::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(schema, rt);
    });
}

// ---------------------------------------------------------------------
// Robustness: arbitrary input never panics the SQL frontend; it returns
// typed errors (the cluster stays healthy afterwards).
// ---------------------------------------------------------------------

#[test]
fn garbage_sql_errors_cleanly() {
    let cfg = Config::with_cases(256).regressions_file(regressions());
    prop::check("garbage_sql_errors_cleanly", &cfg, &prop::pattern(".{0,120}"), |input| {
        // Any unicode soup: must not panic.
        let _ = redshift_sim::sql::parse(input);
    });
}

/// Pinned from `tests/properties.proptest-regressions`: proptest's fuzzing
/// once shrank a lexer panic down to the single multibyte character "Ŀ"
/// (the byte-indexed scanner sliced mid-codepoint). Keep the exact witness
/// as a plain test so it never regresses even if the seed file is lost.
#[test]
fn regression_lexer_multibyte_start() {
    let _ = redshift_sim::sql::parse("Ŀ");
    // A few more multibyte-leading soups in the same family.
    for s in ["Ŀ SELECT", "SELECT Ŀ", "ĿĿĿ", "¼", "👀 FROM t", "'Ŀ'"] {
        let _ = redshift_sim::sql::parse(s);
    }
}

#[test]
fn token_soup_errors_cleanly() {
    let words = vec![
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "JOIN", "ON", "(", ")", ",",
        "COUNT", "*", "+", "-", "t", "a", "b", "'x'", "1", "2.5", "AND", "OR",
        "ORDER", "LIMIT", "BETWEEN", "IN", "LIKE", "NULL", "CASE", "WHEN",
    ];
    let gen = prop::vec_of(prop::select(words), 0..25);
    prop::check("token_soup_errors_cleanly", &Config::with_cases(256), &gen, |words| {
        let sql = words.join(" ");
        let _ = redshift_sim::sql::parse(&sql);
    });
}

#[test]
fn cluster_survives_a_barrage_of_bad_statements() {
    let c = Cluster::launch(ClusterConfig::new("fuzz").nodes(1).slices_per_node(1)).unwrap();
    c.execute("CREATE TABLE t (a BIGINT)").unwrap();
    let bad = [
        "SELECT",
        "SELECT * FROM",
        "SELECT FROM t",
        "CREATE TABLE t (a BIGINT)", // duplicate
        "INSERT INTO t VALUES ('not a number')",
        "COPY t FROM 'not-an-s3-uri'",
        "SELECT a FROM t WHERE a LIKE 1",
        "SELECT SUM(a, a) FROM t",
        "SELECT x.y.z FROM t",
        "DROP TABLE nothere",
        "VACUUM nothere",
        "SELECT a FROM t GROUP BY",
        "SELECT CAST(a AS NOPE) FROM t",
        "SELECT DISTINCT a FROM t ORDER BY missing",
    ];
    for sql in bad {
        assert!(c.execute(sql).is_err(), "{sql:?} should fail");
    }
    // Division by zero on an *empty* table is fine (no row evaluates it,
    // matching PostgreSQL); with a row present it must error.
    c.query("SELECT 1/0 FROM t").unwrap();
    c.execute("INSERT INTO t VALUES (7)").unwrap();
    assert!(c.query("SELECT 1/0 FROM t").is_err());
    // Still healthy.
    assert_eq!(
        c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64(),
        Some(1)
    );
}

// ---------------------------------------------------------------------
// Trace invariants: a random query workload leaves the telemetry sink
// structurally consistent — no span leaks, no child outliving its
// parent, and `stl_query` accounts for exactly the queries issued.
// ---------------------------------------------------------------------

/// One step of the random workload: which statement template to run and
/// a literal to instantiate it with.
fn arb_workload() -> Gen<Vec<(usize, i64)>> {
    prop::vec_of(prop::pair(prop::range(0usize..5), prop::range(0i64..1_000)), 1..20)
}

#[test]
fn trace_invariants_hold_under_random_workload() {
    let cfg = Config::with_cases(16);
    prop::check("trace_invariants", &cfg, &arb_workload(), |steps| {
        let c = Cluster::launch(
            ClusterConfig::new("trace-prop").nodes(2).slices_per_node(2),
        )
        .unwrap();
        c.execute("CREATE TABLE t (a BIGINT, b VARCHAR)").unwrap();
        c.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')").unwrap();
        let mut selects = 0u64;
        for &(kind, lit) in steps {
            match kind {
                0 => {
                    c.query(&format!("SELECT COUNT(*) FROM t WHERE a <> {lit}")).unwrap();
                    selects += 1;
                }
                1 => {
                    c.query("SELECT SUM(a) FROM t").unwrap();
                    selects += 1;
                }
                2 => {
                    c.query(&format!("SELECT a, b FROM t WHERE a > {} ORDER BY a", lit % 4))
                        .unwrap();
                    selects += 1;
                }
                3 => {
                    c.execute(&format!("INSERT INTO t VALUES ({lit}, 'w')")).unwrap();
                }
                _ => {
                    // EXPLAIN and system-table reads must NOT appear in
                    // stl_query (matching the real STL semantics).
                    c.query("EXPLAIN SELECT COUNT(*) FROM t").unwrap();
                    c.query("SELECT * FROM stl_query").unwrap();
                }
            }
        }

        let sink = c.trace();
        // 1. Every span opened was closed.
        assert_eq!(sink.open_spans(), 0, "leaked spans");

        let records = sink.snapshot();
        let by_id: std::collections::BTreeMap<u64, &redshift_sim::obs::SpanRecord> =
            records.iter().map(|r| (r.id, r)).collect();
        for r in &records {
            if r.parent != 0 {
                // 2. Parents are present and children nest inside them.
                let p = by_id
                    .get(&r.parent)
                    .unwrap_or_else(|| panic!("span {} ({}) has missing parent", r.id, r.name));
                assert!(
                    r.dur_ns <= p.dur_ns,
                    "child {} ({} ns) outlives parent {} ({} ns)",
                    r.name,
                    r.dur_ns,
                    p.name,
                    p.dur_ns
                );
                assert!(
                    r.start_ns >= p.start_ns,
                    "child {} starts before parent {}",
                    r.name,
                    p.name
                );
            }
        }

        // 3. stl_query has one row per user SELECT issued — EXPLAIN and
        // system-table reads excluded.
        let stl = c.query("SELECT COUNT(*) FROM stl_query").unwrap();
        assert_eq!(stl.rows[0].get(0).as_i64(), Some(selects as i64));

        // 4. The default retention config never truncates: every record
        // the ring evicted was absorbed by the spill, none dropped.
        assert_eq!(
            sink.counter_value("trace.records_dropped"),
            0,
            "trace ring dropped records under the default config"
        );
    });
}

// ---------------------------------------------------------------------
// WLM admission invariants under concurrent mixed load (archetype
// headline). A randomized mix of short SELECTs, heavy self-joins and
// COPYs is fired from `testkit::par` threads at a 2-queue + SQA config;
// the controller must keep exact books.
// ---------------------------------------------------------------------

/// Per-thread statement scripts: each inner step is (kind, literal).
/// kind 0 = short SELECT, 1 = heavy join, 2 = COPY (bypasses WLM — only
/// SELECTs are admission-controlled).
fn arb_wlm_workload() -> Gen<Vec<Vec<(usize, i64)>>> {
    prop::vec_of(
        prop::vec_of(prop::pair(prop::range(0usize..3), prop::range(0i64..1_000)), 1..8),
        2..5,
    )
}

#[test]
fn wlm_admission_invariants() {
    use redshift_sim::core::{WlmConfig, WlmQueueDef};
    use redshift_sim::testkit::par;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Duration;

    let cfg = Config::with_cases(64).regressions_file(regressions());
    prop::check("wlm_admission_invariants", &cfg, &arb_wlm_workload(), |threads| {
        let wlm = WlmConfig::with_queues(vec![
            WlmQueueDef::new("short", 2).max_cost(500).max_wait(Duration::from_secs(20)),
            WlmQueueDef::new("long", 2).max_wait(Duration::from_secs(20)),
        ])
        .sqa(500, 1);
        let c = Cluster::launch(
            ClusterConfig::new("wlm-prop").nodes(2).slices_per_node(2).wlm(wlm),
        )
        .unwrap();
        c.execute("CREATE TABLE small (a BIGINT)").unwrap();
        c.execute("INSERT INTO small VALUES (1), (2), (3)").unwrap();
        c.execute("CREATE TABLE big (k BIGINT, v BIGINT) DISTKEY(k)").unwrap();
        let mut csv = String::new();
        for i in 0..400 {
            csv.push_str(&format!("{},{}\n", i % 40, i));
        }
        c.put_s3_object("w/1", csv.into_bytes());
        c.execute("COPY big FROM 's3://w/'").unwrap();

        // Sequential warm-up: with every slot free, queue_wait must be 0.
        let r = c.query("SELECT COUNT(*) FROM small").unwrap();
        assert_eq!(r.metrics.queue_wait_ns, 0, "free slots ⇒ zero queue wait");
        let warmup_selects = 1u64;

        // Concurrent phase: each generated script runs on its own thread.
        let issued = AtomicU64::new(warmup_selects);
        let results: Vec<Result<(), String>> = par::map(threads.clone(), |script| {
            // One pair of sessions per thread (like two client
            // connections). Result cache off: the invariants below do
            // exact WLM accounting per issued SELECT, and a cache hit
            // legitimately skips admission.
            let dash = c
                .connect(SessionOpts::new("dash").result_cache(false))
                .map_err(|e| e.to_string())?;
            let etl = c
                .connect(SessionOpts::new("etl").user_group("etl_users").result_cache(false))
                .map_err(|e| e.to_string())?;
            for (kind, lit) in script {
                let res = match kind {
                    0 => {
                        issued.fetch_add(1, Ordering::Relaxed);
                        dash.query(&format!("SELECT COUNT(*) FROM small WHERE a <> {lit}"))
                            .map(|_| ())
                    }
                    1 => {
                        issued.fetch_add(1, Ordering::Relaxed);
                        etl.query(&format!(
                            "SELECT a.k, COUNT(*) AS n FROM big a JOIN big b ON a.k = b.k \
                             WHERE a.v <> {lit} GROUP BY a.k ORDER BY n DESC LIMIT 5"
                        ))
                        .map(|_| ())
                    }
                    _ => {
                        // COPY takes the write path: not WLM-controlled.
                        // Concurrent COPYs into one table resolve first-
                        // committer-wins; losers get a retryable
                        // serializable conflict and retry like a client.
                        let key = format!("w/extra-{lit}");
                        c.put_s3_object(&key, format!("{lit},{lit}\n").into_bytes());
                        loop {
                            match c.execute(&format!("COPY big FROM 's3://{key}'")) {
                                Err(e) if e.is_retryable() => std::thread::yield_now(),
                                r => break r.map(|_| ()),
                            }
                        }
                    }
                };
                // Generous waits + bounded load: nothing may fail here.
                if let Err(e) = res {
                    return Err(format!("statement failed: {e}"));
                }
            }
            Ok(())
        });
        for r in results {
            r.unwrap();
        }
        let issued = issued.load(Ordering::Relaxed);

        // Invariant: exact accounting — one stl_wlm_query row per SELECT
        // issued, all Completed (no eviction under generous timeouts),
        // never double-admitted (counter equality).
        let rows = c.query("SELECT COUNT(*) FROM stl_wlm_query").unwrap();
        assert_eq!(rows.rows[0].get(0).as_i64(), Some(issued as i64), "no query lost");
        let done = c
            .query("SELECT COUNT(*) FROM stl_wlm_query WHERE state = 'Completed'")
            .unwrap();
        assert_eq!(done.rows[0].get(0).as_i64(), Some(issued as i64));
        assert_eq!(c.trace().counter_value("wlm.admitted"), issued, "admitted once each");
        assert_eq!(c.trace().counter_value("wlm.completed"), issued);

        // Invariant: at quiesce nothing holds a slot, nobody queues, and
        // per-class in-flight never exceeded slots (the live view is the
        // same code path the monitor samples mid-run).
        for sc in c.wlm().service_class_states() {
            assert_eq!(sc.in_flight, 0, "{}: slot leaked", sc.name);
            assert_eq!(sc.queued, 0, "{}: waiter leaked", sc.name);
            assert!(sc.in_flight <= sc.slots);
            assert_eq!(sc.evicted, 0, "{}: spurious eviction", sc.name);
            assert_eq!(sc.rejected, 0, "{}: spurious rejection", sc.name);
        }
        let stv = c
            .query(
                "SELECT service_class, in_flight, queued FROM stv_wlm_service_class_state \
                 ORDER BY service_class",
            )
            .unwrap();
        assert_eq!(stv.rows.len(), 3, "short + long + sqa lanes visible");

        // Invariant: whenever a query reports zero wait it was admitted
        // straight to a slot; sum of waits matches the per-class books.
        let waits = c
            .query("SELECT COUNT(*) FROM stl_wlm_query WHERE queue_wait_us > 0")
            .unwrap();
        let waited = waits.rows[0].get(0).as_i64().unwrap() as u64;
        assert_eq!(c.trace().counter_value("wlm.queued_admits") >= waited, true);
    });
}

// ---------------------------------------------------------------------
// Elastic resize as a property (ported from examples/elastic_resize.rs):
// random topologies before/after, concurrent readers during the resize,
// WLM drains in-flight queries first, and no row is lost.
// ---------------------------------------------------------------------

fn arb_resize_case() -> Gen<((u32, u32, u32, u32), Vec<i64>)> {
    prop::pair(
        prop::tuple4(
            prop::range(1u32..4),  // nodes before
            prop::range(1u32..3),  // slices before
            prop::range(1u32..5),  // nodes after
            prop::range(1u32..3),  // slices after
        ),
        prop::vec_of(prop::range(0i64..10_000), 1..200),
    )
}

#[test]
fn wlm_resize_preserves_data_and_drains() {
    let cfg = Config::with_cases(64).regressions_file(regressions());
    prop::check(
        "wlm_resize_preserves_data_and_drains",
        &cfg,
        &arb_resize_case(),
        |((n0, s0, n1, s1), keys)| {
            let c = Cluster::launch(
                ClusterConfig::new("rz-prop")
                    .nodes(*n0)
                    .slices_per_node(*s0)
                    .rows_per_group(32),
            )
            .unwrap();
            c.execute("CREATE TABLE ev (k BIGINT) DISTKEY(k)").unwrap();
            let mut csv = String::new();
            for k in keys {
                csv.push_str(&format!("{k}\n"));
            }
            c.put_s3_object("rz/1", csv.into_bytes());
            c.execute("COPY ev FROM 's3://rz/'").unwrap();
            let q = "SELECT COUNT(*), SUM(k) FROM ev";
            let before = c.query(q).unwrap().rows;

            // A reader hammers the source while the resize runs. Every
            // result is either correct rows or a clean STATE error from
            // the WLM drain / decommission — never a panic or bad data.
            let (target, reader_results) = {
                let c2 = Arc::clone(&c);
                let reader = std::thread::spawn(move || {
                    let mut out = Vec::new();
                    for _ in 0..40 {
                        out.push(c2.query("SELECT COUNT(*) FROM ev").map(|r| r.rows));
                        std::thread::yield_now();
                    }
                    out
                });
                let target = c.resize(*n1, *s1).unwrap();
                (target, reader.join().unwrap())
            };
            let expect_n = before[0].get(0).clone();
            for r in reader_results {
                match r {
                    Ok(rows) => assert_eq!(rows[0].get(0), &expect_n, "reader saw torn data"),
                    Err(e) => assert_eq!(e.code(), "STATE", "unexpected error class: {e}"),
                }
            }

            // WLM drained: the source rejects, queue books are clean.
            assert!(c.query(q).is_err(), "source decommissioned");
            assert!(c.wlm().is_draining());
            for sc in c.wlm().service_class_states() {
                assert_eq!(sc.in_flight, 0, "drain left a query in flight");
                assert_eq!(sc.queued, 0);
            }

            // Data survived the topology change bit-for-bit.
            assert_eq!(target.query(q).unwrap().rows, before);
            assert_eq!(target.topology().total_slices(), n1 * s1);
            // The target accepts new work immediately.
            target.execute("INSERT INTO ev VALUES (424242)").unwrap();
        },
    );
}

// ---------------------------------------------------------------------
// DR failover as a property (ported from examples/disaster_recovery.rs):
// random data + failure point; the primary drains via WLM-led shutdown,
// the standby region restores losslessly with streaming hydration.
// ---------------------------------------------------------------------

fn arb_dr_case() -> Gen<(Vec<(i64, i64)>, usize, bool)> {
    prop::triple(
        prop::vec_of(prop::pair(prop::range(0i64..5_000), prop::range(0i64..100)), 1..150),
        prop::range(0usize..3), // failure point: when hydration gets driven
        prop::any_bool(),       // encrypted?
    )
}

#[test]
fn wlm_dr_failover_preserves_data() {
    let cfg = Config::with_cases(64).regressions_file(regressions());
    prop::check(
        "wlm_dr_failover_preserves_data",
        &cfg,
        &arb_dr_case(),
        |(rows, failure_point, encrypted)| {
            let c = Cluster::launch(
                ClusterConfig::new("dr-prop")
                    .nodes(2)
                    .slices_per_node(1)
                    .rows_per_group(16)
                    .dr_region("eu-west-1")
                    .encrypted(*encrypted),
            )
            .unwrap();
            c.execute("CREATE TABLE acct (id BIGINT, bal BIGINT) DISTKEY(id)").unwrap();
            let mut csv = String::new();
            for (id, bal) in rows {
                csv.push_str(&format!("{id},{bal}\n"));
            }
            c.put_s3_object("a/1", csv.into_bytes());
            c.execute("COPY acct FROM 's3://a/'").unwrap();
            let q = "SELECT COUNT(*), SUM(bal) FROM acct";
            let before = c.query(q).unwrap().rows;
            use redshift_sim::replication::SnapshotKind;
            c.create_snapshot("friday", SnapshotKind::User).unwrap();

            // Region failure drill: drain in-flight queries, then the
            // primary goes dark. A racing reader sees either good rows
            // or a clean STATE error — shutdown never tears a result.
            let c2 = Arc::clone(&c);
            let reader = std::thread::spawn(move || {
                let mut out = Vec::new();
                for _ in 0..20 {
                    out.push(c2.query("SELECT COUNT(*) FROM acct").map(|r| r.rows));
                }
                out
            });
            c.shutdown();
            for r in reader.join().unwrap() {
                match r {
                    Ok(got) => assert_eq!(got[0].get(0), before[0].get(0)),
                    Err(e) => assert_eq!(e.code(), "STATE", "unexpected error class: {e}"),
                }
            }
            assert!(c.query(q).is_err(), "primary is decommissioned after shutdown");
            for sc in c.wlm().service_class_states() {
                assert_eq!(sc.in_flight, 0, "shutdown left a query in flight");
            }

            // Failover: restore in the standby region from the DR copy.
            let hsm = c.hsm().map(Arc::clone);
            let standby = Cluster::restore_from_snapshot(
                ClusterConfig::new("dr-prop").nodes(2).slices_per_node(1).region("eu-west-1"),
                Arc::clone(c.s3()),
                "eu-west-1",
                "dr-prop",
                "friday",
                hsm,
            )
            .unwrap();
            // Random failure point: query immediately (pure page-fault
            // serving), mid-hydration, or after full hydration.
            match failure_point {
                0 => {}
                1 => {
                    standby.hydrate_step(8).unwrap();
                }
                _ => while standby.hydrate_step(64).unwrap() > 0 {},
            }
            assert_eq!(standby.query(q).unwrap().rows, before, "failover lost data");
        },
    );
}

// ---------------------------------------------------------------------
// Chaos property: randomized COPY / SELECT / kill / revive / backup /
// restore schedules run under randomized *transient* failpoint
// configurations — with the write seams (`mirror.write.*`, `s3.put`)
// armed: COPY is transactional (slice-level snapshot, install-or-
// rollback), so a load that fails mid-write is observationally
// invisible and exactness tracking survives write faults. Invariants:
//   1. every operation returns exact results or a typed retryable error
//      — never wrong data, never an unclassified failure, never a hang;
//   2. a failed COPY leaves the pre-COPY state byte-identical: same
//      SELECT results, same `rows_estimate`, same `loads_since_analyze`,
//      same `copy.rows_loaded` counter;
//   3. once faults clear, the cluster heals in place: redundancy is
//      restorable and the final count is exact;
//   4. the telemetry sink stays structurally consistent (no span leaks).
// Replay any case with `RSIM_SEED` via the registry reseed printed by
// the harness on failure.
// ---------------------------------------------------------------------

/// (fault configs, op schedule, registry seed).
/// Fault config = (failpoint idx, class idx, probability idx).
fn arb_chaos_case() -> Gen<(Vec<(usize, usize, usize)>, Vec<(usize, i64)>, u64)> {
    prop::triple(
        prop::vec_of(
            prop::triple(
                prop::range(0usize..9),
                prop::range(0usize..2),
                prop::range(0usize..3),
            ),
            1..4,
        ),
        prop::vec_of(prop::pair(prop::range(0usize..6), prop::range(0i64..10_000)), 5..30),
        prop::range(0u64..1_000_000),
    )
}

#[test]
fn chaos_schedule_upholds_exactness_and_liveness() {
    use redshift_sim::common::{RetryPolicy, RsError};
    use redshift_sim::faultkit::{fp, ErrClass, FaultSpec};
    use std::time::{Duration, Instant};

    // Transient chaos over every seam, write seams included: since COPY
    // is transactional (rollback on partial write failure), a load that
    // dies on `mirror.write.*` or a seal error is rolled back block-for-
    // block and the exactness bookkeeping below stays truthful.
    const FPS: [&str; 9] = [
        fp::S3_GET,
        fp::COPY_FETCH_OBJECT,
        fp::MIRROR_BACKUP_DRAIN,
        fp::S3_COPY_OBJECT,
        fp::MIRROR_RE_REPLICATE,
        fp::RESTORE_PAGE_FAULT,
        fp::MIRROR_WRITE_PRIMARY,
        fp::MIRROR_WRITE_SECONDARY,
        fp::S3_PUT,
    ];
    const CLASSES: [ErrClass; 2] = [ErrClass::Throttle, ErrClass::Repl];
    const PROBS: [f64; 3] = [0.05, 0.15, 0.25];
    /// Every error escaping a chaos schedule must carry a retryable class.
    fn assert_retryable(ctx: &str, e: &RsError) {
        assert!(e.is_retryable(), "{ctx}: non-retryable error under transient chaos: {e}");
    }

    let cfg = Config::with_cases(24).regressions_file(regressions());
    prop::check("chaos_schedule", &cfg, &arb_chaos_case(), |(faults, schedule, seed)| {
        let t0 = Instant::now();
        let retry = RetryPolicy::default()
            .with_delays(Duration::from_micros(50), Duration::from_millis(1))
            .with_deadline(Duration::from_secs(2));
        let c = Cluster::launch(
            ClusterConfig::new("chaos")
                .nodes(3)
                .slices_per_node(1)
                .rows_per_group(32)
                .dr_region("eu-west-1")
                .retry(retry)
                .seed(*seed),
        )
        .unwrap();
        c.execute("CREATE TABLE ev (k BIGINT) DISTKEY(k)").unwrap();
        let store = Arc::clone(c.replicated_store().unwrap());

        // Arm the randomized failpoint configuration, seeded for replay.
        for &(f, cl, p) in faults {
            c.faults().configure(FPS[f], FaultSpec::err(CLASSES[cl]).prob(PROBS[p]));
        }
        c.faults().reseed(*seed);

        let mut expected = 0i64;
        let mut dead: Option<redshift_sim::distribution::NodeId> = None;
        for (step, &(kind, lit)) in schedule.iter().enumerate() {
            match kind {
                // COPY one object (only with full redundancy, so a fetch
                // failure provably appends nothing).
                0 if dead.is_none() => {
                    let rows = 1 + lit % 50;
                    let mut csv = String::new();
                    for i in 0..rows {
                        csv.push_str(&format!("{i}\n"));
                    }
                    c.put_s3_object(&format!("chaos/{step}/obj"), csv.into_bytes());
                    let pre_estimate = c.rows_estimate("ev");
                    let pre_loads = c.loads_since_analyze("ev");
                    let pre_counter = c.trace().counter("copy.rows_loaded").get();
                    match c.execute(&format!("COPY ev FROM 's3://chaos/{step}/'")) {
                        Ok(s) => {
                            assert_eq!(s.rows_affected, rows as u64);
                            expected += rows;
                        }
                        Err(e) => {
                            assert_retryable("copy", &e);
                            // Atomic COPY: the failed load is
                            // observationally invisible — catalog
                            // counters and telemetry are byte-identical
                            // to the pre-COPY snapshot, and any
                            // readable SELECT sees the old count.
                            assert_eq!(
                                c.rows_estimate("ev"),
                                pre_estimate,
                                "failed COPY leaked into rows_estimate"
                            );
                            assert_eq!(
                                c.loads_since_analyze("ev"),
                                pre_loads,
                                "failed COPY leaked into loads_since_analyze"
                            );
                            assert_eq!(
                                c.trace().counter("copy.rows_loaded").get(),
                                pre_counter,
                                "failed COPY bumped copy.rows_loaded"
                            );
                            match c.query("SELECT COUNT(*) FROM ev") {
                                Ok(r) => assert_eq!(
                                    r.rows[0].get(0).as_i64(),
                                    Some(expected),
                                    "failed COPY left rows behind"
                                ),
                                Err(e) => assert_retryable("post-copy select", &e),
                            }
                        }
                    }
                }
                // SELECT: exact or typed-retryable (retry exhaustion).
                0 | 1 => match c.query("SELECT COUNT(*) FROM ev") {
                    Ok(r) => assert_eq!(
                        r.rows[0].get(0).as_i64(),
                        Some(expected),
                        "torn read under chaos"
                    ),
                    Err(e) => assert_retryable("select", &e),
                },
                // Kill one node (at most one dead at a time: synchronous
                // primary+secondary replication tolerates one failure).
                2 if dead.is_none() => {
                    let n = redshift_sim::distribution::NodeId((lit % 3) as u32);
                    assert!(store.kill_node(n), "kill of a live node must report true");
                    dead = Some(n);
                }
                // Revive + re-replicate (idempotency is covered by the
                // mirror unit tests; here revive must report true once).
                2 | 3 => {
                    if let Some(n) = dead.take() {
                        assert!(store.revive_node(n), "revive of a dead node must report true");
                        if let Err(e) = store.re_replicate(n) {
                            assert_retryable("re_replicate", &e);
                        }
                    }
                }
                // Drain the continuous-backup queue (requeues on failure).
                4 => {
                    if let Err(e) = store.drain_backup_queue() {
                        assert_retryable("backup_drain", &e);
                    }
                }
                // Snapshot + streaming restore against the same flaky S3.
                _ => {
                    use redshift_sim::replication::SnapshotKind;
                    match c.create_snapshot(&format!("s{step}"), SnapshotKind::User) {
                        Err(e) => assert_retryable("snapshot", &e),
                        Ok(_) => {
                            let restored = Cluster::restore_from_snapshot(
                                ClusterConfig::new(format!("chaos-r{step}"))
                                    .nodes(3)
                                    .slices_per_node(1)
                                    .retry(retry)
                                    .seed(*seed),
                                Arc::clone(c.s3()),
                                "us-east-1",
                                "chaos",
                                &format!("s{step}"),
                                None,
                            );
                            match restored {
                                Err(e) => assert_retryable("restore.open", &e),
                                Ok(r) => match r.query("SELECT COUNT(*) FROM ev") {
                                    Ok(rows) => assert_eq!(
                                        rows.rows[0].get(0).as_i64(),
                                        Some(expected),
                                        "restore served wrong data under chaos"
                                    ),
                                    Err(e) => assert_retryable("restore.query", &e),
                                },
                            }
                        }
                    }
                }
            }
        }

        // Faults clear → the cluster heals in place and books are exact.
        c.faults().clear_all();
        if let Some(n) = dead.take() {
            assert!(store.revive_node(n));
            store.re_replicate(n).unwrap();
        }
        while store.backup_backlog() > 0 {
            store.drain_backup_queue().unwrap();
        }
        let n = c.query("SELECT COUNT(*) FROM ev").unwrap().rows[0].get(0).as_i64();
        assert_eq!(n, Some(expected), "final count drifted");
        // Injections are auditable with plain SQL, and nothing leaked.
        let ev = c.query("SELECT COUNT(*) FROM stl_fault_event").unwrap().rows[0]
            .get(0)
            .as_i64()
            .unwrap();
        assert_eq!(ev, c.faults().events().len() as i64);
        assert_eq!(c.trace().open_spans(), 0, "chaos leaked spans");
        assert!(t0.elapsed() < Duration::from_secs(20), "chaos case hung: {:?}", t0.elapsed());
    });
}

// ---------------------------------------------------------------------
// Sessions + leader result cache: randomized multi-session schedules.
// ---------------------------------------------------------------------

/// A schedule of `(op, slot, literal)` steps over four session slots,
/// plus a seed. Ops: connect / abrupt-disconnect / query / INSERT /
/// failed COPY / committed COPY.
fn arb_session_case() -> Gen<(Vec<(usize, usize, i64)>, u64)> {
    prop::pair(
        prop::vec_of(
            prop::triple(prop::range(0usize..6), prop::range(0usize..4), prop::range(0i64..1000)),
            8..40,
        ),
        prop::range(0u64..1_000_000),
    )
}

#[test]
fn session_schedule_cache_and_leak_invariants() {
    use redshift_sim::core::Session;
    use redshift_sim::faultkit::{fp, ErrClass, FaultSpec};

    const QUERIES: [&str; 3] = [
        "SELECT COUNT(*) FROM t",
        "SELECT SUM(k) FROM t",
        "SELECT k FROM t ORDER BY k LIMIT 5",
    ];

    let cfg = Config::with_cases(16).regressions_file(regressions());
    prop::check("session_schedule", &cfg, &arb_session_case(), |(schedule, seed)| {
        let c = Cluster::launch(
            ClusterConfig::new("sessprop").nodes(2).slices_per_node(2).seed(*seed),
        )
        .unwrap();
        c.execute("CREATE TABLE t (k BIGINT)").unwrap();
        c.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let mut slots: [Option<Session>; 4] = [None, None, None, None];
        let groups = [None, Some("etl_users"), None, Some("dash")];
        let connect = |i: usize| {
            let mut opts = SessionOpts::new(format!("u{i}"));
            if let Some(g) = groups[i] {
                opts = opts.user_group(g);
            }
            c.connect(opts).unwrap()
        };
        for (step, &(op, slot, lit)) in schedule.iter().enumerate() {
            match op {
                // (Re)connect the slot; reconnects reuse the userid.
                0 => slots[slot] = Some(connect(slot)),
                // Abrupt disconnect: drop with no goodbye mid-schedule.
                1 => slots[slot] = None,
                // Query — hit or miss, rows must be bit-identical to a
                // cold execution of the same text (the sessionless API
                // never touches the result cache).
                2 | 3 => {
                    let s = slots[slot].get_or_insert_with(|| connect(slot));
                    let sql = QUERIES[(lit as usize) % QUERIES.len()];
                    let warm = s.query(sql).unwrap();
                    let cold = c.query(sql).unwrap();
                    assert!(!cold.result_cache_hit);
                    assert_eq!(
                        warm.rows, cold.rows,
                        "cached rows diverged from cold execution for {sql:?}"
                    );
                    assert_eq!(warm.columns, cold.columns);
                }
                // Committed INSERT through a session: must invalidate —
                // verified implicitly by the cold-comparison above.
                4 => {
                    let s = slots[slot].get_or_insert_with(|| connect(slot));
                    s.execute(&format!("INSERT INTO t VALUES ({lit})")).unwrap();
                }
                // A COPY that dies mid-transaction: rolled back, and the
                // catalog version (the cache's invalidation clock) must
                // not move — previously cached results stay servable.
                _ => {
                    let s = slots[slot].get_or_insert_with(|| connect(slot));
                    c.put_s3_object(&format!("sess/{step}/obj"), format!("{lit}\n").into_bytes());
                    let v_before = c.catalog_version();
                    c.faults()
                        .configure(fp::COPY_FETCH_OBJECT, FaultSpec::err(ErrClass::NotFound).once());
                    let count_before = c.query("SELECT COUNT(*) FROM t").unwrap();
                    assert!(s.execute(&format!("COPY t FROM 's3://sess/{step}/'")).is_err());
                    assert_eq!(
                        c.catalog_version(),
                        v_before,
                        "rolled-back COPY bumped the catalog version"
                    );
                    let count_after = c.query("SELECT COUNT(*) FROM t").unwrap();
                    assert_eq!(count_before.rows, count_after.rows, "failed COPY left rows");
                    // The same COPY committed does move the clock.
                    s.execute(&format!("COPY t FROM 's3://sess/{step}/'")).unwrap();
                    assert!(c.catalog_version() > v_before);
                }
            }
        }
        // Every exit path unregisters: dropping the remaining handles
        // leaves no live sessions, no gauge residue, no open spans.
        slots.iter_mut().for_each(|s| *s = None);
        assert_eq!(c.session_manager().active_count(), 0, "session leak");
        assert_eq!(c.trace().gauge_value("sessions.active"), 0);
        assert_eq!(c.trace().open_spans(), 0, "session schedule leaked spans");
        // Hit/miss accounting is coherent: every probe is one or the other.
        let (hits, misses) = c.result_cache_stats();
        assert_eq!(
            hits + misses,
            c.trace().counter_value("result_cache.hits")
                + c.trace().counter_value("result_cache.misses"),
            "cache counters diverged from telemetry"
        );
    });
}

#[test]
fn session_wire_disconnect_never_leaks() {
    use redshift_sim::frontdoor::{FrontDoor, ServerOpts, WireClient};

    // Randomized mix of polite and abrupt wire disconnects, some with a
    // statement in flight; afterwards the server must be fully clean.
    let gen = prop::vec_of(prop::range(0usize..3), 2..10);
    let cfg = Config::with_cases(8).regressions_file(regressions());
    prop::check("session_wire_disconnect", &cfg, &gen, |plan| {
        let c = Cluster::launch(ClusterConfig::new("wiredrop").nodes(2).slices_per_node(2))
            .unwrap();
        c.execute("CREATE TABLE t (k BIGINT)").unwrap();
        c.execute("INSERT INTO t VALUES (1), (2)").unwrap();
        let door = FrontDoor::serve(Arc::clone(&c), ServerOpts::default()).unwrap();
        for &kind in plan {
            let mut client = WireClient::connect(door.addr(), "w", None).unwrap();
            match kind {
                0 => {
                    client.query("SELECT COUNT(*) FROM t").unwrap();
                    client.bye().unwrap();
                }
                1 => drop(client), // abrupt, idle
                _ => {
                    client.query("SELECT SUM(k) FROM t").unwrap();
                    drop(client); // abrupt, right after a statement
                }
            }
        }
        assert!(door.drain(), "drain timed out");
        assert_eq!(c.session_manager().active_count(), 0, "wire session leak");
        assert_eq!(c.trace().gauge_value("sessions.active"), 0);
        assert_eq!(c.trace().gauge_value("frontdoor.connections"), 0);
        assert_eq!(c.trace().open_spans(), 0, "wire handler leaked spans");
    });
}

// ---------------------------------------------------------------------
// Query-monitoring rules (QMR) + per-step profiler invariants (PR 7).
// ---------------------------------------------------------------------

#[test]
fn qmr_abort_never_fires_on_explain_or_system_reads() {
    use redshift_sim::core::{QmrAction, QmrMetric, WlmConfig, WlmQueueDef};

    // A poison rule: any admitted SELECT that scans a single row is
    // aborted. Diagnostics (EXPLAIN, EXPLAIN ANALYZE) and system-table
    // reads bypass WLM admission entirely, so no random mix of them may
    // ever trip it.
    let gen = prop::vec_of(prop::range(0usize..3), 1..12);
    let cfg = Config::with_cases(8).regressions_file(regressions());
    prop::check("qmr_abort_explain_exempt", &cfg, &gen, |plan| {
        let wlm = WlmConfig::with_queues(vec![WlmQueueDef::new("strict", 4).rule(
            "no_scans",
            QmrMetric::RowsScanned,
            0,
            QmrAction::Abort,
        )]);
        let c = Cluster::launch(
            ClusterConfig::new("qmr-exempt").nodes(2).slices_per_node(2).wlm(wlm),
        )
        .unwrap();
        c.execute("CREATE TABLE t (k BIGINT)").unwrap();
        c.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        for &kind in plan {
            match kind {
                0 => {
                    c.query("EXPLAIN SELECT COUNT(*) FROM t").unwrap();
                }
                1 => {
                    // Executes for real (and scans rows), yet holds no
                    // service-class slot — rules cannot see it.
                    c.query("EXPLAIN ANALYZE SELECT COUNT(*) FROM t").unwrap();
                }
                _ => {
                    c.query("SELECT COUNT(*) FROM stl_wlm_rule_action").unwrap();
                }
            }
        }
        assert!(
            c.trace().records_named("wlm_rule_action").is_empty(),
            "a rule fired on a diagnostic statement"
        );
        // The same query executed for real is killed by the rule …
        let err = c.query("SELECT COUNT(*) FROM t").unwrap_err();
        assert!(err.to_string().contains("monitoring rule"), "unexpected error: {err}");
        let fired = c.query("SELECT rule, action FROM stl_wlm_rule_action").unwrap();
        assert_eq!(fired.rows.len(), 1, "exactly the real SELECT fired");
        assert_eq!(fired.rows[0].get(0).as_str(), Some("no_scans"));
        assert_eq!(fired.rows[0].get(1).as_str(), Some("abort"));
        // … and the abort released its slot and leaked nothing.
        for sc in c.wlm().service_class_states() {
            assert_eq!(sc.in_flight, 0, "{}: aborted query still holds a slot", sc.name);
        }
        assert_eq!(c.trace().open_spans(), 0, "abort path leaked spans");
    });
}

#[test]
fn qmr_rule_hop_and_timeout_hop_both_count_in_stl_hops() {
    use redshift_sim::core::{QmrAction, QmrMetric, WlmConfig, WlmQueueDef};
    use std::time::Duration;

    let wlm = WlmConfig::with_queues(vec![
        WlmQueueDef::new("narrow", 1).max_wait(Duration::from_millis(5)).rule(
            "big_scan",
            QmrMetric::RowsScanned,
            100,
            QmrAction::Hop,
        ),
        WlmQueueDef::new("wide", 2),
    ]);
    let c = Cluster::launch(
        ClusterConfig::new("qmr-hops").nodes(2).slices_per_node(2).wlm(wlm),
    )
    .unwrap();
    c.execute("CREATE TABLE big (k BIGINT)").unwrap();
    let values = (0..400).map(|i| format!("({i})")).collect::<Vec<_>>().join(", ");
    c.execute(&format!("INSERT INTO big VALUES {values}")).unwrap();

    // 1. Rule hop: a scan-heavy query admitted to `narrow` trips the
    // rows_scanned rule at slice-merge and finishes in `wide`, with the
    // firing logged in stl_wlm_rule_action.
    let r = c.query("SELECT COUNT(*) FROM big").unwrap();
    assert_eq!(r.rows[0].get(0).as_i64(), Some(400));
    let wq = c.query("SELECT service_class, hops FROM stl_wlm_query").unwrap();
    assert_eq!(wq.rows.len(), 1);
    assert_eq!(wq.rows[0].get(0).as_str(), Some("wide"), "finished in the wider queue");
    assert_eq!(wq.rows[0].get(1).as_i64(), Some(1));
    let fired = c.query("SELECT rule, action FROM stl_wlm_rule_action").unwrap();
    assert_eq!(fired.rows.len(), 1);
    assert_eq!(fired.rows[0].get(0).as_str(), Some("big_scan"));
    assert_eq!(fired.rows[0].get(1).as_str(), Some("hop"));

    // 2. Timeout hop: hold narrow's only slot, then admit again — the
    // waiter exhausts max_wait and hops to wide through the PR-5
    // machinery. Both hop kinds land in the same stl_wlm_query.hops.
    let hog = c.wlm().admit(1, None).unwrap();
    let hopped = c.wlm().admit(1, None).unwrap();
    assert_eq!(hopped.service_class(), "wide");
    drop(hopped);
    drop(hog);
    let both = c.query("SELECT COUNT(*) FROM stl_wlm_query WHERE hops = 1").unwrap();
    assert_eq!(
        both.rows[0].get(0).as_i64(),
        Some(2),
        "rule hop and timeout hop both counted in stl_wlm_query.hops"
    );
}

#[test]
fn qmr_rules_under_chaos_never_leak_spans_or_slots() {
    use redshift_sim::core::{QmrAction, QmrMetric, WlmConfig, WlmQueueDef};
    use redshift_sim::testkit::par;

    // Concurrent random mixes of completing, aborting and diagnostic
    // statements against a rules-armed config: afterwards the books
    // must balance exactly — no slot, waiter or span outlives its query.
    let gen = prop::vec_of(prop::vec_of(prop::range(0usize..4), 1..8), 2..5);
    let cfg = Config::with_cases(8).regressions_file(regressions());
    prop::check("qmr_chaos_no_leaks", &cfg, &gen, |threads| {
        let wlm = WlmConfig::with_queues(vec![
            WlmQueueDef::new("watched", 2)
                .rule("log_all", QmrMetric::QueryExecTime, 0, QmrAction::Log)
                .rule("kill_big", QmrMetric::RowsScanned, 100, QmrAction::Abort),
            WlmQueueDef::new("fallback", 2),
        ]);
        let c = Cluster::launch(
            ClusterConfig::new("qmr-chaos").nodes(2).slices_per_node(2).wlm(wlm),
        )
        .unwrap();
        c.execute("CREATE TABLE small (k BIGINT)").unwrap();
        c.execute("INSERT INTO small VALUES (1), (2), (3)").unwrap();
        c.execute("CREATE TABLE big (k BIGINT)").unwrap();
        let values = (0..300).map(|i| format!("({i})")).collect::<Vec<_>>().join(", ");
        c.execute(&format!("INSERT INTO big VALUES {values}")).unwrap();
        let results: Vec<Result<(), String>> = par::map(threads.clone(), |script| {
            for kind in script {
                match kind {
                    0 => {
                        c.query("SELECT COUNT(*) FROM small").map_err(|e| e.to_string())?;
                    }
                    1 => {
                        if c.query("SELECT COUNT(*) FROM big").is_ok() {
                            return Err("abort rule did not fire on the big scan".into());
                        }
                    }
                    2 => {
                        c.query("EXPLAIN ANALYZE SELECT SUM(k) FROM small")
                            .map_err(|e| e.to_string())?;
                    }
                    _ => {
                        c.query("SELECT COUNT(*) FROM stl_wlm_rule_action")
                            .map_err(|e| e.to_string())?;
                    }
                }
            }
            Ok(())
        });
        for r in results {
            r.unwrap();
        }
        assert_eq!(c.trace().open_spans(), 0, "rule evaluation leaked spans");
        for sc in c.wlm().service_class_states() {
            assert_eq!(sc.in_flight, 0, "{}: slot leaked", sc.name);
            assert_eq!(sc.queued, 0, "{}: waiter leaked", sc.name);
        }
        assert_eq!(
            c.trace().counter_value("wlm.admitted"),
            c.trace().counter_value("wlm.completed")
                + c.trace().counter_value("wlm.aborted"),
            "every admission either completed or aborted"
        );
    });
}

#[test]
fn profile_report_rows_equal_queries_times_slices_times_steps() {
    // Pinned workload over a 4-slice cluster: every executed query must
    // contribute exactly (plan steps × slices) svl_query_report rows,
    // where the step count is the query's own EXPLAIN line count.
    let c = Cluster::launch(
        ClusterConfig::new("profile-prop").nodes(2).slices_per_node(2),
    )
    .unwrap();
    c.execute("CREATE TABLE t (k BIGINT, v BIGINT)").unwrap();
    c.execute("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 40)").unwrap();
    let queries = [
        "SELECT COUNT(*) FROM t",
        "SELECT k FROM t WHERE v > 15 ORDER BY k LIMIT 2",
        "SELECT a.k, b.v FROM t a JOIN t b ON a.k = b.k",
    ];
    let slices = 4i64;
    let mut expected = 0i64;
    for (i, q) in queries.iter().enumerate() {
        let plan = c.query(&format!("EXPLAIN {q}")).unwrap();
        let steps = plan.rows.len() as i64;
        assert!(steps >= 1);
        c.query(q).unwrap();
        expected += steps * slices;
        // EXPLAIN allocates no query id, so executed queries are 1-based
        // and dense; per-query row count is its own steps × slices.
        let per = c
            .query(&format!("SELECT COUNT(*) FROM svl_query_report WHERE query = {}", i + 1))
            .unwrap();
        assert_eq!(per.rows[0].get(0).as_i64(), Some(steps * slices), "query {q:?}");
    }
    let got = c.query("SELECT COUNT(*) FROM svl_query_report").unwrap();
    assert_eq!(got.rows[0].get(0).as_i64(), Some(expected));

    // With profiling off the table stays empty (and queries still run).
    let off = Cluster::launch(
        ClusterConfig::new("profile-off").nodes(2).slices_per_node(2).query_profiling(false),
    )
    .unwrap();
    off.execute("CREATE TABLE t (k BIGINT)").unwrap();
    off.execute("INSERT INTO t VALUES (1)").unwrap();
    off.query("SELECT COUNT(*) FROM t").unwrap();
    let none = off.query("SELECT COUNT(*) FROM svl_query_report").unwrap();
    assert_eq!(none.rows[0].get(0).as_i64(), Some(0));
}

#[test]
fn profile_explain_analyze_annotates_three_table_join() {
    let c = Cluster::launch(ClusterConfig::new("ea-join").nodes(2).slices_per_node(2)).unwrap();
    c.execute("CREATE TABLE users (id BIGINT, name VARCHAR)").unwrap();
    c.execute("CREATE TABLE orders (id BIGINT, user_id BIGINT)").unwrap();
    c.execute("CREATE TABLE items (order_id BIGINT, sku BIGINT)").unwrap();
    c.execute("INSERT INTO users VALUES (1, 'a'), (2, 'b')").unwrap();
    c.execute("INSERT INTO orders VALUES (10, 1), (11, 2), (12, 1)").unwrap();
    c.execute("INSERT INTO items VALUES (10, 100), (11, 101), (12, 102), (12, 103)").unwrap();
    let sql = "SELECT u.name, COUNT(*) AS n FROM users u \
               JOIN orders o ON u.id = o.user_id \
               JOIN items i ON o.id = i.order_id GROUP BY u.name";
    let plain = c.query(&format!("EXPLAIN {sql}")).unwrap();
    let analyzed = c.query(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
    assert_eq!(
        analyzed.rows.len(),
        plain.rows.len(),
        "one annotated line per plan operator"
    );
    for row in &analyzed.rows {
        let v = row.get(0);
        let line = v.as_str().unwrap();
        assert!(line.contains("(actual rows="), "unannotated operator line: {line}");
        assert!(line.contains("time="), "missing elapsed time: {line}");
    }
    // It executed for real (per-operator metrics flowed back) …
    assert!(analyzed.metrics.rows_scanned > 0, "EXPLAIN ANALYZE must execute");
    // … but like EXPLAIN it is a diagnostic: not an stl_query row.
    let logged = c.query("SELECT COUNT(*) FROM stl_query").unwrap();
    assert_eq!(logged.rows[0].get(0).as_i64(), Some(0), "EXPLAIN ANALYZE is not logged");
}

// ---------------------------------------------------------------------
// Workload synthesis + deterministic replay (crates/workload).
// ---------------------------------------------------------------------

#[test]
fn workload_schedule_determinism_and_replay_counts() {
    use redshift_sim::workload::{QueryClass, ReplayDriver, ReplayMode, Schedule, WorkloadConfig};
    prop::check(
        "workload_schedule_determinism_and_replay_counts",
        &Config::with_cases(6).regressions_file(regressions()),
        &prop::range(0u64..1_000_000),
        |seed| {
            let cfg = WorkloadConfig::quick(16).with_seed(*seed);
            // Same seed + config ⇒ byte-identical schedule; a different
            // seed must not collide.
            let a = Schedule::synthesize(&cfg);
            assert_eq!(a.to_bytes(), Schedule::synthesize(&cfg).to_bytes(), "same-seed bytes");
            assert_ne!(
                a.to_bytes(),
                Schedule::synthesize(&cfg.clone().with_seed(*seed ^ 0x5eed_0001)).to_bytes(),
                "different seed must produce a different schedule"
            );

            // Replaying the same schedule twice against fresh clusters:
            // identical per-class query counts and cache-hit totals
            // (virtual mode is sequential, hence end-to-end deterministic).
            let driver = ReplayDriver::new(cfg);
            let run = |name: &str| {
                let cl = driver.launch(name).unwrap();
                let rep = driver.run(&cl, ReplayMode::Virtual).unwrap();
                assert_eq!(rep.total_errors(), 0, "replay errors:\n{}", rep.summary());
                rep
            };
            let r1 = run("wl-det-a");
            let r2 = run("wl-det-b");
            for c in QueryClass::ALL {
                assert_eq!(r1.class(c).queries, r2.class(c).queries, "{c:?} query count");
                assert_eq!(r1.class(c).copies, r2.class(c).copies, "{c:?} copy count");
                assert_eq!(r1.class(c).cache_hits, r2.class(c).cache_hits, "{c:?} cache hits");
            }
            assert_eq!(r1.result_cache, r2.result_cache, "cluster-wide cache counters");
            // The replay executed exactly the schedule — no more, no less.
            for ((class, counts), stats) in
                driver.schedule().class_counts().iter().zip(&r1.per_class)
            {
                assert_eq!(*class, stats.class);
                assert_eq!(counts.queries, stats.queries, "{class:?} scheduled vs executed");
                assert_eq!(counts.copies, stats.copies, "{class:?} scheduled vs executed");
            }
        },
    );
}

#[test]
fn workload_wlm_qmr_replay_accounting_and_sqa_latency() {
    use redshift_sim::core::{QmrAction, QmrMetric};
    use redshift_sim::workload::{QueryClass, ReplayDriver, ReplayMode, WorkloadConfig};

    // A mixed diurnal fleet replayed with real concurrency. The SQA cost
    // ceiling is tightened so ETL self-joins route to their queue (where
    // a QMR rule watches them) while short dashboard panels stay
    // SQA-eligible. The rule pins a deterministic metric — rows scanned;
    // wall-time metrics would make firings nondeterministic — and only
    // logs, so the replay still runs clean.
    let mut cfg = WorkloadConfig::quick(24).with_seed(0xBEEF);
    cfg.sqa_max_cost = 6_000;
    let driver = ReplayDriver::new(cfg.clone());
    let mut wlm = cfg.wlm();
    wlm.queues[0] =
        wlm.queues[0].clone().rule("etl_big_scan", QmrMetric::RowsScanned, 1_000, QmrAction::Log);
    let cluster = Cluster::launch(cfg.cluster("wl-qmr").wlm(wlm)).unwrap();
    driver.prepare(&cluster).unwrap();
    let report =
        driver.run(&cluster, ReplayMode::Wall { workers: 6, time_scale: None }).unwrap();

    assert_eq!(report.total_errors(), 0, "replay errors:\n{}", report.summary());
    // The admission ledger balances: every admit reached exactly one
    // terminal state, and the generous queue waits mean none of them
    // were evictions or rejections.
    assert!(report.wlm.balanced(), "wlm ledger unbalanced: {:?}", report.wlm);
    assert_eq!(report.wlm.rejected, 0, "unexpected rejections: {:?}", report.wlm);
    assert_eq!(report.wlm.evicted, 0, "unexpected evictions: {:?}", report.wlm);
    assert!(report.wlm.sqa_admits > 0, "short queries should ride SQA: {:?}", report.wlm);
    // ETL transforms scan well past the 1k-row threshold: the rule fired.
    assert!(report.wlm.rule_actions > 0, "QMR rule never fired: {:?}", report.wlm);
    // No leaks: every span closed, every slot drained, every session gone.
    assert_eq!(cluster.trace().open_spans(), 0, "span leak");
    for s in cluster.wlm().service_class_states() {
        assert_eq!(s.in_flight, 0, "slot leak in {}", s.name);
        assert_eq!(s.queued, 0, "queue leak in {}", s.name);
    }
    assert_eq!(cluster.session_manager().active_count(), 0, "session leak");
    // The short-query path pays off end to end: dashboard p50 (repeat
    // panels, SQA-eligible) lands under the ETL class p50 (self-joins).
    // `<=` not `<`: quantiles come out of log-bucketed histograms
    // (≤12.5% error), so on a loaded single-core runner two distinct
    // true p50s can quantize into the same bucket and report equal.
    let dash = report.class(QueryClass::Dashboard).latency.quantile(0.5);
    let etl = report.class(QueryClass::Etl).latency.quantile(0.5);
    assert!(dash <= etl, "dashboard p50 {dash}ns should beat ETL p50 {etl}ns");
}

#[test]
fn workload_chaos_delay_rides_virtual_clock() {
    use redshift_sim::faultkit::{fp, FaultSpec};
    use redshift_sim::workload::{ReplayDriver, ReplayMode, WorkloadConfig};

    // Chaos stalls under virtual-time replay: every injected delay is
    // 30 wall-seconds' worth of stall, so if even one of them hit a real
    // sleep the test would blow far past its bound. Instead the replay
    // driver's delay hook advances the virtual clock and the run stays
    // wall-instant. (The faultkit unit test pins the tight <100ms bound
    // on the hook itself; this covers the integrated replay path.)
    let driver = ReplayDriver::new(WorkloadConfig::quick(8).with_seed(0xC0FFEE));
    let cluster = driver.launch("wl-chaos").unwrap();
    cluster.faults().reseed(1);
    cluster.faults().configure(fp::MIRROR_WRITE_PRIMARY, FaultSpec::delay_ms(30_000).times(40));
    let t0 = std::time::Instant::now();
    let report = driver.run(&cluster, ReplayMode::Virtual).unwrap();
    let wall = t0.elapsed();
    let injected = cluster.faults().injected_total();
    cluster.faults().clear_all();

    assert_eq!(report.total_errors(), 0, "replay errors:\n{}", report.summary());
    assert!(injected > 0, "the COPY cadence should hit the mirror-write seam");
    assert!(
        wall < std::time::Duration::from_secs(10),
        "{injected} x 30s injected stalls must ride the virtual clock, not wall \
         (replay took {wall:?})"
    );
    assert!(report.virtual_end.as_micros() > 0);
}

// ---------------------------------------------------------------------
// MVCC snapshots + first-committer-wins (multi-writer transactions).
// ---------------------------------------------------------------------

/// Per-thread statement scripts over one shared table. kind 0 = snapshot
/// COUNT, kind 1 = 3-row INSERT, kind 2 = 3-row COPY; the literal keys
/// the written values.
fn arb_mvcc_workload() -> Gen<Vec<Vec<(usize, i64)>>> {
    prop::vec_of(
        prop::vec_of(prop::pair(prop::range(0usize..3), prop::range(0i64..1_000)), 1..8),
        2..5,
    )
}

#[test]
fn mvcc_snapshot_reads_and_first_committer_wins() {
    use redshift_sim::common::RsError;
    use redshift_sim::testkit::par;
    use std::sync::atomic::{AtomicU64, Ordering};

    let cfg = Config::with_cases(24).regressions_file(regressions());
    prop::check(
        "mvcc_snapshot_reads_and_first_committer_wins",
        &cfg,
        &arb_mvcc_workload(),
        |threads| {
            let c = Cluster::launch(
                ClusterConfig::new("mvcc-prop").nodes(2).slices_per_node(2),
            )
            .unwrap();
            c.execute("CREATE TABLE m (k BIGINT, v BIGINT) DISTKEY(k)").unwrap();
            let committed = AtomicU64::new(0);
            let conflicts_seen = AtomicU64::new(0);
            let results: Vec<Result<(), String>> = par::map(threads.clone(), |script| {
                // One client connection per thread; the result cache is
                // off so every COUNT really snapshots the catalog.
                let s = c
                    .connect(SessionOpts::new("mvcc").result_cache(false))
                    .map_err(|e| e.to_string())?;
                let mut last = 0i64;
                for (kind, lit) in script {
                    match kind {
                        0 => {
                            let r =
                                s.query("SELECT COUNT(*) FROM m").map_err(|e| e.to_string())?;
                            let n = r.rows[0].get(0).as_i64().unwrap();
                            // Every committed write is exactly 3 rows: a
                            // snapshot read must never see a torn write …
                            if n % 3 != 0 {
                                return Err(format!("torn snapshot: {n} rows"));
                            }
                            // … and commits are monotonic, so one session's
                            // sequential reads never travel back in time.
                            if n < last {
                                return Err(format!("time travel: {n} after {last}"));
                            }
                            last = n;
                        }
                        kind => {
                            let stmt = if kind == 1 {
                                format!(
                                    "INSERT INTO m VALUES ({lit}, 1), ({lit}, 2), ({lit}, 3)"
                                )
                            } else {
                                // Trailing slash keeps prefixes disjoint:
                                // COPY 's3://mv/45/' must not also match
                                // a thread's 'mv/450/…' objects.
                                c.put_s3_object(
                                    &format!("mv/{lit}/data"),
                                    format!("{lit},1\n{lit},2\n{lit},3\n").into_bytes(),
                                );
                                format!("COPY m FROM 's3://mv/{lit}/'")
                            };
                            // First committer wins; the loser retries the
                            // statement, exactly as the error instructs.
                            loop {
                                match s.execute(&stmt) {
                                    Ok(_) => {
                                        committed.fetch_add(1, Ordering::Relaxed);
                                        break;
                                    }
                                    Err(RsError::Serializable(_)) => {
                                        conflicts_seen.fetch_add(1, Ordering::Relaxed);
                                        std::thread::yield_now();
                                    }
                                    Err(e) => return Err(e.to_string()),
                                }
                            }
                        }
                    }
                }
                Ok(())
            });
            for r in results {
                r.unwrap();
            }

            // Exactly-one-winner accounting: every conflict a client saw
            // is one txn.conflicts tick and one stl_tr_conflict row.
            let seen = conflicts_seen.load(Ordering::Relaxed);
            assert_eq!(c.trace().counter_value("txn.conflicts"), seen);
            let log = c.query("SELECT COUNT(*) FROM stl_tr_conflict").unwrap();
            assert_eq!(log.rows[0].get(0).as_i64(), Some(seen as i64));

            // All retried writes eventually committed; nothing was lost
            // or double-applied.
            let n = c.query("SELECT COUNT(*) FROM m").unwrap().rows[0]
                .get(0)
                .as_i64()
                .unwrap();
            assert_eq!(n as u64, committed.load(Ordering::Relaxed) * 3);
            assert_eq!(c.rows_estimate("m"), Some(n as u64));

            // Leak freedom at quiesce: spans closed, sessions gone, WLM
            // slots drained.
            assert_eq!(c.trace().open_spans(), 0, "span leak");
            assert_eq!(c.session_manager().active_count(), 0, "session leak");
            for sc in c.wlm().service_class_states() {
                assert_eq!(sc.in_flight, 0, "{}: slot leaked", sc.name);
                assert_eq!(sc.queued, 0, "{}: waiter leaked", sc.name);
            }
        },
    );
}

// ---------------------------------------------------------------------
// Crash recovery as a property: a seeded write schedule, a crash at a
// random armed WAL seam, recovery, and the committed-prefix invariant.
// ---------------------------------------------------------------------

/// (write values, torn-statement seam). seam 0 = clean crash (no torn
/// statement), 1..=3 = the WAL seam the final, uncommitted statement
/// dies at.
fn arb_recovery_case() -> Gen<(Vec<i64>, usize)> {
    prop::pair(prop::vec_of(prop::range(1i64..1_000), 1..10), prop::range(0usize..4))
}

#[test]
fn recovery_replays_exactly_the_committed_prefix() {
    use redshift_sim::faultkit::{fp, ErrClass, FaultSpec};

    let cfg = Config::with_cases(16).regressions_file(regressions());
    prop::check(
        "recovery_replays_exactly_the_committed_prefix",
        &cfg,
        &arb_recovery_case(),
        |(values, seam)| {
            let c = Cluster::launch(
                ClusterConfig::new("rec-prop").nodes(2).slices_per_node(2).rows_per_group(32),
            )
            .unwrap();
            c.execute("CREATE TABLE r (k BIGINT, v BIGINT)").unwrap();
            // The committed prefix: alternate INSERT and COPY so both
            // delta shapes land in the redo log.
            let mut sum = 0i64;
            for (i, v) in values.iter().enumerate() {
                if i % 2 == 0 {
                    c.execute(&format!("INSERT INTO r VALUES ({v}, {i})")).unwrap();
                } else {
                    let key = format!("rv/{i}");
                    c.put_s3_object(&key, format!("{v},{i}\n").into_bytes());
                    c.execute(&format!("COPY r FROM 's3://{key}'")).unwrap();
                }
                sum += v;
            }

            // The torn statement (if any): dies at a WAL seam with the
            // hard-crash flag up, so its blocks stay behind as orphans —
            // the state a real power cut leaves.
            if *seam > 0 {
                let point =
                    [fp::WAL_APPEND, fp::WAL_SYNC, fp::WAL_COMMIT][(seam - 1) % 3];
                c.arm_hard_crash();
                c.faults().configure(point, FaultSpec::err(ErrClass::Fault).once());
                c.execute("INSERT INTO r VALUES (1000000, 0)").unwrap_err();
            }

            let r = Cluster::recover(c.crash().unwrap()).unwrap();
            let q = r.query("SELECT COUNT(*), SUM(k) FROM r").unwrap();
            assert_eq!(
                q.rows[0].get(0).as_i64(),
                Some(values.len() as i64),
                "recovered row count must equal the committed prefix"
            );
            assert_eq!(q.rows[0].get(1).as_i64(), Some(sum), "recovered content drifted");
            assert_eq!(r.rows_estimate("r"), Some(values.len() as u64));
            if *seam > 0 {
                assert!(
                    r.trace().counter_value("recovery.orphan_blocks_scrubbed") > 0,
                    "the torn statement's blocks must be scrubbed at recovery"
                );
            }

            // Recovery is idempotent (crash the recovered cluster before
            // any new write: same answer), and the revived cluster is a
            // first-class writer again.
            let r2 = Cluster::recover(r.crash().unwrap()).unwrap();
            let q2 = r2.query("SELECT COUNT(*), SUM(k) FROM r").unwrap();
            assert_eq!(q2.rows, q.rows, "second crash/recover must be a fixpoint");
            r2.execute("INSERT INTO r VALUES (7, 7)").unwrap();
            assert_eq!(r2.rows_estimate("r"), Some(values.len() as u64 + 1));
        },
    );
}

// ---------------------------------------------------------------------
// Vectorized kernels are bit-identical to the interpreter.
// ---------------------------------------------------------------------
//
// The typed kernels in `engine::kernels` must return exactly the
// selection vector the row-at-a-time interpreter produces — for every
// expression shape they claim to cover, over columns with NULLs, NaN
// payloads (both orderings of `cmp_f64`), signed zeros and infinities.
// Expressions the kernels decline (`None`) are fine: the executor falls
// back; disagreement is the only failure.

mod vector_support {
    use redshift_sim::common::{ColumnData, DataType, Value};
    use redshift_sim::sql::ast::{BinaryOp, UnaryOp};
    use redshift_sim::sql::plan::BoundExpr;
    use redshift_sim::testkit::rng::{gen_u64_below, Pcg32};

    pub const FLOAT_SPECIALS: &[f64] = &[
        0.0,
        -0.0,
        1.5,
        -2.5,
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        1e300,
    ];

    pub const STR_POOL: &[&str] = &["", "a", "ab", "zz", "redshift", "a%b"];

    /// Batch layout used by every vector_ test: col0 Int8, col1 Float8,
    /// col2 Varchar — all nullable.
    pub fn batch(
        ints: &[Option<i64>],
        floats: &[Option<usize>],
        strs: &[Option<usize>],
    ) -> Vec<ColumnData> {
        let n = ints.len().min(floats.len()).min(strs.len());
        let mut c0 = ColumnData::new(DataType::Int8);
        let mut c1 = ColumnData::new(DataType::Float8);
        let mut c2 = ColumnData::new(DataType::Varchar);
        for i in 0..n {
            match ints[i] {
                Some(x) => c0.push_value(&Value::Int8(x)).unwrap(),
                None => c0.push_null(),
            }
            match floats[i] {
                Some(j) => c1
                    .push_value(&Value::Float8(FLOAT_SPECIALS[j % FLOAT_SPECIALS.len()]))
                    .unwrap(),
                None => c1.push_null(),
            }
            match strs[i] {
                Some(j) => c2
                    .push_value(&Value::Str(STR_POOL[j % STR_POOL.len()].to_string()))
                    .unwrap(),
                None => c2.push_null(),
            }
        }
        vec![c0, c1, c2]
    }

    fn col(index: usize) -> BoundExpr {
        let ty = [DataType::Int8, DataType::Float8, DataType::Varchar][index];
        BoundExpr::Column { index, ty }
    }

    fn literal_for(rng: &mut Pcg32, index: usize) -> Value {
        if gen_u64_below(rng, 10) == 0 {
            return Value::Null;
        }
        match index {
            0 => Value::Int8(gen_u64_below(rng, 9) as i64 - 4),
            1 => Value::Float8(
                FLOAT_SPECIALS[gen_u64_below(rng, FLOAT_SPECIALS.len() as u64) as usize],
            ),
            _ => Value::Str(
                STR_POOL[gen_u64_below(rng, STR_POOL.len() as u64) as usize].to_string(),
            ),
        }
    }

    /// A random predicate over the fixed 3-column batch. Depth-bounded;
    /// leaves are comparisons, IS [NOT] NULL, [NOT] IN lists (sometimes
    /// deliberately mixed-type so the kernels must bail) and LIKE.
    pub fn gen_expr(rng: &mut Pcg32, depth: u32) -> BoundExpr {
        if depth > 0 && gen_u64_below(rng, 2) == 0 {
            return match gen_u64_below(rng, 3) {
                0 => BoundExpr::Unary {
                    op: UnaryOp::Not,
                    expr: Box::new(gen_expr(rng, depth - 1)),
                },
                n => BoundExpr::Binary {
                    left: Box::new(gen_expr(rng, depth - 1)),
                    op: if n == 1 { BinaryOp::And } else { BinaryOp::Or },
                    right: Box::new(gen_expr(rng, depth - 1)),
                },
            };
        }
        let index = gen_u64_below(rng, 3) as usize;
        match gen_u64_below(rng, 4) {
            0 => BoundExpr::IsNull {
                expr: Box::new(col(index)),
                negated: gen_u64_below(rng, 2) == 1,
            },
            1 => {
                let items = 1 + gen_u64_below(rng, 3);
                // 1-in-4 lists draw literals for a *different* column
                // type: the mixed-lane case the kernels must decline
                // rather than guess at.
                let lit_from = if gen_u64_below(rng, 4) == 0 {
                    gen_u64_below(rng, 3) as usize
                } else {
                    index
                };
                BoundExpr::InList {
                    expr: Box::new(col(index)),
                    list: (0..items).map(|_| literal_for(rng, lit_from)).collect(),
                    negated: gen_u64_below(rng, 2) == 1,
                }
            }
            2 if index == 2 => BoundExpr::Like {
                expr: Box::new(col(2)),
                pattern: ["%", "a%", "%b", "a", "_", "%a%"]
                    [gen_u64_below(rng, 6) as usize]
                    .to_string(),
                negated: gen_u64_below(rng, 2) == 1,
            },
            _ => {
                let ops = [
                    BinaryOp::Eq,
                    BinaryOp::NotEq,
                    BinaryOp::Lt,
                    BinaryOp::LtEq,
                    BinaryOp::Gt,
                    BinaryOp::GtEq,
                ];
                let lit = literal_for(rng, index);
                let (l, r): (BoundExpr, BoundExpr) = if gen_u64_below(rng, 2) == 0 {
                    (col(index), BoundExpr::Literal(lit))
                } else {
                    (BoundExpr::Literal(lit), col(index))
                };
                BoundExpr::Binary {
                    left: Box::new(l),
                    op: ops[gen_u64_below(rng, ops.len() as u64) as usize],
                    right: Box::new(r),
                }
            }
        }
    }
}

#[test]
fn vector_kernels_match_interpreter() {
    use redshift_sim::engine::expr::eval_predicate_interp;
    use redshift_sim::engine::kernels::try_eval_predicate;
    use redshift_sim::testkit::rng::Pcg32;

    let gen = prop::tuple4(
        prop::vec_of(prop::option_of(prop::range(-4i64..5)), 0..120),
        prop::vec_of(prop::option_of(prop::range(0usize..8)), 0..120),
        prop::vec_of(prop::option_of(prop::range(0usize..6)), 0..120),
        prop::any_i64(),
    );
    let covered = std::cell::Cell::new(0u32);
    let total = std::cell::Cell::new(0u32);
    {
        let covered = &covered;
        let total = &total;
        prop::check(
            "vector_kernels_match_interpreter",
            &Config::with_cases(256),
            &gen,
            move |(ints, floats, strs, expr_seed)| {
                let batch = vector_support::batch(ints, floats, strs);
                let rows = batch[0].len();
                let mut rng = Pcg32::seed_from_u64(*expr_seed as u64);
                for _ in 0..4 {
                    let expr = vector_support::gen_expr(&mut rng, 3);
                    let interp = eval_predicate_interp(&expr, &batch, rows)
                        .expect("generated predicates are well-typed");
                    total.set(total.get() + 1);
                    if let Some(kernel) = try_eval_predicate(&expr, &batch, rows) {
                        covered.set(covered.get() + 1);
                        assert_eq!(
                            kernel, interp,
                            "kernel disagrees with interpreter on {expr:?}"
                        );
                    }
                }
            },
        );
    }
    // The kernels must actually cover the bulk of generated predicates —
    // otherwise this differential test silently tests nothing.
    let (covered, total) = (covered.get(), total.get());
    assert!(
        covered * 2 > total,
        "kernels covered only {covered}/{total} generated predicates"
    );
}

#[test]
fn vector_kernels_nan_total_order_end_to_end() {
    // Deterministic NaN spotlight: every comparison op against every
    // float special, kernel vs interpreter, including NULL slots.
    use redshift_sim::engine::expr::eval_predicate_interp;
    use redshift_sim::engine::kernels::try_eval_predicate;
    use redshift_sim::sql::ast::BinaryOp;
    use redshift_sim::sql::plan::BoundExpr;

    let ints: Vec<Option<i64>> = (0..9).map(|i| if i == 4 { None } else { Some(i) }).collect();
    let floats: Vec<Option<usize>> = (0..9).map(|i| if i == 8 { None } else { Some(i) }).collect();
    let strs: Vec<Option<usize>> = (0..9).map(|i| Some(i)).collect();
    let batch = vector_support::batch(&ints, &floats, &strs);
    let rows = batch[0].len();
    for &lit in vector_support::FLOAT_SPECIALS {
        for op in [
            BinaryOp::Eq,
            BinaryOp::NotEq,
            BinaryOp::Lt,
            BinaryOp::LtEq,
            BinaryOp::Gt,
            BinaryOp::GtEq,
        ] {
            let expr = BoundExpr::Binary {
                left: Box::new(BoundExpr::Column { index: 1, ty: DataType::Float8 }),
                op,
                right: Box::new(BoundExpr::Literal(Value::Float8(lit))),
            };
            let interp = eval_predicate_interp(&expr, &batch, rows).unwrap();
            let kernel = try_eval_predicate(&expr, &batch, rows)
                .expect("float compare must be kernel-covered");
            assert_eq!(kernel, interp, "op {op:?} lit {lit:?}");
        }
    }
}
