//! Property-based tests over the core invariants (testkit::prop).
//!
//! These were originally written against `proptest`; they now run on the
//! in-tree `redsim_testkit::prop` harness with the same case counts. The
//! old `tests/properties.proptest-regressions` file is still honored:
//! the SQL-frontend fuzz test replays its persisted seeds before fresh
//! cases, and the fuzz-found lexer input is additionally pinned as the
//! named test [`regression_lexer_multibyte_start`].

use redshift_sim::common::{ColumnData, ColumnDef, DataType, Schema, Value};
use redshift_sim::core::{Cluster, ClusterConfig};
use redshift_sim::storage::encoding::{decode_column, encode_column, Encoding};
use redshift_sim::testkit::prop::{self, Config, Gen};
use redshift_sim::zorder::ZSpace;
use std::path::PathBuf;
use std::sync::Arc;

/// The proptest-era persisted regression seeds for this suite.
fn regressions() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/properties.proptest-regressions")
}

// ---------------------------------------------------------------------
// Encoding round-trips for arbitrary data shapes.
// ---------------------------------------------------------------------

fn arb_int_col() -> Gen<ColumnData> {
    prop::vec_of(prop::option_of(prop::any_i64()), 0..300).map(|vals| {
        let mut c = ColumnData::new(DataType::Int8);
        for v in vals {
            match v {
                Some(x) => c.push_value(&Value::Int8(*x)).unwrap(),
                None => c.push_null(),
            }
        }
        c
    })
}

fn arb_str_col() -> Gen<ColumnData> {
    prop::vec_of(prop::option_of(prop::pattern("[a-z0-9/:.]{0,24}")), 0..200).map(|vals| {
        let mut c = ColumnData::new(DataType::Varchar);
        for v in vals {
            match v {
                Some(s) => c.push_value(&Value::Str(s.clone())).unwrap(),
                None => c.push_null(),
            }
        }
        c
    })
}

#[test]
fn int_encodings_roundtrip() {
    prop::check("int_encodings_roundtrip", &Config::with_cases(64), &arb_int_col(), |col| {
        for enc in [Encoding::Raw, Encoding::Rle, Encoding::Delta, Encoding::Mostly8,
                    Encoding::Mostly16, Encoding::Mostly32] {
            if let Ok(bytes) = encode_column(col, enc) {
                let back = decode_column(&bytes, Some(DataType::Int8)).unwrap();
                assert_eq!(back.len(), col.len());
                for i in 0..col.len() {
                    assert_eq!(back.get(i), col.get(i));
                }
            }
        }
    });
}

#[test]
fn str_encodings_roundtrip() {
    prop::check("str_encodings_roundtrip", &Config::with_cases(64), &arb_str_col(), |col| {
        for enc in [Encoding::Raw, Encoding::Rle, Encoding::Dict, Encoding::Lzss] {
            if let Ok(bytes) = encode_column(col, enc) {
                let back = decode_column(&bytes, Some(DataType::Varchar)).unwrap();
                assert_eq!(back.len(), col.len());
                for i in 0..col.len() {
                    assert_eq!(back.get(i), col.get(i));
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// BIGMIN is exactly the brute-force "next code in rect".
// ---------------------------------------------------------------------

#[test]
fn bigmin_matches_brute_force() {
    let gen = prop::tuple5(
        prop::range(0u32..16),
        prop::range(0u32..16),
        prop::range(0u32..16),
        prop::range(0u32..16),
        prop::range(0u64..256),
    );
    prop::check(
        "bigmin_matches_brute_force",
        &Config::with_cases(64),
        &gen,
        |&(lo0, hi0, lo1, hi1, z)| {
            let z = z as u128;
            let s = ZSpace::with_bits(2, 4);
            let lo = [lo0.min(hi0), lo1.min(hi1)];
            let hi = [lo0.max(hi0), lo1.max(hi1)];
            let expect = (z..256).find(|&c| s.in_rect(c, &lo, &hi));
            assert_eq!(s.next_in_rect(z, &lo, &hi), expect);
        },
    );
}

// ---------------------------------------------------------------------
// Distribution routing: every row lands on exactly one slice and
// co-location holds per key.
// ---------------------------------------------------------------------

#[test]
fn key_routing_partitions_rows() {
    let gen = prop::vec_of(prop::any_i64(), 1..200);
    prop::check("key_routing_partitions_rows", &Config::with_cases(64), &gen, |keys| {
        use redshift_sim::distribution::{ClusterTopology, DistStyle, RowRouter};
        let topo = ClusterTopology::new(4, 2).unwrap();
        let mut router = RowRouter::new(DistStyle::Key(0), &topo);
        let mut col = ColumnData::new(DataType::Int8);
        for &k in keys {
            col.push_value(&Value::Int8(k)).unwrap();
        }
        let parts = router.route(&[col]).unwrap();
        let total: usize = parts.iter().map(|p| p[0].len()).sum();
        assert_eq!(total, keys.len());
        // Co-location: equal keys never appear on different slices.
        let mut home: std::collections::HashMap<i64, usize> = Default::default();
        for (slice, p) in parts.iter().enumerate() {
            for i in 0..p[0].len() {
                let k = p[0].get_i64(i).unwrap();
                if let Some(&prev) = home.get(&k) {
                    assert_eq!(prev, slice);
                } else {
                    home.insert(k, slice);
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// Query equivalence: vectorized MPP engine == row-at-a-time interpreter
// on randomized data and a panel of query shapes.
// ---------------------------------------------------------------------

#[test]
fn compiled_equals_interpreted() {
    let gen = prop::pair(
        prop::vec_of(
            prop::triple(prop::range(0i64..50), prop::any_bool(), prop::range(0i64..1000)),
            1..120,
        ),
        prop::range(0i64..1000),
    );
    prop::check(
        "compiled_equals_interpreted",
        &Config::with_cases(12),
        &gen,
        |(rows, threshold)| {
            let c = Cluster::launch(
                ClusterConfig::new("prop").nodes(2).slices_per_node(2).rows_per_group(32),
            )
            .unwrap();
            c.execute("CREATE TABLE t (k BIGINT, b BOOLEAN, v BIGINT) DISTKEY(k)").unwrap();
            let mut csv = String::new();
            for (k, b, v) in rows {
                csv.push_str(&format!("{k},{},{v}\n", if *b { "t" } else { "f" }));
            }
            c.put_s3_object("p/1", csv.into_bytes());
            c.execute("COPY t FROM 's3://p/'").unwrap();
            for sql in [
                format!("SELECT k, COUNT(*) AS n, SUM(v) AS s FROM t WHERE v < {threshold} GROUP BY k ORDER BY k"),
                "SELECT COUNT(*) FROM t WHERE b".to_string(),
                "SELECT k, v FROM t ORDER BY v DESC, k LIMIT 7".to_string(),
                "SELECT a.k, COUNT(*) AS n FROM t a JOIN t b ON a.k = b.k GROUP BY a.k ORDER BY a.k".to_string(),
            ] {
                let vectorized = c.query(&sql).unwrap().rows;
                let interpreted = c.query_interpreted(&sql).unwrap();
                assert_eq!(vectorized, interpreted, "query {}", sql);
            }
        },
    );
}

// ---------------------------------------------------------------------
// Backup → restore is lossless for random tables.
// ---------------------------------------------------------------------

#[test]
fn snapshot_restore_is_identity() {
    let gen = prop::vec_of(prop::pair(prop::any_i64(), prop::pattern("[a-z]{0,12}")), 1..150);
    prop::check(
        "snapshot_restore_is_identity",
        &Config::with_cases(12),
        &gen,
        |rows| {
            use redshift_sim::replication::SnapshotKind;
            let c = Cluster::launch(
                ClusterConfig::new("snapprop").nodes(2).slices_per_node(1).rows_per_group(16),
            )
            .unwrap();
            c.execute("CREATE TABLE t (a BIGINT, s VARCHAR(16))").unwrap();
            let mut csv = String::new();
            for (a, s) in rows {
                csv.push_str(&format!("{a},{s}\n"));
            }
            c.put_s3_object("x/1", csv.into_bytes());
            c.execute("COPY t FROM 's3://x/'").unwrap();
            c.create_snapshot("p", SnapshotKind::User).unwrap();
            let restored = Cluster::restore_from_snapshot(
                ClusterConfig::new("snapprop2").nodes(2).slices_per_node(1),
                Arc::clone(c.s3()),
                "us-east-1",
                "snapprop",
                "p",
                None,
            )
            .unwrap();
            let q = "SELECT a, s FROM t ORDER BY a, s";
            assert_eq!(c.query(q).unwrap().rows, restored.query(q).unwrap().rows);
        },
    );
}

// ---------------------------------------------------------------------
// Sort-key scans return exactly the rows a full scan filters to.
// ---------------------------------------------------------------------

#[test]
fn pruned_scans_lose_nothing() {
    let gen = prop::triple(
        prop::vec_of(prop::range(0i64..10_000), 50..400),
        prop::range(0i64..10_000),
        prop::range(1i64..2_000),
    );
    prop::check(
        "pruned_scans_lose_nothing",
        &Config::with_cases(12),
        &gen,
        |(keys, lo, width)| {
            let c = Cluster::launch(
                ClusterConfig::new("prune").nodes(1).slices_per_node(1).rows_per_group(32),
            )
            .unwrap();
            c.execute("CREATE TABLE t (k BIGINT) COMPOUND SORTKEY(k)").unwrap();
            let mut csv = String::new();
            for k in keys {
                csv.push_str(&format!("{k}\n"));
            }
            c.put_s3_object("k/1", csv.into_bytes());
            c.execute("COPY t FROM 's3://k/'").unwrap();
            c.execute("VACUUM").unwrap();
            let (lo, hi) = (*lo, *lo + *width);
            let got = c
                .query(&format!("SELECT COUNT(*) FROM t WHERE k BETWEEN {lo} AND {hi}"))
                .unwrap()
                .rows[0]
                .get(0)
                .as_i64()
                .unwrap();
            let expect = keys.iter().filter(|&&k| k >= lo && k <= hi).count() as i64;
            assert_eq!(got, expect);
        },
    );
}

// ---------------------------------------------------------------------
// Schema round-trip through the catalog codec.
// ---------------------------------------------------------------------

#[test]
fn schema_codec_roundtrip() {
    let gen = prop::hash_set_of(prop::pattern("[a-z]{1,10}"), 1..12);
    prop::check("schema_codec_roundtrip", &Config::with_cases(64), &gen, |names| {
        use redshift_sim::common::codec::{Reader, Writer};
        let types = [
            DataType::Bool, DataType::Int2, DataType::Int4, DataType::Int8,
            DataType::Float8, DataType::Varchar, DataType::Date,
            DataType::Timestamp, DataType::Decimal(12, 3),
        ];
        let cols: Vec<ColumnDef> = names
            .iter()
            .enumerate()
            .map(|(i, n)| ColumnDef::new(n.clone(), types[i % types.len()]))
            .collect();
        let schema = Schema::new(cols).unwrap();
        let mut w = Writer::new();
        schema.encode(&mut w);
        let bytes = w.into_bytes();
        let rt = Schema::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(schema, rt);
    });
}

// ---------------------------------------------------------------------
// Robustness: arbitrary input never panics the SQL frontend; it returns
// typed errors (the cluster stays healthy afterwards).
// ---------------------------------------------------------------------

#[test]
fn garbage_sql_errors_cleanly() {
    let cfg = Config::with_cases(256).regressions_file(regressions());
    prop::check("garbage_sql_errors_cleanly", &cfg, &prop::pattern(".{0,120}"), |input| {
        // Any unicode soup: must not panic.
        let _ = redshift_sim::sql::parse(input);
    });
}

/// Pinned from `tests/properties.proptest-regressions`: proptest's fuzzing
/// once shrank a lexer panic down to the single multibyte character "Ŀ"
/// (the byte-indexed scanner sliced mid-codepoint). Keep the exact witness
/// as a plain test so it never regresses even if the seed file is lost.
#[test]
fn regression_lexer_multibyte_start() {
    let _ = redshift_sim::sql::parse("Ŀ");
    // A few more multibyte-leading soups in the same family.
    for s in ["Ŀ SELECT", "SELECT Ŀ", "ĿĿĿ", "¼", "👀 FROM t", "'Ŀ'"] {
        let _ = redshift_sim::sql::parse(s);
    }
}

#[test]
fn token_soup_errors_cleanly() {
    let words = vec![
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "JOIN", "ON", "(", ")", ",",
        "COUNT", "*", "+", "-", "t", "a", "b", "'x'", "1", "2.5", "AND", "OR",
        "ORDER", "LIMIT", "BETWEEN", "IN", "LIKE", "NULL", "CASE", "WHEN",
    ];
    let gen = prop::vec_of(prop::select(words), 0..25);
    prop::check("token_soup_errors_cleanly", &Config::with_cases(256), &gen, |words| {
        let sql = words.join(" ");
        let _ = redshift_sim::sql::parse(&sql);
    });
}

#[test]
fn cluster_survives_a_barrage_of_bad_statements() {
    let c = Cluster::launch(ClusterConfig::new("fuzz").nodes(1).slices_per_node(1)).unwrap();
    c.execute("CREATE TABLE t (a BIGINT)").unwrap();
    let bad = [
        "SELECT",
        "SELECT * FROM",
        "SELECT FROM t",
        "CREATE TABLE t (a BIGINT)", // duplicate
        "INSERT INTO t VALUES ('not a number')",
        "COPY t FROM 'not-an-s3-uri'",
        "SELECT a FROM t WHERE a LIKE 1",
        "SELECT SUM(a, a) FROM t",
        "SELECT x.y.z FROM t",
        "DROP TABLE nothere",
        "VACUUM nothere",
        "SELECT a FROM t GROUP BY",
        "SELECT CAST(a AS NOPE) FROM t",
        "SELECT DISTINCT a FROM t ORDER BY missing",
    ];
    for sql in bad {
        assert!(c.execute(sql).is_err(), "{sql:?} should fail");
    }
    // Division by zero on an *empty* table is fine (no row evaluates it,
    // matching PostgreSQL); with a row present it must error.
    c.query("SELECT 1/0 FROM t").unwrap();
    c.execute("INSERT INTO t VALUES (7)").unwrap();
    assert!(c.query("SELECT 1/0 FROM t").is_err());
    // Still healthy.
    assert_eq!(
        c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64(),
        Some(1)
    );
}

// ---------------------------------------------------------------------
// Trace invariants: a random query workload leaves the telemetry sink
// structurally consistent — no span leaks, no child outliving its
// parent, and `stl_query` accounts for exactly the queries issued.
// ---------------------------------------------------------------------

/// One step of the random workload: which statement template to run and
/// a literal to instantiate it with.
fn arb_workload() -> Gen<Vec<(usize, i64)>> {
    prop::vec_of(prop::pair(prop::range(0usize..5), prop::range(0i64..1_000)), 1..20)
}

#[test]
fn trace_invariants_hold_under_random_workload() {
    let cfg = Config::with_cases(16);
    prop::check("trace_invariants", &cfg, &arb_workload(), |steps| {
        let c = Cluster::launch(
            ClusterConfig::new("trace-prop").nodes(2).slices_per_node(2),
        )
        .unwrap();
        c.execute("CREATE TABLE t (a BIGINT, b VARCHAR)").unwrap();
        c.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')").unwrap();
        let mut selects = 0u64;
        for &(kind, lit) in steps {
            match kind {
                0 => {
                    c.query(&format!("SELECT COUNT(*) FROM t WHERE a <> {lit}")).unwrap();
                    selects += 1;
                }
                1 => {
                    c.query("SELECT SUM(a) FROM t").unwrap();
                    selects += 1;
                }
                2 => {
                    c.query(&format!("SELECT a, b FROM t WHERE a > {} ORDER BY a", lit % 4))
                        .unwrap();
                    selects += 1;
                }
                3 => {
                    c.execute(&format!("INSERT INTO t VALUES ({lit}, 'w')")).unwrap();
                }
                _ => {
                    // EXPLAIN and system-table reads must NOT appear in
                    // stl_query (matching the real STL semantics).
                    c.query("EXPLAIN SELECT COUNT(*) FROM t").unwrap();
                    c.query("SELECT * FROM stl_query").unwrap();
                }
            }
        }

        let sink = c.trace();
        // 1. Every span opened was closed.
        assert_eq!(sink.open_spans(), 0, "leaked spans");

        let records = sink.snapshot();
        let by_id: std::collections::BTreeMap<u64, &redshift_sim::obs::SpanRecord> =
            records.iter().map(|r| (r.id, r)).collect();
        for r in &records {
            if r.parent != 0 {
                // 2. Parents are present and children nest inside them.
                let p = by_id
                    .get(&r.parent)
                    .unwrap_or_else(|| panic!("span {} ({}) has missing parent", r.id, r.name));
                assert!(
                    r.dur_ns <= p.dur_ns,
                    "child {} ({} ns) outlives parent {} ({} ns)",
                    r.name,
                    r.dur_ns,
                    p.name,
                    p.dur_ns
                );
                assert!(
                    r.start_ns >= p.start_ns,
                    "child {} starts before parent {}",
                    r.name,
                    p.name
                );
            }
        }

        // 3. stl_query has one row per user SELECT issued — EXPLAIN and
        // system-table reads excluded.
        let stl = c.query("SELECT COUNT(*) FROM stl_query").unwrap();
        assert_eq!(stl.rows[0].get(0).as_i64(), Some(selects as i64));
    });
}
