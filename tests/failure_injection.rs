//! "Design escalators, not elevators" (§5): the system degrades under
//! faults instead of losing availability. Kill nodes before, during and
//! after loads; lose S3 objects; break crypto keys — every failure either
//! degrades transparently or reports a typed error, never corrupts.

// All statements run through explicit `Session`s; the deprecated
// `query_as` shim stays banned.
#![deny(deprecated)]

use redshift_sim::common::RetryPolicy;
use redshift_sim::core::{Cluster, ClusterConfig};
use redshift_sim::distribution::NodeId;
use redshift_sim::faultkit::{fp, ErrClass, FaultSpec};
use redshift_sim::replication::SnapshotKind;
use std::sync::Arc;
use std::time::Duration;

/// A retry policy tuned for tests: same budget as production, but
/// microsecond backoff so exhaustion scenarios stay fast.
fn fast_retry() -> RetryPolicy {
    RetryPolicy::default()
        .with_delays(Duration::from_micros(50), Duration::from_millis(1))
        .with_deadline(Duration::from_secs(2))
}

fn load(c: &Cluster, rows: usize) {
    c.execute("CREATE TABLE t (a BIGINT, s VARCHAR(64))").unwrap();
    let mut csv = String::new();
    for i in 0..rows {
        csv.push_str(&format!("{i},row-{i}\n"));
    }
    c.put_s3_object("d/1", csv.into_bytes());
    c.execute("COPY t FROM 's3://d/'").unwrap();
}

#[test]
fn reads_survive_single_node_loss() {
    let c = Cluster::launch(ClusterConfig::new("f1").nodes(4).slices_per_node(2)).unwrap();
    load(&c, 8_000);
    let before = c.query("SELECT COUNT(*), SUM(a) FROM t").unwrap();
    let store = c.replicated_store().unwrap();
    store.kill_node(NodeId(2));
    let after = c.query("SELECT COUNT(*), SUM(a) FROM t").unwrap();
    assert_eq!(before.rows, after.rows, "secondary replicas mask the failure");
    let (secondary_reads, s3_reads) = store.fallthrough_stats();
    assert!(secondary_reads > 0);
    assert_eq!(s3_reads, 0, "no S3 page faults needed for a single failure");
}

#[test]
fn reads_survive_node_loss_even_pre_backup_then_rereplicate() {
    let c = Cluster::launch(ClusterConfig::new("f2").nodes(4).slices_per_node(1)).unwrap();
    load(&c, 4_000);
    let store = c.replicated_store().unwrap();
    assert!(store.backup_backlog() > 0, "blocks still inside the backup window");
    store.kill_node(NodeId(0));
    // Count survives via secondaries, then re-replication restores
    // redundancy so a *second* failure is also survivable.
    let n = c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
    assert_eq!(n, 4_000);
    let (blocks, bytes) = store.re_replicate(NodeId(0)).unwrap();
    assert!(blocks > 0 && bytes > 0);
    store.kill_node(NodeId(1));
    let n = c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
    assert_eq!(n, 4_000, "double failure after re-replication still served");
}

#[test]
fn two_failures_inside_backup_window_error_cleanly() {
    let c = Cluster::launch(ClusterConfig::new("f3").nodes(2).slices_per_node(1)).unwrap();
    load(&c, 4_000);
    let store = c.replicated_store().unwrap();
    assert!(store.backup_backlog() > 0);
    store.kill_node(NodeId(0));
    store.kill_node(NodeId(1));
    // Loss of both replicas before S3 upload is a genuine durability loss;
    // the query must fail with a typed error, not wrong answers.
    let err = c.query("SELECT COUNT(*) FROM t").unwrap_err();
    assert!(
        matches!(err, redshift_sim::common::RsError::Replication(_)),
        "unexpected error class: {err}"
    );
}

#[test]
fn backup_drain_then_total_cluster_loss_restores_from_s3() {
    let c = Cluster::launch(ClusterConfig::new("f4").nodes(2).slices_per_node(2)).unwrap();
    load(&c, 6_000);
    c.create_snapshot("pre-disaster", SnapshotKind::User).unwrap();
    let checksum = c.query("SELECT SUM(a) FROM t").unwrap().rows[0].get(0).clone();
    // The whole cluster burns down.
    let store = c.replicated_store().unwrap();
    store.kill_node(NodeId(0));
    store.kill_node(NodeId(1));
    // Restore into a fresh cluster from S3 alone.
    let restored = Cluster::restore_from_snapshot(
        ClusterConfig::new("f4b").nodes(2).slices_per_node(2),
        Arc::clone(c.s3()),
        "us-east-1",
        "f4",
        "pre-disaster",
        None,
    )
    .unwrap();
    let restored_sum = restored.query("SELECT SUM(a) FROM t").unwrap().rows[0].get(0).clone();
    assert_eq!(checksum, restored_sum);
}

#[test]
fn lost_s3_object_reports_error_on_restore_touch() {
    let c = Cluster::launch(ClusterConfig::new("f5").nodes(1).slices_per_node(1)).unwrap();
    load(&c, 3_000);
    let snap = c.create_snapshot("s", SnapshotKind::User).unwrap();
    // Lose one backing object.
    let victim = snap.blocks[0];
    c.s3().inject_object_loss("us-east-1", &format!("f5/blocks/{:016x}", victim.0));
    let restored = Cluster::restore_from_snapshot(
        ClusterConfig::new("f5b").nodes(1).slices_per_node(1),
        Arc::clone(c.s3()),
        "us-east-1",
        "f5",
        "s",
        None,
    )
    .unwrap();
    // A full scan must hit the lost block and error (never fabricate).
    let err = restored.query("SELECT SUM(a) FROM t").unwrap_err();
    assert!(err.to_string().contains("REPL"), "{err}");
}

#[test]
fn repudiation_makes_encrypted_data_unreadable() {
    let c = Cluster::launch(
        ClusterConfig::new("f6").nodes(1).slices_per_node(1).encrypted(true),
    )
    .unwrap();
    load(&c, 1_000);
    c.create_snapshot("s", SnapshotKind::User).unwrap();
    let hsm = Arc::clone(c.hsm().unwrap());
    let master = c
        .s3()
        .list("us-east-1", "f6/snapshots/")
        .first()
        .cloned()
        .expect("snapshot exists");
    let _ = master;
    // Destroy the master key (§3.2's repudiation) — restore must fail.
    // First prove restore *would* work.
    let ok = Cluster::restore_from_snapshot(
        ClusterConfig::new("f6b").nodes(1).slices_per_node(1),
        Arc::clone(c.s3()),
        "us-east-1",
        "f6",
        "s",
        Some(Arc::clone(&hsm)),
    );
    assert!(ok.is_ok());
    // All masters die with the HSM contents.
    hsm.destroy(redshift_sim::crypto::KeyId(0));
    let denied = Cluster::restore_from_snapshot(
        ClusterConfig::new("f6c").nodes(1).slices_per_node(1),
        Arc::clone(c.s3()),
        "us-east-1",
        "f6",
        "s",
        Some(hsm),
    );
    assert!(denied.is_err(), "repudiated snapshot must be unrecoverable");
}

#[test]
fn writes_to_dead_node_surface_fault_errors() {
    let c = Cluster::launch(ClusterConfig::new("f7").nodes(2).slices_per_node(1)).unwrap();
    c.execute("CREATE TABLE t (a BIGINT)").unwrap();
    c.replicated_store().unwrap().kill_node(NodeId(0));
    // Some inserts route to the dead node's slice and must fail loudly;
    // retrying after revival succeeds.
    let mut failures = 0;
    for i in 0..8 {
        if c.execute(&format!("INSERT INTO t VALUES ({i})")).is_err() {
            failures += 1;
        }
    }
    assert!(failures > 0, "dead primary must reject writes");
    c.replicated_store().unwrap().revive_node(NodeId(0));
    c.execute("INSERT INTO t VALUES (100)").unwrap();
}

#[test]
fn restore_works_after_cluster_key_rotation() {
    // Rotation re-wraps block keys; a snapshot taken afterwards must
    // carry the re-wrapped keys and restore cleanly.
    let c = Cluster::launch(
        ClusterConfig::new("rot").nodes(1).slices_per_node(1).encrypted(true),
    )
    .unwrap();
    load(&c, 2_000);
    c.rotate_cluster_key().unwrap();
    c.execute("INSERT INTO t VALUES (999999, 'post-rotation')").unwrap();
    c.create_snapshot("s", SnapshotKind::User).unwrap();
    let hsm = Arc::clone(c.hsm().unwrap());
    let restored = Cluster::restore_from_snapshot(
        ClusterConfig::new("rot2").nodes(1).slices_per_node(1).encrypted(true),
        Arc::clone(c.s3()),
        "us-east-1",
        "rot",
        "s",
        Some(hsm),
    )
    .unwrap();
    let n = restored.query("SELECT COUNT(*) FROM t").unwrap().rows[0]
        .get(0)
        .as_i64()
        .unwrap();
    assert_eq!(n, 2_001);
    let post = restored
        .query("SELECT s FROM t WHERE a = 999999")
        .unwrap()
        .rows[0]
        .get(0)
        .as_str()
        .map(str::to_string);
    assert_eq!(post.as_deref(), Some("post-rotation"));
}

#[test]
fn resize_rolls_back_on_failure_leaving_source_available() {
    // Kill a node mid-resize: the copy fails, the source must return to
    // Available (not stuck ReadOnly).
    let c = Cluster::launch(ClusterConfig::new("rz").nodes(2).slices_per_node(1)).unwrap();
    load(&c, 2_000);
    // Sabotage: drop every replica of the data before the resize copy by
    // killing both nodes (blocks not yet in S3 are gone).
    let store = c.replicated_store().unwrap();
    assert!(store.backup_backlog() > 0);
    store.kill_node(NodeId(0));
    store.kill_node(NodeId(1));
    let err = c.resize(4, 1);
    assert!(err.is_err(), "resize cannot copy lost data");
    assert_eq!(c.state(), redshift_sim::core::cluster::ClusterState::Available);
}

#[test]
fn disaster_recovery_from_second_region() {
    // §3.2: "some customers ask for disaster recovery by storing backups
    // in a second region … that only requires setting a checkbox."
    let c = Cluster::launch(
        ClusterConfig::new("drt")
            .nodes(2)
            .slices_per_node(1)
            .dr_region("eu-west-1"),
    )
    .unwrap();
    load(&c, 3_000);
    c.create_snapshot("weekly", SnapshotKind::User).unwrap();
    let checksum = c.query("SELECT SUM(a), COUNT(*) FROM t").unwrap().rows[0].clone();
    // Simulate the home region being gone: delete every primary-region
    // object, then restore from the DR copy.
    for key in c.s3().list("us-east-1", "drt/") {
        c.s3().delete("us-east-1", &key);
    }
    let restored = Cluster::restore_from_snapshot(
        ClusterConfig::new("drt2").nodes(2).slices_per_node(1).region("eu-west-1"),
        Arc::clone(c.s3()),
        "eu-west-1",
        "drt",
        "weekly",
        None,
    )
    .unwrap();
    while restored.hydrate_step(64).unwrap() > 0 {}
    let got = restored.query("SELECT SUM(a), COUNT(*) FROM t").unwrap().rows[0].clone();
    assert_eq!(checksum, got);
}

#[test]
fn copy_rides_through_s3_flakiness() {
    // §5 "escalators, not elevators": a flaky S3 (30% throttle on every
    // GET) must not fail a COPY — the typed retry loop absorbs the
    // transients and the load lands exactly once.
    let c = Cluster::launch(
        ClusterConfig::new("flaky-copy").nodes(2).slices_per_node(1).retry(fast_retry()),
    )
    .unwrap();
    c.execute("CREATE TABLE t (a BIGINT, s VARCHAR(64))").unwrap();
    let mut csv = String::new();
    for i in 0..2_000 {
        csv.push_str(&format!("{i},row-{i}\n"));
    }
    c.put_s3_object("d/1", csv.into_bytes());
    c.faults().reseed(42);
    c.faults().configure(fp::S3_GET, FaultSpec::err(ErrClass::Throttle).prob(0.3));
    c.faults().configure(fp::COPY_FETCH_OBJECT, FaultSpec::err(ErrClass::Throttle).prob(0.3));
    c.execute("COPY t FROM 's3://d/'").unwrap();
    assert!(c.faults().injected_total() > 0, "flakiness never struck");
    c.faults().clear_all();
    let n = c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
    assert_eq!(n, 2_000, "retries must not duplicate or drop rows");
    // The whole chaos run is auditable with plain SQL.
    let ev = c.query("SELECT COUNT(*) FROM stl_fault_event").unwrap().rows[0]
        .get(0)
        .as_i64()
        .unwrap();
    assert!(ev > 0, "stl_fault_event must record the injections");
}

#[test]
fn streaming_restore_completes_via_retries() {
    // Streaming restore page-faults blocks from a flaky S3: every fault
    // is retried and hydration still completes with exact data.
    let c = Cluster::launch(ClusterConfig::new("flaky-rst").nodes(2).slices_per_node(1)).unwrap();
    load(&c, 3_000);
    c.create_snapshot("s", SnapshotKind::User).unwrap();
    let before = c.query("SELECT COUNT(*), SUM(a) FROM t").unwrap().rows;
    let restored = Cluster::restore_from_snapshot(
        ClusterConfig::new("flaky-rst2").nodes(2).slices_per_node(1).retry(fast_retry()),
        Arc::clone(c.s3()),
        "us-east-1",
        "flaky-rst",
        "s",
        None,
    )
    .unwrap();
    // Arm the flakiness only once the catalog is open (the paper's
    // "opened for SQL operations after metadata and catalog restoration").
    restored.faults().reseed(7);
    restored.faults().configure(fp::S3_GET, FaultSpec::err(ErrClass::Throttle).prob(0.3));
    restored
        .faults()
        .configure(fp::RESTORE_PAGE_FAULT, FaultSpec::err(ErrClass::Repl).prob(0.3));
    while restored.hydrate_step(32).unwrap() > 0 {}
    assert!(restored.faults().injected_total() > 0, "flakiness never struck");
    restored.faults().clear_all();
    assert_eq!(restored.query("SELECT COUNT(*), SUM(a) FROM t").unwrap().rows, before);
}

#[test]
fn retry_exhaustion_surfaces_throttle_not_a_hang() {
    // A *permanently* throttling S3 exhausts the retry budget: the query
    // fails in bounded time with the transient's own class (THROTTLE), so
    // callers and the host manager can tell throttle storms from real
    // faults. It must never hang or remap to a misleading class.
    let c = Cluster::launch(
        ClusterConfig::new("exh").nodes(1).slices_per_node(1).retry(fast_retry()),
    )
    .unwrap();
    load(&c, 1_000);
    c.create_snapshot("s", SnapshotKind::User).unwrap();
    let restored = Cluster::restore_from_snapshot(
        ClusterConfig::new("exh2").nodes(1).slices_per_node(1).retry(fast_retry()),
        Arc::clone(c.s3()),
        "us-east-1",
        "exh",
        "s",
        None,
    )
    .unwrap();
    restored.faults().configure(fp::S3_GET, FaultSpec::err(ErrClass::Throttle));
    let t0 = std::time::Instant::now();
    let err = restored.query("SELECT SUM(a) FROM t").unwrap_err();
    assert_eq!(err.code(), "THROTTLE", "exhaustion must keep the transient class: {err}");
    assert!(err.to_string().contains("exhausted"), "{err}");
    assert!(t0.elapsed() < Duration::from_secs(8), "exhaustion hung: {:?}", t0.elapsed());
    // Clearing the failpoint heals the cluster in place.
    restored.faults().clear_all();
    let n = restored.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
    assert_eq!(n, 1_000);
}

#[test]
fn wlm_queued_queries_survive_node_failure_or_fail_retryably() {
    // A node dies while queries sit on the WLM wait list. Each queued
    // query must either complete after re-replication restores
    // redundancy, or fail with a retryable STATE error (wait timeout) —
    // never hang past the queue's max_wait.
    use redshift_sim::core::{WlmConfig, WlmQueueDef};
    use std::time::{Duration, Instant};
    let wlm = WlmConfig::with_queues(vec![
        WlmQueueDef::new("only", 1).max_wait(Duration::from_millis(800))
    ]);
    let c = Cluster::launch(
        ClusterConfig::new("f8").nodes(2).slices_per_node(1).wlm(wlm),
    )
    .unwrap();
    load(&c, 4_000);
    // Occupy the only concurrency slot, as a heavy ETL query would.
    let slot = c.wlm().admit(u64::MAX, None).unwrap();
    let t0 = Instant::now();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let c2 = Arc::clone(&c);
            std::thread::spawn(move || {
                c2.query("SELECT COUNT(*), SUM(a) FROM t").map(|r| r.rows)
            })
        })
        .collect();
    // Wait until all four actually sit on the wait list.
    while c.wlm().service_class_states()[0].queued < 4 {
        assert!(t0.elapsed() < Duration::from_secs(5), "queries never queued");
        std::thread::yield_now();
    }
    // Failure strikes while they wait; re-replication restores redundancy.
    let store = c.replicated_store().unwrap();
    store.kill_node(NodeId(0));
    store.re_replicate(NodeId(0)).unwrap();
    // Free the slot: the wait list drains one query at a time.
    drop(slot);
    let mut completed = 0;
    for h in handles {
        match h.join().unwrap() {
            Ok(rows) => {
                assert_eq!(rows[0].get(0).as_i64(), Some(4_000), "torn read after failure");
                completed += 1;
            }
            // Eviction by wait timeout is the allowed retryable outcome.
            Err(e) => assert_eq!(e.code(), "STATE", "unexpected error class: {e}"),
        }
    }
    assert!(completed > 0, "at least the first released query completes");
    // Liveness: nothing hung past max_wait (plus generous execution slack).
    assert!(
        t0.elapsed() < Duration::from_secs(10),
        "queued queries hung past the wait timeout: {:?}",
        t0.elapsed()
    );
    // Books are clean afterwards.
    let sc = &c.wlm().service_class_states()[0];
    assert_eq!(sc.queued, 0);
    assert_eq!(sc.in_flight, 0);
    assert_eq!(
        sc.executed + sc.evicted,
        5, // the slot-holder + 4 workers, every admission accounted for
        "lost or double-counted admissions: {sc:?}"
    );
}

// ---------------------------------------------------------------------
// Write atomicity (transactional COPY/INSERT): a write statement either
// installs completely or is rolled back block-for-block — catalog
// counters, telemetry and every replica return to the pre-statement
// state. These tests arm the write seams the chaos property also
// exercises, but pin the exact scenarios from the issue.
// ---------------------------------------------------------------------

/// Capture everything a failed write must leave untouched.
struct PreWrite {
    count: i64,
    rows_estimate: Option<u64>,
    loads_since_analyze: u64,
    rows_loaded_counter: u64,
    local_bytes: u64,
}

fn pre_write(c: &Cluster, table: &str) -> PreWrite {
    PreWrite {
        count: c
            .query(&format!("SELECT COUNT(*) FROM {table}"))
            .unwrap()
            .rows[0]
            .get(0)
            .as_i64()
            .unwrap(),
        rows_estimate: c.rows_estimate(table),
        loads_since_analyze: c.loads_since_analyze(table),
        rows_loaded_counter: c.trace().counter("copy.rows_loaded").get(),
        local_bytes: c.replicated_store().unwrap().local_bytes(),
    }
}

fn assert_unchanged(c: &Cluster, table: &str, pre: &PreWrite, ctx: &str) {
    let post = pre_write(c, table);
    assert_eq!(post.count, pre.count, "{ctx}: row count leaked");
    assert_eq!(post.rows_estimate, pre.rows_estimate, "{ctx}: rows_estimate leaked");
    assert_eq!(
        post.loads_since_analyze, pre.loads_since_analyze,
        "{ctx}: loads_since_analyze leaked"
    );
    assert_eq!(
        post.rows_loaded_counter, pre.rows_loaded_counter,
        "{ctx}: copy.rows_loaded bumped by a failed load"
    );
    assert_eq!(
        post.local_bytes, pre.local_bytes,
        "{ctx}: orphan blocks left on the nodes"
    );
}

#[test]
fn copy_succeeds_exactly_when_transient_mirror_write_fault_is_absorbed() {
    // mirror.write.secondary=err(once): the retry loop absorbs the one
    // transient and the load lands exactly once — no rollback, no
    // duplicate rows.
    let c = Cluster::launch(
        ClusterConfig::new("wtx1").nodes(2).slices_per_node(1).retry(fast_retry()),
    )
    .unwrap();
    c.execute("CREATE TABLE t (a BIGINT, s VARCHAR(64))").unwrap();
    let mut csv = String::new();
    for i in 0..2_000 {
        csv.push_str(&format!("{i},row-{i}\n"));
    }
    c.put_s3_object("d/1", csv.into_bytes());
    c.faults().reseed(11);
    c.faults().configure(fp::MIRROR_WRITE_SECONDARY, FaultSpec::err(ErrClass::Repl).once());
    c.execute("COPY t FROM 's3://d/'").unwrap();
    assert!(c.faults().injected_total() > 0, "the once-fault never fired");
    let n = c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
    assert_eq!(n, 2_000, "absorbed transient must not duplicate or drop rows");
    assert_eq!(c.rows_estimate("t"), Some(2_000));
}

#[test]
fn failed_copy_rolls_back_to_pre_copy_state() {
    // A *permanent* mirror.write fault exhausts the retry budget mid-
    // load; the COPY must fail typed-retryable and be observationally
    // invisible: identical SELECT results, catalog counters, telemetry
    // counters, and node-local bytes (no orphan replicas).
    let c = Cluster::launch(
        ClusterConfig::new("wtx2")
            .nodes(2)
            .slices_per_node(1)
            .rows_per_group(32) // force real block seals during append
            .retry(fast_retry()),
    )
    .unwrap();
    load(&c, 1_000); // pre-existing committed data must survive untouched
    let pre = pre_write(&c, "t");
    let mut csv = String::new();
    for i in 0..500 {
        csv.push_str(&format!("{i},new-{i}\n"));
    }
    c.put_s3_object("d2/1", csv.into_bytes());
    c.faults().reseed(13);
    c.faults().configure(fp::MIRROR_WRITE_SECONDARY, FaultSpec::err(ErrClass::Repl));
    let err = c.execute("COPY t FROM 's3://d2/'").unwrap_err();
    assert!(err.is_retryable(), "exhausted mirror fault must stay retryable: {err}");
    assert!(err.to_string().contains("exhausted"), "{err}");
    assert_unchanged(&c, "t", &pre, "permanent mirror.write.secondary");
    // Clearing the fault heals in place: the same COPY then lands.
    c.faults().clear_all();
    c.execute("COPY t FROM 's3://d2/'").unwrap();
    let n = c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
    assert_eq!(n, 1_500);
    assert_eq!(c.rows_estimate("t"), Some(1_500));
}

#[test]
fn copy_under_probabilistic_write_faults_is_all_or_nothing() {
    // mirror.write.* and s3.put firing probabilistically across a batch
    // of COPYs: every statement either lands exactly or leaves the
    // pre-COPY state byte-identical. The final count equals the sum of
    // the successful loads — no partial batch ever sticks.
    let c = Cluster::launch(
        ClusterConfig::new("wtx3")
            .nodes(2)
            .slices_per_node(1)
            .rows_per_group(32)
            .retry(fast_retry()),
    )
    .unwrap();
    c.execute("CREATE TABLE t (a BIGINT, s VARCHAR(64))").unwrap();
    c.faults().reseed(17);
    c.faults().configure(fp::MIRROR_WRITE_PRIMARY, FaultSpec::err(ErrClass::Repl).prob(0.6));
    c.faults().configure(fp::MIRROR_WRITE_SECONDARY, FaultSpec::err(ErrClass::Repl).prob(0.6));
    c.faults().configure(fp::S3_PUT, FaultSpec::err(ErrClass::Throttle).prob(0.6));
    let mut expected = 0i64;
    let (mut ok, mut failed) = (0, 0);
    for round in 0..8 {
        let rows = 200;
        let mut csv = String::new();
        for i in 0..rows {
            csv.push_str(&format!("{i},r{round}-{i}\n"));
        }
        c.put_s3_object(&format!("p{round}/1"), csv.into_bytes());
        let pre = pre_write(&c, "t");
        match c.execute(&format!("COPY t FROM 's3://p{round}/'")) {
            Ok(s) => {
                assert_eq!(s.rows_affected, rows as u64);
                expected += rows;
                ok += 1;
            }
            Err(e) => {
                assert!(e.is_retryable(), "write-fault COPY error must be retryable: {e}");
                assert_unchanged(&c, "t", &pre, "probabilistic write fault");
                failed += 1;
            }
        }
    }
    assert!(c.faults().injected_total() > 0, "write faults never fired");
    c.faults().clear_all();
    let n = c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
    assert_eq!(n, expected, "count must equal the successful loads ({ok} ok / {failed} failed)");
    assert_eq!(c.rows_estimate("t"), Some(expected as u64));
}

#[test]
fn copy_aborted_mid_objects_by_parse_error_leaves_zero_rows() {
    // Pinned regression for the multi-object partial-parse case: 4
    // objects, the last one malformed. Pre-fix, the first 3 batches
    // stayed durably visible; transactional COPY must leave *zero* rows
    // (and zero blocks, zero counter drift) behind.
    let c = Cluster::launch(
        ClusterConfig::new("wtx4")
            .nodes(2)
            .slices_per_node(2)
            .rows_per_group(32) // early objects seal real blocks before the bad one
            .retry(fast_retry()),
    )
    .unwrap();
    c.execute("CREATE TABLE t (a BIGINT, s VARCHAR(64))").unwrap();
    let pre = pre_write(&c, "t");
    for o in 0..3 {
        let mut csv = String::new();
        for i in 0..200 {
            csv.push_str(&format!("{i},obj{o}-{i}\n"));
        }
        c.put_s3_object(&format!("m/{o}"), csv.into_bytes());
    }
    c.put_s3_object("m/3", b"not-a-number,oops\n".to_vec());
    let err = c.execute("COPY t FROM 's3://m/'").unwrap_err();
    assert_eq!(err.code(), "ANALYSIS", "parse failures are permanent: {err}");
    assert_unchanged(&c, "t", &pre, "multi-object partial parse");
    // The table is still fully usable: fixing the object loads all rows.
    c.put_s3_object("m/3", b"3,fixed\n".to_vec());
    c.execute("COPY t FROM 's3://m/'").unwrap();
    let n = c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
    assert_eq!(n, 601);
}

#[test]
fn copy_failing_at_each_wal_seam_rolls_back_cleanly() {
    // The redo-log seams (record append, fsync, commit record) each
    // abort the statement: pre-statement state stays byte-identical, the
    // error keeps its injected class, and the log itself stays coherent —
    // the retried COPY lands and the whole table survives a crash.
    for seam in [fp::WAL_APPEND, fp::WAL_SYNC, fp::WAL_COMMIT] {
        let c = Cluster::launch(
            ClusterConfig::new(format!("walseam-{}", seam.replace('.', "-")))
                .nodes(2)
                .slices_per_node(1)
                .rows_per_group(32)
                .retry(fast_retry()),
        )
        .unwrap();
        load(&c, 500);
        let pre = pre_write(&c, "t");
        let mut csv = String::new();
        for i in 0..200 {
            csv.push_str(&format!("{i},w-{i}\n"));
        }
        c.put_s3_object("w/1", csv.into_bytes());
        c.faults().configure(seam, FaultSpec::err(ErrClass::Fault).once());
        let err = c.execute("COPY t FROM 's3://w/'").unwrap_err();
        assert!(err.is_retryable(), "{seam}: {err}");
        assert!(err.to_string().contains(seam), "{seam}: {err}");
        assert_unchanged(&c, "t", &pre, seam);
        // The statement-level retry contract holds: same COPY, clean log.
        c.execute("COPY t FROM 's3://w/'").unwrap();
        let n = c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
        assert_eq!(n, 700, "{seam}");
        // Nothing about the failed attempt leaked into the redo log: a
        // crash + replay reconstructs exactly the committed 700 rows.
        let r = Cluster::recover(c.crash().unwrap()).unwrap();
        let n = r.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
        assert_eq!(n, 700, "{seam}: recovery");
    }
}

#[test]
fn wal_truncate_failure_is_absorbed_not_surfaced() {
    // Log truncation after a checkpoint is pure space reclamation: the
    // checkpoint is already durable, so a truncate fault must not fail
    // the statement — it is counted and retried at the next checkpoint.
    let c = Cluster::launch(ClusterConfig::new("waltrunc").nodes(2).slices_per_node(1)).unwrap();
    c.faults().configure(fp::WAL_TRUNCATE, FaultSpec::err(ErrClass::Fault).once());
    c.execute("CREATE TABLE t (a BIGINT, s VARCHAR(64))").unwrap();
    assert_eq!(c.trace().counter_value("wal.truncate_errors"), 1);
    c.execute("INSERT INTO t VALUES (1, 'x')").unwrap();
    // Durability was never at risk: crash + recover sees everything.
    let r = Cluster::recover(c.crash().unwrap()).unwrap();
    let n = r.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
    assert_eq!(n, 1);
}

#[test]
fn failed_insert_rolls_back_router_and_estimates() {
    // INSERT is transactional too: a mirror fault during the flush-seal
    // leaves no rows, no estimate drift, and no round-robin cursor
    // drift (the next successful INSERT routes exactly as if the failed
    // one never happened).
    let c = Cluster::launch(
        ClusterConfig::new("wtx5")
            .nodes(2)
            .slices_per_node(1)
            .retry(fast_retry()),
    )
    .unwrap();
    c.execute("CREATE TABLE t (a BIGINT, s VARCHAR(64))").unwrap();
    let pre = pre_write(&c, "t");
    c.faults().reseed(19);
    c.faults().configure(fp::MIRROR_WRITE_PRIMARY, FaultSpec::err(ErrClass::Repl));
    let err = c.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap_err();
    assert!(err.is_retryable(), "{err}");
    assert_unchanged(&c, "t", &pre, "failed INSERT");
    c.faults().clear_all();
    c.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
    let n = c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
    assert_eq!(n, 2);
    assert_eq!(c.rows_estimate("t"), Some(2));
}
