//! Cross-crate integration: the full cluster lifecycle the paper
//! describes, exercised through the public facade crate.

// All statements run through explicit `Session`s (or the cluster-level
// convenience wrappers); the deprecated `query_as` shim stays banned.
#![deny(deprecated)]

use redshift_sim::core::{Cluster, ClusterConfig};
use redshift_sim::replication::SnapshotKind;
use std::sync::Arc;

fn launch(name: &str) -> Arc<Cluster> {
    Cluster::launch(ClusterConfig::new(name).nodes(2).slices_per_node(2)).unwrap()
}

#[test]
fn lifecycle_create_load_query_snapshot_restore_resize() {
    let c = launch("life");
    c.execute(
        "CREATE TABLE orders (id BIGINT NOT NULL, cust BIGINT, total DECIMAL(12,2), d DATE)
         DISTKEY(cust) COMPOUND SORTKEY(d)",
    )
    .unwrap();
    c.execute("CREATE TABLE custs (id BIGINT, region VARCHAR(8)) DISTKEY(id)").unwrap();

    // Load via COPY (CSV) and INSERT.
    let mut csv = String::new();
    for i in 0..5_000 {
        csv.push_str(&format!(
            "{i},{},{}.{:02},2015-{:02}-{:02}\n",
            i % 100,
            10 + i % 500,
            i % 100,
            1 + i % 12,
            1 + i % 28
        ));
    }
    c.put_s3_object("orders/a", csv.into_bytes());
    assert_eq!(c.execute("COPY orders FROM 's3://orders/'").unwrap().rows_affected, 5_000);
    for i in 0..100 {
        c.execute(&format!("INSERT INTO custs VALUES ({i}, 'r{}')", i % 4)).unwrap();
    }
    c.execute("VACUUM").unwrap();
    c.execute("ANALYZE").unwrap();

    // Query: co-located join + aggregation + order + limit.
    let r = c
        .query(
            "SELECT cu.region, COUNT(*) AS n, SUM(o.total) AS revenue
             FROM orders o JOIN custs cu ON o.cust = cu.id
             GROUP BY cu.region ORDER BY revenue DESC LIMIT 3",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.metrics.exchange_bytes(), 0);
    let total: i64 = c
        .query("SELECT COUNT(*) FROM orders")
        .unwrap()
        .rows[0]
        .get(0)
        .as_i64()
        .unwrap();
    assert_eq!(total, 5_000);

    // Snapshot → restore → same answers.
    c.create_snapshot("s1", SnapshotKind::User).unwrap();
    let restored = Cluster::restore_from_snapshot(
        ClusterConfig::new("life2").nodes(2).slices_per_node(2),
        Arc::clone(c.s3()),
        "us-east-1",
        "life",
        "s1",
        None,
    )
    .unwrap();
    let r2 = restored
        .query(
            "SELECT cu.region, COUNT(*) AS n, SUM(o.total) AS revenue
             FROM orders o JOIN custs cu ON o.cust = cu.id
             GROUP BY cu.region ORDER BY revenue DESC LIMIT 3",
        )
        .unwrap();
    assert_eq!(r.rows, r2.rows);

    // Resize the restored cluster up; answers unchanged.
    restored.hydrate_step(usize::MAX.min(1 << 20)).ok();
    while restored.hydrate_step(128).unwrap() > 0 {}
    let big = restored.resize(4, 2).unwrap();
    let r3 = big.query("SELECT COUNT(*) FROM orders").unwrap();
    assert_eq!(r3.rows[0].get(0).as_i64(), Some(5_000));
}

#[test]
fn sql_coverage_sweep() {
    let c = launch("sqlcov");
    c.execute(
        "CREATE TABLE t (i INT, b BIGINT, f FLOAT8, s VARCHAR(32), d DATE, ts TIMESTAMP,
         dec DECIMAL(8,3), bo BOOLEAN)",
    )
    .unwrap();
    c.execute(
        "INSERT INTO t VALUES
         (1, 100, 1.5, 'alpha', DATE '2015-01-01', TIMESTAMP '2015-01-01 10:00:00', 1.25, TRUE),
         (2, 200, 2.5, 'beta',  DATE '2015-02-01', TIMESTAMP '2015-02-01 11:30:00', 2.5, FALSE),
         (NULL, NULL, NULL, NULL, NULL, NULL, NULL, NULL),
         (4, 400, -4.5, 'Alpha Beta', DATE '2015-03-15', TIMESTAMP '2015-03-15 00:00:01', -0.125, TRUE)",
    )
    .unwrap();

    let one = |sql: &str| c.query(sql).unwrap().rows[0].get(0).clone();
    assert_eq!(one("SELECT COUNT(*) FROM t").as_i64(), Some(4));
    assert_eq!(one("SELECT COUNT(i) FROM t").as_i64(), Some(3));
    assert_eq!(one("SELECT SUM(b) FROM t").as_i64(), Some(700));
    assert_eq!(one("SELECT MIN(f) FROM t").as_f64(), Some(-4.5));
    assert_eq!(one("SELECT MAX(s) FROM t").as_str(), Some("beta"));
    assert_eq!(one("SELECT SUM(dec) FROM t").to_string(), "3.625");
    assert_eq!(one("SELECT COUNT(*) FROM t WHERE bo").as_i64(), Some(2));
    assert_eq!(one("SELECT COUNT(*) FROM t WHERE s LIKE 'Alpha%'").as_i64(), Some(1));
    assert_eq!(one("SELECT COUNT(*) FROM t WHERE s IS NULL").as_i64(), Some(1));
    assert_eq!(one("SELECT COUNT(*) FROM t WHERE i IN (1, 4)").as_i64(), Some(2));
    assert_eq!(one("SELECT COUNT(*) FROM t WHERE i NOT IN (1, 4)").as_i64(), Some(1));
    assert_eq!(
        one("SELECT COUNT(*) FROM t WHERE d BETWEEN DATE '2015-01-15' AND DATE '2015-03-01'")
            .as_i64(),
        Some(1)
    );
    assert_eq!(one("SELECT upper(s) FROM t WHERE i = 1").as_str(), Some("ALPHA"));
    assert_eq!(one("SELECT length(s) FROM t WHERE i = 4").as_i64(), Some(10));
    assert_eq!(one("SELECT abs(f) FROM t WHERE i = 4").as_f64(), Some(4.5));
    assert_eq!(one("SELECT date_part('year', d) FROM t WHERE i = 2").as_i64(), Some(2015));
    assert_eq!(one("SELECT i + b * 2 FROM t WHERE i = 1").as_i64(), Some(201));
    assert_eq!(
        one("SELECT CASE WHEN f < 0 THEN 'neg' ELSE 'pos' END FROM t WHERE i = 4").as_str(),
        Some("neg")
    );
    assert_eq!(one("SELECT CAST(i AS VARCHAR) FROM t WHERE i = 2").as_str(), Some("2"));
    assert_eq!(one("SELECT s || '!' FROM t WHERE i = 1").as_str(), Some("alpha!"));
    // ORDER BY non-projected column (hidden sort column path).
    let r = c.query("SELECT s FROM t WHERE s IS NOT NULL ORDER BY b DESC").unwrap();
    assert_eq!(r.columns.len(), 1, "hidden sort column trimmed");
    assert_eq!(r.rows[0].get(0).as_str(), Some("Alpha Beta"));
}

#[test]
fn left_join_and_residual_conditions() {
    let c = launch("lj");
    c.execute("CREATE TABLE l (k BIGINT, v BIGINT)").unwrap();
    c.execute("CREATE TABLE r (k BIGINT, w BIGINT)").unwrap();
    c.execute("INSERT INTO l VALUES (1, 10), (2, 20), (3, 30), (NULL, 99)").unwrap();
    c.execute("INSERT INTO r VALUES (1, 100), (1, 101), (3, 300)").unwrap();
    // LEFT JOIN keeps unmatched left rows (incl. NULL keys).
    let rows = c
        .query("SELECT l.k, l.v, r.w FROM l LEFT JOIN r ON l.k = r.k ORDER BY l.v, r.w")
        .unwrap()
        .rows;
    assert_eq!(rows.len(), 5); // 1→two matches, 2→null, 3→one, NULL→null
    assert!(rows.iter().any(|row| row.get(1).as_i64() == Some(20) && row.get(2).is_null()));
    // Residual non-equi condition.
    let rows = c
        .query("SELECT COUNT(*) FROM l JOIN r ON l.k = r.k AND r.w > 100")
        .unwrap()
        .rows;
    assert_eq!(rows[0].get(0).as_i64(), Some(2)); // (1,101) and (3,300)
    // LEFT JOIN with residual: failing residual null-extends.
    let rows = c
        .query("SELECT COUNT(*) FROM l LEFT JOIN r ON l.k = r.k AND r.w > 1000")
        .unwrap()
        .rows;
    assert_eq!(rows[0].get(0).as_i64(), Some(4), "all left rows survive");
}

#[test]
fn interleaved_sortkey_through_sql() {
    let c = Cluster::launch(
        ClusterConfig::new("il").nodes(1).slices_per_node(1).rows_per_group(512),
    )
    .unwrap();
    c.execute("CREATE TABLE pts (x BIGINT, y BIGINT) INTERLEAVED SORTKEY(x, y)").unwrap();
    let mut csv = String::new();
    for i in 0..8_192i64 {
        csv.push_str(&format!("{},{}\n", (i * 37) % 1024, (i * 101) % 1024));
    }
    c.put_s3_object("p/1", csv.into_bytes());
    c.execute("COPY pts FROM 's3://p/'").unwrap();
    c.execute("VACUUM pts").unwrap();
    // Predicate on the second key column alone still prunes blocks.
    let r = c.query("SELECT COUNT(*) FROM pts WHERE y BETWEEN 0 AND 50").unwrap();
    assert!(r.metrics.groups_skipped > 0, "z-order pruned: {:?}", r.metrics);
    // And the count is exact.
    let expected = (0..8_192i64).filter(|i| ((i * 101) % 1024) <= 50).count() as i64;
    assert_eq!(r.rows[0].get(0).as_i64(), Some(expected));
}

#[test]
fn approx_count_distinct_tracks_exact() {
    let c = launch("acd");
    c.execute("CREATE TABLE v (u BIGINT)").unwrap();
    let mut csv = String::new();
    for i in 0..30_000 {
        csv.push_str(&format!("{}\n", i % 7_500));
    }
    c.put_s3_object("v/1", csv.into_bytes());
    c.execute("COPY v FROM 's3://v/'").unwrap();
    let approx = c
        .query("SELECT APPROX COUNT(DISTINCT u) FROM v")
        .unwrap()
        .rows[0]
        .get(0)
        .as_i64()
        .unwrap();
    let exact = c
        .query("SELECT COUNT(DISTINCT u) FROM v")
        .unwrap()
        .rows[0]
        .get(0)
        .as_i64()
        .unwrap();
    assert_eq!(exact, 7_500);
    let err = (approx - exact).abs() as f64 / exact as f64;
    assert!(err < 0.15, "approx {approx} vs exact {exact}");
}

#[test]
fn concurrent_queries_during_load() {
    // The leader serializes writers; readers run concurrently and always
    // see a consistent snapshot (row counts are a multiple of one COPY).
    let c = launch("mvcc");
    c.execute("CREATE TABLE t (a BIGINT)").unwrap();
    let mut csv = String::new();
    for i in 0..2_000 {
        csv.push_str(&format!("{i}\n"));
    }
    c.put_s3_object("x/1", csv.into_bytes());
    c.execute("COPY t FROM 's3://x/'").unwrap();

    let writer = {
        let c = Arc::clone(&c);
        std::thread::spawn(move || {
            for _ in 0..5 {
                c.execute("COPY t FROM 's3://x/'").unwrap();
            }
        })
    };
    let reader = {
        let c = Arc::clone(&c);
        std::thread::spawn(move || {
            for _ in 0..20 {
                let n = c.query("SELECT COUNT(*) FROM t").unwrap().rows[0]
                    .get(0)
                    .as_i64()
                    .unwrap();
                assert_eq!(n % 2_000, 0, "partially-visible load: {n}");
            }
        })
    };
    writer.join().unwrap();
    reader.join().unwrap();
    let n = c.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64().unwrap();
    assert_eq!(n, 12_000);
}

#[test]
fn select_distinct() {
    let c = launch("dst");
    c.execute("CREATE TABLE t (a BIGINT, b VARCHAR)").unwrap();
    c.execute(
        "INSERT INTO t VALUES (1,'x'), (1,'x'), (2,'x'), (2,'y'), (NULL,'x'), (NULL,'x')",
    )
    .unwrap();
    let rows = c.query("SELECT DISTINCT a, b FROM t ORDER BY a, b").unwrap().rows;
    assert_eq!(rows.len(), 4, "{rows:?}");
    let singles = c.query("SELECT DISTINCT b FROM t ORDER BY b").unwrap().rows;
    assert_eq!(singles.len(), 2);
    assert_eq!(singles[0].get(0).as_str(), Some("x"));
    // Interpreted path agrees.
    let interp = c.query_interpreted("SELECT DISTINCT a, b FROM t ORDER BY a, b").unwrap();
    assert_eq!(rows, interp);
    // DISTINCT + hidden ORDER BY column is rejected per standard SQL.
    assert!(c.query("SELECT DISTINCT b FROM t ORDER BY a").is_err());
}

#[test]
fn having_filters_groups_at_runtime() {
    let c = launch("hav");
    c.execute("CREATE TABLE t (g BIGINT, v BIGINT)").unwrap();
    // Group 0: 10 rows, group 1: 3 rows, group 2: 7 rows.
    for (g, n) in [(0i64, 10i64), (1, 3), (2, 7)] {
        for i in 0..n {
            c.execute(&format!("INSERT INTO t VALUES ({g}, {i})")).unwrap();
        }
    }
    let rows = c
        .query("SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING COUNT(*) > 5 ORDER BY g")
        .unwrap()
        .rows;
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0].get(0).as_i64(), Some(0));
    assert_eq!(rows[0].get(1).as_i64(), Some(10));
    assert_eq!(rows[1].get(0).as_i64(), Some(2));
    // HAVING referencing an aggregate not in the projection.
    let rows = c
        .query("SELECT g FROM t GROUP BY g HAVING SUM(v) > 20 ORDER BY g")
        .unwrap()
        .rows;
    assert_eq!(rows.len(), 2, "{rows:?}"); // sums: 45, 3, 21
    // Interpreted agreement.
    let a = c
        .query("SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING COUNT(*) > 5 ORDER BY g")
        .unwrap()
        .rows;
    let b = c
        .query_interpreted(
            "SELECT g, COUNT(*) AS n FROM t GROUP BY g HAVING COUNT(*) > 5 ORDER BY g",
        )
        .unwrap();
    assert_eq!(a, b);
}

#[test]
fn copy_ingests_compressed_and_encrypted_sources() {
    let c = launch("srccodec");
    c.execute("CREATE TABLE t (a BIGINT, s VARCHAR(32))").unwrap();
    let mut csv = String::new();
    for i in 0..2_000 {
        csv.push_str(&format!("{i},value-{}\n", i % 13));
    }
    // LZSS-compressed source (the gzip/lzop stand-in).
    c.put_s3_object_compressed("gz/part-1", csv.as_bytes());
    let s = c.execute("COPY t FROM 's3://gz/' LZSS").unwrap();
    assert_eq!(s.rows_affected, 2_000);
    // Client-side encrypted source.
    c.execute("CREATE TABLE t2 (a BIGINT, s VARCHAR(32))").unwrap();
    let key_hex = c.put_s3_object_encrypted("enc/part-1", csv.as_bytes());
    let s = c
        .execute(&format!("COPY t2 FROM 's3://enc/' ENCRYPTED '{key_hex}'"))
        .unwrap();
    assert_eq!(s.rows_affected, 2_000);
    // Both loads produce identical contents.
    let q = "SELECT COUNT(*), SUM(a), MIN(s), MAX(s) FROM t";
    let a = c.query(q).unwrap().rows;
    let b = c.query(&q.replace("FROM t", "FROM t2")).unwrap().rows;
    assert_eq!(a, b);
    // Wrong key fails loudly, loads nothing.
    c.execute("CREATE TABLE t3 (a BIGINT, s VARCHAR(32))").unwrap();
    let err = c.execute("COPY t3 FROM 's3://enc/' ENCRYPTED '00000000000000000000000000000000'");
    assert!(err.is_err());
    assert_eq!(
        c.query("SELECT COUNT(*) FROM t3").unwrap().rows[0].get(0).as_i64(),
        Some(0)
    );
    // Encrypted + compressed compose (encrypt-over-compressed staging).
    c.execute("CREATE TABLE t4 (a BIGINT, s VARCHAR(32))").unwrap();
    let compressed = {
        // Compress first, then encrypt: COPY decrypts then decompresses.
        redshift_sim::storage::lzss::compress(csv.as_bytes())
    };
    let key_hex = c.put_s3_object_encrypted("both/part-1", &compressed);
    let s = c
        .execute(&format!("COPY t4 FROM 's3://both/' ENCRYPTED '{key_hex}' LZSS"))
        .unwrap();
    assert_eq!(s.rows_affected, 2_000);
}
