//! Integration tests for the wire server: many concurrent connections,
//! the connection-limit backlog, graceful drain, and typed errors
//! surviving the trip through the socket.

// Wire sessions are the whole point here: nothing may fall back to the
// deprecated sessionless `query_as` shim.
#![deny(deprecated)]

use redshift_sim::core::{Cluster, ClusterConfig};
use redshift_sim::frontdoor::{FrontDoor, ServerOpts, WireClient};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn served_cluster(name: &str, opts: ServerOpts) -> (Arc<Cluster>, FrontDoor) {
    let cluster = Cluster::launch(ClusterConfig::new(name).nodes(2).slices_per_node(2)).unwrap();
    cluster.execute("CREATE TABLE t (a BIGINT, b VARCHAR)").unwrap();
    cluster.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y'), (3, 'z')").unwrap();
    let door = FrontDoor::serve(Arc::clone(&cluster), opts).unwrap();
    (cluster, door)
}

/// Wait out the small races inherent to socket teardown: the client
/// side returns before the server-side handler has finished cleanup.
fn wait_until(what: &str, mut done: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !done() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn sixty_four_concurrent_sessions() {
    let (cluster, door) = served_cluster("fd64", ServerOpts::default().max_connections(64));
    let addr = door.addr();
    let workers: Vec<_> = (0..64)
        .map(|i| {
            std::thread::spawn(move || {
                let user = format!("user{}", i % 8);
                let mut c = WireClient::connect(addr, &user, None).unwrap();
                for _ in 0..4 {
                    let r = c.query("SELECT COUNT(*) FROM t").unwrap();
                    assert_eq!(r.rows[0].get(0).as_i64(), Some(3));
                }
                c.ping().unwrap();
                let session = c.session();
                c.bye().unwrap();
                session
            })
        })
        .collect();
    let mut ids: Vec<u64> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), 64, "every connection got its own session");
    assert_eq!(cluster.trace().counter_value("frontdoor.accepted"), 64);
    assert_eq!(cluster.trace().counter_value("frontdoor.rejected"), 0);
    // Identical query text + same (userid, no group) key: most of those
    // 256 queries were result-cache hits.
    let (hits, _) = cluster.result_cache_stats();
    assert!(hits > 0, "repeat queries across the wire should hit the cache");
    wait_until("handlers to exit", || door.active_connections() == 0);
    assert_eq!(cluster.session_manager().active_count(), 0, "no session leaks");
}

#[test]
fn connection_limit_rejects_with_retryable_throttle() {
    let (cluster, door) = served_cluster("fdlimit", ServerOpts::default().max_connections(2));
    let addr = door.addr();
    let a = WireClient::connect(addr, "a", None).unwrap();
    let b = WireClient::connect(addr, "b", None).unwrap();
    let rejected = WireClient::connect(addr, "c", None).unwrap_err();
    assert_eq!(rejected.code(), "THROTTLE", "{rejected}");
    assert!(rejected.is_retryable(), "backlog rejection must invite a retry");
    assert_eq!(cluster.trace().counter_value("frontdoor.rejected"), 1);
    // A slot freeing up lets the retry through.
    a.bye().unwrap();
    wait_until("slot to free", || door.active_connections() < 2);
    let c = WireClient::connect(addr, "c", None).unwrap();
    c.bye().unwrap();
    b.bye().unwrap();
}

#[test]
fn typed_errors_round_trip_the_wire() {
    let (_cluster, door) = served_cluster("fderr", ServerOpts::default());
    let mut c = WireClient::connect(door.addr(), "ada", None).unwrap();
    let nf = c.query("SELECT * FROM missing_table").unwrap_err();
    assert_eq!(nf.code(), "NOT_FOUND", "{nf}");
    assert!(!nf.is_retryable());
    let parse = c.execute("FROBNICATE EVERYTHING").unwrap_err();
    assert_eq!(parse.code(), "PARSE", "{parse}");
    let set = c.set("no_such_setting", "on").unwrap_err();
    assert_eq!(set.code(), "UNSUPPORTED", "{set}");
    // The connection survives errors: it's the statement that failed.
    let ok = c.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(ok.rows[0].get(0).as_i64(), Some(3));
    c.bye().unwrap();
}

#[test]
fn abrupt_disconnect_cleans_up_session() {
    let (cluster, door) = served_cluster("fdabrupt", ServerOpts::default());
    let mut c = WireClient::connect(door.addr(), "ada", Some("analyst")).unwrap();
    c.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(cluster.session_manager().active_count(), 1);
    drop(c); // no Bye: socket closes mid-session
    wait_until("abrupt session cleanup", || cluster.session_manager().active_count() == 0);
    assert_eq!(cluster.trace().gauge_value("sessions.active"), 0);
    // The connection log shows a full connect/disconnect pair.
    let log = cluster.query("SELECT event FROM stl_connection_log ORDER BY at_us").unwrap();
    assert_eq!(log.rows.len(), 2);
    assert_eq!(log.rows[1].get(0).as_str(), Some("disconnecting session"));
}

#[test]
fn mid_statement_disconnect_commits_fully_or_not_at_all() {
    use redshift_sim::faultkit::{fp, ErrClass, FaultSpec};
    let (cluster, door) = served_cluster("fdchaos", ServerOpts::default());

    // Case 1: the write commits, then the connection dies before the
    // reply frame leaves the server. The client sees a transport error,
    // but the committed row must stand.
    cluster.faults().configure(fp::FRONTDOOR_DISCONNECT, FaultSpec::drop_op().once());
    let mut c = WireClient::connect(door.addr(), "ada", None).unwrap();
    assert!(c.execute("INSERT INTO t VALUES (4, 'w')").is_err(), "reply frame never arrives");
    drop(c);
    wait_until("case-1 session cleanup", || cluster.session_manager().active_count() == 0);
    let r = cluster.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0].get(0).as_i64(), Some(4), "commit survives the lost reply");

    // Case 2: the statement itself dies at the WAL commit seam AND the
    // connection drops. The write must be rolled back invisibly — the
    // client can't tell the difference, the table must.
    cluster.faults().configure(fp::WAL_COMMIT, FaultSpec::err(ErrClass::Fault).once());
    cluster.faults().configure(fp::FRONTDOOR_DISCONNECT, FaultSpec::drop_op().once());
    let mut c2 = WireClient::connect(door.addr(), "bob", None).unwrap();
    assert!(c2.execute("INSERT INTO t VALUES (5, 'x')").is_err());
    drop(c2);
    wait_until("case-2 session cleanup", || cluster.session_manager().active_count() == 0);
    let r = cluster.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0].get(0).as_i64(), Some(4), "failed write stays invisible");

    // No leaks on either path: handler gone, gauges back to zero.
    wait_until("handlers to exit", || door.active_connections() == 0);
    assert_eq!(cluster.trace().gauge_value("frontdoor.connections"), 0);
    assert_eq!(cluster.trace().gauge_value("sessions.active"), 0);
    assert_eq!(cluster.faults().armed_count(), 0, "both failpoints fired exactly once");
    // The server keeps serving after injected disconnects.
    let mut c3 = WireClient::connect(door.addr(), "eve", None).unwrap();
    assert_eq!(c3.query("SELECT COUNT(*) FROM t").unwrap().rows[0].get(0).as_i64(), Some(4));
    c3.bye().unwrap();
}

#[test]
fn drain_finishes_in_flight_work_and_stops_accepting() {
    let (cluster, door) = served_cluster("fddrain", ServerOpts::default());
    let addr = door.addr();
    let mut idle = WireClient::connect(addr, "idle", None).unwrap();
    idle.ping().unwrap();
    let busy = std::thread::spawn(move || {
        let mut c = WireClient::connect(addr, "busy", None).unwrap();
        // A small write races the drain below; whichever way it lands,
        // the response (or EOF error) must be clean, never a hang.
        let r = c.execute("INSERT INTO t VALUES (4, 'w')");
        if let Ok((n, _)) = r {
            assert_eq!(n, 1);
        }
    });
    std::thread::sleep(Duration::from_millis(5));
    assert!(door.drain(), "all handlers exited within the drain window");
    busy.join().unwrap();
    // Idle connection saw EOF; new connections are refused outright.
    assert!(idle.ping().is_err());
    assert!(WireClient::connect(addr, "late", None).is_err());
    assert_eq!(cluster.session_manager().active_count(), 0);
    assert_eq!(cluster.trace().gauge_value("sessions.active"), 0);
    // Drain is idempotent and composes into cluster shutdown.
    door.shutdown();
    assert!(cluster.query("SELECT COUNT(*) FROM t").is_err());
}
