#!/usr/bin/env bash
# CI for redshift-sim: fully offline build + test + bench-compile, plus a
# hermeticity guard that fails if any crates.io dependency sneaks back in.
#
# The workspace has a zero-dependency policy: everything `rand`,
# `proptest`, `criterion`, `crossbeam` and `parking_lot` used to provide
# lives in-tree in `crates/testkit`. CI must pass on a machine with no
# registry access at all, which is why every cargo invocation is
# `--offline`.
set -euo pipefail
cd "$(dirname "$0")"

echo "== hermeticity guard: no registry dependencies =="
# Path dependencies render as `name vX.Y.Z (/abs/path)`; a registry
# dependency has no `(/` suffix. Any such line fails the build.
violations=$(cargo tree --workspace --offline --edges normal,build,dev --prefix none \
  | sort -u | grep -v '(/' | grep -v '^\s*$' || true)
if [ -n "$violations" ]; then
  echo "error: non-path dependencies found (zero-dependency policy):" >&2
  echo "$violations" >&2
  exit 1
fi
echo "ok: all dependencies are workspace-local"

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== benches compile (offline) =="
cargo bench --no-run --offline -p redsim-bench

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== ci green =="
