#!/usr/bin/env bash
# CI for redshift-sim: fully offline build + test + bench-compile, plus a
# hermeticity guard that fails if any crates.io dependency sneaks back in.
#
# The workspace has a zero-dependency policy: everything `rand`,
# `proptest`, `criterion`, `crossbeam` and `parking_lot` used to provide
# lives in-tree in `crates/testkit`. CI must pass on a machine with no
# registry access at all, which is why every cargo invocation is
# `--offline`.
set -euo pipefail
cd "$(dirname "$0")"

echo "== hermeticity guard: no registry dependencies =="
# Path dependencies render as `name vX.Y.Z (/abs/path)`; a registry
# dependency has no `(/` suffix. Any such line fails the build.
violations=$(cargo tree --workspace --offline --edges normal,build,dev --prefix none \
  | sort -u | grep -v '(/' | grep -v '^\s*$' || true)
if [ -n "$violations" ]; then
  echo "error: non-path dependencies found (zero-dependency policy):" >&2
  echo "$violations" >&2
  exit 1
fi
echo "ok: all dependencies are workspace-local"

echo "== hermeticity guard: redsim-obs is a leaf (no deps at all) =="
# The observability substrate must stay pure-std: instrumenting a hot
# path can never be the reason a build grows a dependency. This covers
# the histogram module too — quantile sketches are a classic excuse to
# pull in a stats crate, and the log-bucketed in-tree one is enough.
obs_deps=$(cargo tree -p redsim-obs --offline --edges normal --prefix none \
  | sort -u | grep -v '^redsim-obs ' | grep -v '^\s*$' || true)
if [ -n "$obs_deps" ]; then
  echo "error: redsim-obs grew dependencies:" >&2
  echo "$obs_deps" >&2
  exit 1
fi
echo "ok: redsim-obs has no dependencies"

echo "== hermeticity guard: redsim-faultkit is a leaf (no deps at all) =="
# The failpoint substrate rides inside every production S3/replication
# path; like obs, it must stay pure-std so fault seams can be added to
# any crate without dependency cycles or new baggage.
faultkit_deps=$(cargo tree -p redsim-faultkit --offline --edges normal --prefix none \
  | sort -u | grep -v '^redsim-faultkit ' | grep -v '^\s*$' || true)
if [ -n "$faultkit_deps" ]; then
  echo "error: redsim-faultkit grew dependencies:" >&2
  echo "$faultkit_deps" >&2
  exit 1
fi
echo "ok: redsim-faultkit has no dependencies"

echo "== hermeticity guard: redsim-frontdoor stays transport-only =="
# The wire server must never grow a non-workspace dependency (no TLS /
# auth / async stacks — DESIGN.md §12 non-goals): its whole closure is
# redsim-* path crates.
frontdoor_deps=$(cargo tree -p redsim-frontdoor --offline --edges normal --prefix none \
  | sort -u | grep -v '^redsim-' | grep -v '^\s*$' || true)
if [ -n "$frontdoor_deps" ]; then
  echo "error: redsim-frontdoor grew non-workspace dependencies:" >&2
  echo "$frontdoor_deps" >&2
  exit 1
fi
echo "ok: redsim-frontdoor depends only on workspace crates"

echo "== hermeticity guard: redsim-workload stays workspace-only =="
# The workload synthesizer is the classic place for a stats/distribution
# crate to sneak in (Zipf, Poisson thinning, diurnal curves); all of it
# lives in redsim-simkit, so the closure must stay redsim-* path crates.
workload_deps=$(cargo tree -p redsim-workload --offline --edges normal --prefix none \
  | sort -u | grep -v '^redsim-' | grep -v '^\s*$' || true)
if [ -n "$workload_deps" ]; then
  echo "error: redsim-workload grew non-workspace dependencies:" >&2
  echo "$workload_deps" >&2
  exit 1
fi
echo "ok: redsim-workload depends only on workspace crates"

echo "== build (release, offline) =="
cargo build --release --offline --workspace

echo "== benches compile (offline) =="
cargo bench --no-run --offline -p redsim-bench

echo "== tests (offline) =="
cargo test -q --offline --workspace

echo "== trace invariants (quick property pass) =="
# A smaller random workload than the in-suite default, as a fast
# standalone gate: spans all close, children nest, stl_query counts.
RSIM_PROP_CASES=4 cargo test -q --offline --test properties trace_invariants

echo "== wlm invariants (quick property pass) =="
# Mixed-workload admission accounting plus topology-change drains
# (resize, DR failover) at a reduced case count. Failing seeds are
# pinned in tests/properties.proptest-regressions and replayed first;
# reproduce any failure with RSIM_SEED=<seed> and the full suite.
RSIM_PROP_CASES=4 cargo test -q --offline --test properties wlm_

echo "== chaos invariants, write seams armed (quick property pass) =="
# Randomized COPY/SELECT/kill/revive/backup/restore schedules under
# randomized transient failpoint configs — including the write seams
# (mirror.write.primary/secondary, s3.put), which transactional COPY
# makes safe to arm: a load that fails mid-write rolls back block-for-
# block, so exactness tracking asserts a failed COPY is observationally
# invisible (same SELECTs, rows_estimate, loads_since_analyze,
# copy.rows_loaded). Every op returns exact results or a typed
# retryable error, the cluster heals once faults clear, no hangs.
# Failing seeds are pinned in tests/properties.proptest-regressions;
# replay with RSIM_SEED=<seed> (and RSIM_FAILPOINTS for ad-hoc configs).
RSIM_PROP_CASES=4 cargo test -q --offline --test properties chaos_

echo "== mvcc invariants (quick property pass) =="
# Multi-writer transactions: randomized multi-session COPY/INSERT/SELECT
# schedules over one shared table. Snapshot reads never observe a torn
# write, first-committer-wins conflicts are counted exactly once (client
# errors == txn.conflicts == stl_tr_conflict rows), retried losers all
# land, and quiesce leaks no spans/sessions/WLM slots.
RSIM_PROP_CASES=4 cargo test -q --offline --test properties mvcc_

echo "== crash-recovery invariants (quick property pass) =="
# Redo-log replay: a seeded write schedule, a crash at a random armed
# WAL seam (append/sync/commit) with the hard-crash flag up, then
# recovery. The committed prefix — and nothing else — is visible; the
# torn statement's orphan blocks are scrubbed; a second crash/recover is
# a fixpoint. Replay a failure with RSIM_SEED=<seed>.
RSIM_PROP_CASES=4 cargo test -q --offline --test properties recovery_

echo "== session + result cache invariants (quick property pass) =="
# Randomized multi-session schedules: cache hits bit-identical to cold
# executions, rolled-back COPY never moves the catalog version, abrupt
# disconnects (in-process and over the wire) leak no sessions or spans.
RSIM_PROP_CASES=4 cargo test -q --offline --test properties session_

echo "== qmr invariants (quick property pass) =="
# Query-monitoring rules: abort never fires on EXPLAIN / EXPLAIN
# ANALYZE / system-table reads (they bypass WLM), rule-hops and
# max_wait timeout-hops both land in stl_wlm_query.hops, and rule
# evaluation under the chaos harness leaks no spans or WLM slots.
RSIM_PROP_CASES=4 cargo test -q --offline --test properties qmr_

echo "== profiler invariants (quick property pass) =="
# svl_query_report row count == queries x slices x steps for a pinned
# workload (and zero with profiling off); EXPLAIN ANALYZE annotates
# every plan line with actual rows + time and allocates no query id.
RSIM_PROP_CASES=4 cargo test -q --offline --test properties profile_

echo "== workload replay invariants (quick property pass) =="
# Fleet-scale synthesis + replay: same seed ⇒ byte-identical schedule
# and identical per-class query counts / cache-hit totals across fresh
# clusters; WLM ledger balances under concurrent wall-mode replay with a
# QMR rule armed; 30s chaos stalls ride the virtual clock instead of
# sleeping. Reproduce a failing case with RSIM_SEED=<seed>.
RSIM_PROP_CASES=4 cargo test -q --offline --test properties workload_

echo "== vectorized-kernel invariants (quick property pass) =="
# Differential fuzz of the typed columnar kernels against the boxed
# row-at-a-time interpreter: random batches (NULLs, NaN/±0/±inf float
# specials) under random predicate trees must agree bit-for-bit
# whenever the kernel path covers the expression, and coverage itself
# is asserted (>50% of generated trees). NaN total-order comparisons
# are pinned exhaustively. Reproduce with RSIM_SEED=<seed>.
RSIM_PROP_CASES=4 cargo test -q --offline --test properties vector_

echo "== frontdoor wire-server smoke (64 concurrent sessions) =="
# The concurrent TCP server end to end: 64 clients, backlog rejection
# with a retryable THROTTLE, typed errors over the wire, graceful drain.
cargo test -q --offline --test frontdoor_server

echo "== result-cache bench baseline is honored (benchdiff gate) =="
# Re-running `cargo bench -p redsim-bench --bench result_cache` rewrites
# results/result_cache.csv; this diff fails CI if the repeat-mix p50
# regressed >15% against the committed baseline. With a fresh checkout
# the two files are identical and the gate is a no-op.
cargo run -q --offline -p redsim-bench --bin benchdiff -- \
  results/result_cache_baseline.csv results/result_cache.csv

echo "== profiler overhead stays within 15% (benchdiff gate) =="
# The profiler-overhead bench writes two CSVs with identical keys —
# the same query mix with per-step profiling off (baseline) and on.
# benchdiff's default 15% threshold IS the overhead budget: if
# profiling ever costs more than 15% p50 on any bench in the mix,
# this gate fails. Regenerate both files with
#   cargo bench --offline -p redsim-bench --bench profiler_overhead
cargo run -q --offline -p redsim-bench --bin benchdiff -- \
  results/profiler_overhead_off.csv results/profiler_overhead_on.csv

echo "== workload macro-bench baselines are honored (benchdiff gates) =="
# The workload_replay bench writes per-class latency CSVs from the
# seeded 1k-tenant virtual replay — the same statements every run, so a
# drift is an engine/session/WLM cost change, not workload noise. Both
# p50 and tail are gated: dashboards live and die by p99. Regenerate
# after an intentional perf change with
#   cargo bench --offline -p redsim-bench --bench workload_replay
# and copy each workload_<class>.csv over its _baseline.csv.
for wl_class in dashboard etl adhoc; do
  cargo run -q --offline -p redsim-bench --bin benchdiff -- \
    "results/workload_${wl_class}_baseline.csv" "results/workload_${wl_class}.csv"
  cargo run -q --offline -p redsim-bench --bin benchdiff -- --p99 \
    "results/workload_${wl_class}_baseline.csv" "results/workload_${wl_class}.csv"
done

echo "== copy_load WAL-overhead budget (benchdiff gate) =="
# Every COPY/INSERT now appends+fsyncs a redo-log delta before it
# commits. Re-running `cargo bench -p redsim-bench --bench copy_load`
# rewrites results/copy_load.csv; the stock 15% p50 gate against the
# pre-WAL baseline IS the write-ahead-logging overhead budget.
cargo run -q --offline -p redsim-bench --bin benchdiff -- \
  results/copy_load_baseline.csv results/copy_load.csv

echo "== concurrent COPY baseline is honored (benchdiff gates) =="
# 1 vs 4 concurrent writers on distinct tables. Both p50 and p99 are
# gated: a reintroduced global write lock (or a heavier txn/WAL path)
# convoys the 4-writer tail before it moves the median. Regenerate after
# an intentional change with
#   cargo bench --offline -p redsim-bench --bench concurrent_copy
# and copy results/concurrent_copy.csv over its _baseline.csv.
cargo run -q --offline -p redsim-bench --bin benchdiff -- \
  results/concurrent_copy_baseline.csv results/concurrent_copy.csv
cargo run -q --offline -p redsim-bench --bin benchdiff -- --p99 \
  results/concurrent_copy_baseline.csv results/concurrent_copy.csv

echo "== scan-kernel pipeline baseline is honored (benchdiff gates) =="
# The scan_kernels bench times the same scan→filter→aggregate loop
# through the typed kernels and through the interpreter fallback
# (identical selection vectors asserted before timing), the persistent
# worker pool vs thread-per-item spawn, and the one-pass bytedict build
# vs the old serialize-every-row reference. Both p50 and p99 are gated:
# a kernel that falls back to the interpreter, or a pool that starts
# spawning, shows up here first. Regenerate after an intentional change
# with
#   cargo bench --offline -p redsim-bench --bench scan_kernels
# and copy results/scan_kernels.csv over its _baseline.csv.
cargo run -q --offline -p redsim-bench --bin benchdiff -- \
  results/scan_kernels_baseline.csv results/scan_kernels.csv
cargo run -q --offline -p redsim-bench --bin benchdiff -- --p99 \
  results/scan_kernels_baseline.csv results/scan_kernels.csv

echo "== encode (e9) budget is honored (benchdiff gate) =="
# The E9 encoding microbenches, re-baselined after the one-pass
# bytedict build (slot hashes over the raw column payload, no per-row
# Writer, no owned keys): dictionary-friendly shapes encode 9-20x
# faster than the pre-change baseline. The stock 15% p50 gate keeps
# that budget from silently eroding. Regenerate with
#   cargo bench --offline -p redsim-bench --bench encodings
# and copy results/e9_encodings.csv over its _baseline.csv.
cargo run -q --offline -p redsim-bench --bin benchdiff -- \
  results/e9_encodings_baseline.csv results/e9_encodings.csv

echo "== write atomicity (failure-injection gate) =="
# The pinned rollback scenarios: permanent mirror fault mid-COPY,
# probabilistic write faults across a COPY batch, multi-object partial
# parse, INSERT seal failure — each must leave pre-statement state
# byte-identical (rows, estimates, counters, node-local bytes). The
# wal-seam rollbacks (append/fsync/commit-record) ride the same
# copy_/wal_ prefixes.
cargo test -q --offline --test failure_injection copy_
cargo test -q --offline --test failure_injection failed_
cargo test -q --offline --test failure_injection wal_

echo "== benchdiff smoke (self-diff must pass, regression must fail) =="
bd_dir=$(mktemp -d)
trap 'rm -rf "$bd_dir"' EXIT
cat > "$bd_dir/base.csv" <<'CSV'
group,bench,input,samples,iters_per_sample,p50_ns,p99_ns,mean_ns,min_ns,max_ns,elems_per_sec
scan,rows,1k,5,100,1000.0,1200.0,1050.0,900.0,1300.0,952381
CSV
sed 's/1000\.0/1400.0/' "$bd_dir/base.csv" > "$bd_dir/slow.csv"
cargo run -q --offline -p redsim-bench --bin benchdiff -- "$bd_dir/base.csv" "$bd_dir/base.csv"
if cargo run -q --offline -p redsim-bench --bin benchdiff -- "$bd_dir/base.csv" "$bd_dir/slow.csv"; then
  echo "error: benchdiff failed to flag a 40% p50 regression" >&2
  exit 1
fi
echo "ok: benchdiff gates p50 regressions"
# A blown-out tail with a flat median: the default p50 gate must pass,
# --p99 must fail.
sed 's/1200\.0/2000.0/' "$bd_dir/base.csv" > "$bd_dir/tail.csv"
cargo run -q --offline -p redsim-bench --bin benchdiff -- "$bd_dir/base.csv" "$bd_dir/tail.csv"
if cargo run -q --offline -p redsim-bench --bin benchdiff -- --p99 "$bd_dir/base.csv" "$bd_dir/tail.csv"; then
  echo "error: benchdiff --p99 failed to flag a 67% tail regression" >&2
  exit 1
fi
echo "ok: benchdiff --p99 gates tail regressions the p50 gate misses"

echo "== ci green =="
